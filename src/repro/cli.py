"""Command-line entry point: run any paper experiment and print it.

Usage::

    ides-experiment list
    ides-experiment run fig2
    ides-experiment run table1 --fast
    ides-experiment run all --seed 7
    ides-experiment datasets
    ides-experiment ablate --fast --jobs 2
    ides-experiment ablate --config grid.json --output report.json

or ``python -m repro.cli ...``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from .datasets import dataset_statistics, list_datasets, load_dataset
from .evaluation import available_experiments, run_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="ides-experiment",
        description=(
            "Reproduction harness for 'Modeling Distances in Large-Scale "
            "Networks by Matrix Factorization' (Mao & Saul, IMC 2004)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument(
        "experiment",
        help="experiment id from 'list', or 'all'",
    )
    run_parser.add_argument(
        "--seed", type=int, default=None, help="generation seed (default: canonical)"
    )
    run_parser.add_argument(
        "--fast", action="store_true", help="shrink workloads for a quick pass"
    )
    run_parser.add_argument(
        "--plot", action="store_true", help="also render terminal charts"
    )

    subparsers.add_parser("datasets", help="summarize the synthetic data sets")

    ablate_parser = subparsers.add_parser(
        "ablate",
        help="run a declarative scenario-matrix grid over the simulator",
    )
    ablate_parser.add_argument(
        "--config", default=None, help="JSON grid config file"
    )
    ablate_parser.add_argument(
        "--preset",
        default=None,
        help="named grid preset (see 'ides-experiment list')",
    )
    ablate_parser.add_argument(
        "--fast",
        action="store_true",
        help="shortcut for '--preset smoke' (the 2x2x2 CI grid)",
    )
    ablate_parser.add_argument(
        "--axis",
        action="append",
        default=[],
        metavar="NAME=V1,V2",
        help="override one axis's swept values (repeatable)",
    )
    ablate_parser.add_argument(
        "--jobs", type=int, default=1, help="concurrent worker processes"
    )
    ablate_parser.add_argument(
        "--seed", type=int, default=None, help="base seed override"
    )
    ablate_parser.add_argument(
        "--hosts", type=int, default=None, help="world size override"
    )
    ablate_parser.add_argument(
        "--landmarks", type=int, default=None, help="landmark count override"
    )
    ablate_parser.add_argument(
        "--dimension", type=int, default=None, help="model dimension override"
    )
    ablate_parser.add_argument(
        "--timeout",
        type=float,
        default=300.0,
        help="per-cell wall-clock limit in seconds (0 disables)",
    )
    ablate_parser.add_argument(
        "--output",
        default="ablation_report.json",
        help="JSON report path",
    )
    ablate_parser.add_argument(
        "--markdown",
        default=None,
        help="also write the rendered markdown summary here",
    )
    ablate_parser.add_argument(
        "--resume",
        action="store_true",
        help="reuse finished cells from a previous run of this exact config",
    )
    ablate_parser.add_argument(
        "--allow-failures",
        action="store_true",
        help="exit 0 even when cells fail (they stay attributed in the report)",
    )
    ablate_parser.add_argument(
        "--in-process",
        action="store_true",
        help="run cells sequentially in this process (debugging; no timeouts)",
    )
    ablate_parser.add_argument(
        "--list-axes",
        action="store_true",
        help="print the axis catalog and presets, then exit",
    )

    serve_parser = subparsers.add_parser(
        "serve", help="build and query a distance service snapshot"
    )
    serve_subparsers = serve_parser.add_subparsers(dest="serve_command", required=True)

    build_parser_ = serve_subparsers.add_parser(
        "build", help="fit IDES on a data set and save a service snapshot"
    )
    build_parser_.add_argument("snapshot", help="output snapshot path (.npz)")
    build_parser_.add_argument(
        "--dataset", default="nlanr", help="data set name (default: nlanr)"
    )
    build_parser_.add_argument(
        "--landmarks", type=int, default=20, help="number of landmarks (default: 20)"
    )
    build_parser_.add_argument(
        "--dimension", type=int, default=10, help="model dimension d (default: 10)"
    )
    build_parser_.add_argument(
        "--method", choices=("svd", "nmf"), default="svd", help="factorization"
    )
    build_parser_.add_argument(
        "--shards", type=int, default=0, help="hash shards (0: unsharded)"
    )
    build_parser_.add_argument(
        "--seed", type=int, default=0, help="landmark selection seed"
    )

    query_parser = serve_subparsers.add_parser(
        "query", help="predict distances from a snapshot"
    )
    query_parser.add_argument("snapshot", help="snapshot path from 'serve build'")
    query_parser.add_argument("--source", type=int, required=True, help="source host id")
    query_parser.add_argument(
        "--dest",
        type=int,
        nargs="+",
        required=True,
        help="destination host id(s); many ids run one vectorized batch",
    )
    query_parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-query deadline budget in milliseconds; an expired "
        "budget rejects the query instead of evaluating it",
    )

    nearest_parser = serve_subparsers.add_parser(
        "nearest", help="k nearest registered hosts to a source"
    )
    nearest_parser.add_argument("snapshot", help="snapshot path from 'serve build'")
    nearest_parser.add_argument("--source", type=int, required=True, help="source host id")
    nearest_parser.add_argument("-k", type=int, default=5, help="neighbors (default: 5)")

    health_parser = serve_subparsers.add_parser(
        "health", help="print a snapshot's service health line"
    )
    health_parser.add_argument("snapshot", help="snapshot path from 'serve build'")
    health_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the health report as a JSON object instead of one line",
    )

    metrics_parser = serve_subparsers.add_parser(
        "metrics",
        help="scrape a running telemetry endpoint and print the exposition",
    )
    metrics_parser.add_argument(
        "target", help="telemetry address (host:port or full URL)"
    )
    metrics_parser.add_argument(
        "--path",
        default="/metrics",
        help="endpoint path: /metrics, /metrics.json, /health, /trace",
    )
    metrics_parser.add_argument(
        "--timeout", type=float, default=5.0, help="scrape timeout in seconds"
    )

    trace_tail_parser = serve_subparsers.add_parser(
        "trace-tail",
        help="render exported trace spans (JSONL) as per-request trees",
    )
    trace_tail_parser.add_argument(
        "export", help="span export file written via --trace-export"
    )
    trace_tail_parser.add_argument(
        "--trace", default=None, help="only show this trace id"
    )
    trace_tail_parser.add_argument(
        "--limit",
        type=int,
        default=10,
        help="newest traces to show (default: 10)",
    )

    bench_parser = serve_subparsers.add_parser(
        "bench-concurrent",
        help="compare micro-batched vs per-query dispatch under load",
    )
    bench_parser.add_argument(
        "--hosts", type=int, default=1000, help="synthetic hosts (default: 1000)"
    )
    bench_parser.add_argument(
        "--dimension", type=int, default=10, help="model dimension d (default: 10)"
    )
    bench_parser.add_argument(
        "--clients", type=int, default=64, help="concurrent clients (default: 64)"
    )
    bench_parser.add_argument(
        "--queries", type=int, default=200, help="queries per client (default: 200)"
    )
    bench_parser.add_argument(
        "--window",
        type=int,
        default=8,
        help="point queries each client keeps in flight (default: 8)",
    )
    bench_parser.add_argument(
        "--seed", type=int, default=0, help="workload seed (default: 0)"
    )

    bench_transport_parser = serve_subparsers.add_parser(
        "bench-transport",
        help="compare pipelined vs one-in-flight shard RPC dispatch",
    )
    bench_transport_parser.add_argument(
        "--depth",
        type=int,
        default=16,
        help="pipeline depth: in-flight RPCs on the one socket (default: 16)",
    )
    bench_transport_parser.add_argument(
        "--codec",
        choices=("scatter", "join"),
        default="scatter",
        help="send-side codec: zero-copy scatter views or legacy join",
    )
    bench_transport_parser.add_argument(
        "--requests",
        type=int,
        default=96,
        help="gather RPCs per strategy (default: 96)",
    )
    bench_transport_parser.add_argument(
        "--batch", type=int, default=32, help="ids per gather (default: 32)"
    )
    bench_transport_parser.add_argument(
        "--work-delay",
        type=float,
        default=0.002,
        help="per-request service time on the shard in seconds (default: 0.002)",
    )
    bench_transport_parser.add_argument(
        "--hosts", type=int, default=256, help="hosts on the shard (default: 256)"
    )
    bench_transport_parser.add_argument(
        "--dimension", type=int, default=10, help="model dimension d (default: 10)"
    )

    refresh_parser = serve_subparsers.add_parser(
        "refresh",
        help="stream drifting RTT observations through the refresh worker",
    )
    refresh_parser.add_argument("snapshot", help="snapshot path from 'serve build'")
    refresh_parser.add_argument(
        "--samples", type=int, default=4000, help="observation draws (default: 4000)"
    )
    refresh_parser.add_argument(
        "--drift",
        type=float,
        default=0.2,
        help="per-host drift half-width (default: 0.2)",
    )
    refresh_parser.add_argument(
        "--noise", type=float, default=0.0, help="per-sample jitter (default: 0)"
    )
    refresh_parser.add_argument(
        "--learning-rate", type=float, default=0.3, help="tracker step (default: 0.3)"
    )
    refresh_parser.add_argument(
        "--flush-every",
        type=int,
        default=256,
        help="samples between bulk flushes (default: 256)",
    )
    refresh_parser.add_argument(
        "--seed", type=int, default=0, help="drift/stream seed (default: 0)"
    )
    refresh_parser.add_argument(
        "--save", default=None, help="write the refreshed snapshot here"
    )

    shard_parser = serve_subparsers.add_parser(
        "shard",
        help="run one shard server process (blocks until a shutdown RPC)",
    )
    shard_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    shard_parser.add_argument(
        "--port", type=int, default=0, help="bind port (default: 0 = pick free)"
    )
    shard_parser.add_argument(
        "--shard-index", type=int, default=0, help="this server's shard slot"
    )
    shard_parser.add_argument(
        "--n-shards", type=int, default=1, help="total shards in the deployment"
    )
    shard_parser.add_argument(
        "--snapshot",
        default=None,
        help="seed from this snapshot (only hosts hashing to --shard-index)",
    )
    shard_parser.add_argument(
        "--dimension",
        type=int,
        default=None,
        help="model dimension for an empty shard (ignored with --snapshot)",
    )
    shard_parser.add_argument(
        "--work-delay",
        type=float,
        default=0.0,
        help="artificial per-request service time in seconds (benchmarks)",
    )
    shard_parser.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="admission bound: reject (don't queue) requests beyond "
        "this many queued + in-flight (default: unbounded)",
    )
    shard_parser.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        help="serve HTTP /metrics and /health on this port (0 = pick free)",
    )
    shard_parser.add_argument(
        "--trace-export",
        default=None,
        help="append finished trace spans to this JSONL file",
    )
    shard_parser.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        help="log spans at least this many milliseconds long as slow",
    )

    router_parser = serve_subparsers.add_parser(
        "router",
        help="route queries across running shard servers (scatter-gather)",
    )
    router_parser.add_argument(
        "--shard",
        action="append",
        required=True,
        metavar="HOST:PORT",
        help="shard server address, repeated once per shard, in shard order",
    )
    router_parser.add_argument(
        "--snapshot",
        default=None,
        help="seed the shards with this snapshot's vectors before querying",
    )
    router_parser.add_argument(
        "--source", type=int, default=None, help="source host id to query"
    )
    router_parser.add_argument(
        "--dest",
        type=int,
        nargs="+",
        default=None,
        help="destination host id(s) for --source",
    )
    router_parser.add_argument(
        "--nearest",
        type=int,
        default=None,
        metavar="K",
        help="also print the K nearest hosts to --source",
    )
    router_parser.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        help="per-RPC timeout in seconds (default: 10)",
    )
    router_parser.add_argument(
        "--shutdown",
        action="store_true",
        help="send every shard a shutdown RPC before exiting",
    )
    router_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the cluster health report as JSON instead of text",
    )

    replica_set_parser = serve_subparsers.add_parser(
        "replica-set",
        help="boot a replicated cluster: N hash slices x M replica "
        "servers with health-aware failover routing",
    )
    replica_set_parser.add_argument(
        "--slices", type=int, default=2, help="hash slices (default: 2)"
    )
    replica_set_parser.add_argument(
        "--replicas",
        type=int,
        default=2,
        help="replica servers per slice (default: 2)",
    )
    replica_set_parser.add_argument(
        "--snapshot",
        default=None,
        help="seed every replica from this snapshot (each keeps only "
        "its slice's hosts)",
    )
    replica_set_parser.add_argument(
        "--dimension",
        type=int,
        default=None,
        help="model dimension for empty replicas (ignored with --snapshot)",
    )
    replica_set_parser.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="serve for this long, then shut the cluster down "
        "(default: until Ctrl-C)",
    )
    replica_set_parser.add_argument(
        "--metrics",
        action="store_true",
        help="give every replica a /metrics endpoint on a free port",
    )
    replica_set_parser.add_argument(
        "--journal-dir",
        default=None,
        metavar="DIR",
        help="persist every replica's update journal under DIR (one "
        "private slice{i}-r{j} subdirectory per replica); a restarted "
        "replica replays its journal before serving",
    )
    replica_set_parser.add_argument(
        "--anti-entropy",
        type=float,
        default=None,
        metavar="SECONDS",
        help="run a background digest-exchange repair round at this "
        "interval (default: repair only on write-time seq lag)",
    )
    replica_set_parser.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        help="per-RPC timeout in seconds (default: 10)",
    )
    replica_set_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the cluster health report as JSON instead of text",
    )

    repair_parser = serve_subparsers.add_parser(
        "repair",
        help="inspect one replica group's seq lag and digests, then "
        "trigger an anti-entropy repair round",
    )
    repair_parser.add_argument(
        "replica",
        nargs="+",
        metavar="HOST:PORT",
        help="the replica servers of ONE hash slice (all serving the "
        "same shard slot)",
    )
    repair_parser.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        help="per-RPC timeout in seconds (default: 10)",
    )
    repair_parser.add_argument(
        "--check",
        action="store_true",
        help="report divergence only (exit 1 when replicas disagree); "
        "do not repair",
    )
    repair_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the repair report as JSON instead of text",
    )
    return parser


def _command_list() -> int:
    from .evaluation.ablation import PRESETS, axis_catalog, expand_grid

    print("experiments (ides-experiment run <id>):")
    for experiment_id in available_experiments():
        print(f"  {experiment_id}")
    print()
    print("ablation axes (ides-experiment ablate --axis name=v1,v2):")
    for spec in axis_catalog():
        if spec.kind == "choice":
            domain = ", ".join(spec.choices)
        else:
            domain = "number >= 0"
        print(f"  {spec.name}: {spec.description} [{domain}] (default {spec.default})")
    print()
    print("ablation presets (ides-experiment ablate --preset <name>):")
    for name, preset in PRESETS.items():
        print(f"  {name}: {len(expand_grid(preset))} cells, {preset.n_hosts} hosts")
    return 0


def _command_run(
    experiment: str, seed: int | None, fast: bool, plot: bool = False
) -> int:
    from .evaluation import render_charts

    if experiment == "all":
        targets = available_experiments()
    else:
        targets = [experiment]
    for experiment_id in targets:
        started = time.perf_counter()
        try:
            result = run_experiment(experiment_id, seed=seed, fast=fast)
        except KeyError as error:
            print(error, file=sys.stderr)
            return 2
        elapsed = time.perf_counter() - started
        print(result)
        if plot:
            for chart in render_charts(result):
                print()
                print(chart)
        print(f"[{experiment_id} completed in {elapsed:.1f}s]")
        print()
    return 0


def _command_serve_build(arguments) -> int:
    from .datasets import split_landmarks
    from .ides import IDESSystem

    dataset = load_dataset(arguments.dataset)
    split = split_landmarks(dataset, arguments.landmarks, seed=arguments.seed)
    system = IDESSystem(dimension=arguments.dimension, method=arguments.method)
    system.fit_landmarks(split.landmark_matrix)
    system.place_hosts(split.out_distances, split.in_distances)
    service = system.to_service(
        host_ids=[int(i) for i in split.ordinary_indices],
        landmark_ids=[int(i) for i in split.landmark_indices],
        n_shards=arguments.shards,
    )
    path = service.save(arguments.snapshot)
    print(f"wrote {path}")
    print(f"health: {service.health()}")
    return 0


def _load_service(snapshot_path: str):
    from .serving import DistanceService

    # ReproError (file missing / not a snapshot) is handled by
    # _command_serve's shared catch.
    return DistanceService.load(snapshot_path)


def _command_serve_query(arguments) -> int:
    service = _load_service(arguments.snapshot)
    source = arguments.source
    deadline = None
    if arguments.deadline_ms is not None:
        from .serving.transport import Deadline

        deadline = Deadline.after(arguments.deadline_ms / 1000.0)
    if len(arguments.dest) == 1:
        value = service.query(source, arguments.dest[0], deadline=deadline)
        print(f"{source} -> {arguments.dest[0]}: {value:.3f}")
    elif deadline is not None:
        # Deadline-budgeted batches check the remaining budget before
        # every evaluation, so the command stops at the first expiry
        # instead of finishing the batch late.
        for destination in arguments.dest:
            value = service.query(source, destination, deadline=deadline)
            print(f"{source} -> {destination}: {value:.3f}")
    else:
        values = service.query_one_to_many(source, arguments.dest)
        for destination, value in zip(arguments.dest, values):
            print(f"{source} -> {destination}: {value:.3f}")
    print(f"health: {service.health()}")
    return 0


def _command_serve_nearest(arguments) -> int:
    service = _load_service(arguments.snapshot)
    for host_id, distance in service.k_nearest(arguments.source, arguments.k):
        print(f"{arguments.source} -> {host_id}: {distance:.3f}")
    print(f"health: {service.health()}")
    return 0


def _command_serve_health(arguments) -> int:
    health = _load_service(arguments.snapshot).health()
    if arguments.json:
        import json

        print(json.dumps(health.to_dict(), indent=2, sort_keys=True))
    else:
        print(health)
    return 0


def _command_serve_metrics(arguments) -> int:
    from .serving.observability import scrape

    try:
        print(scrape(arguments.target, arguments.path, timeout=arguments.timeout))
    except OSError as error:
        print(f"scrape failed: {error}", file=sys.stderr)
        return 2
    return 0


def _command_serve_trace_tail(arguments) -> int:
    from .serving.observability import (
        build_trace_trees,
        format_trace_tree,
        load_spans,
    )

    spans = load_spans(arguments.export)
    if not spans:
        print(f"no spans in {arguments.export}", file=sys.stderr)
        return 2
    trees = build_trace_trees(spans)
    if arguments.trace is not None:
        if arguments.trace not in trees:
            print(f"trace {arguments.trace} not found", file=sys.stderr)
            return 2
        selected = [(arguments.trace, trees[arguments.trace])]
    else:
        # Newest last, ordered by each trace's earliest span.
        ordered = sorted(
            trees.items(),
            key=lambda item: min(
                root.get("start_time", 0.0) for root in item[1]
            ),
        )
        selected = ordered[-arguments.limit :]
    for trace_id, roots in selected:
        print(f"trace {trace_id}")
        print(format_trace_tree(roots))
    print(f"{len(selected)}/{len(trees)} traces, {len(spans)} spans total")
    return 0


def _command_serve_bench_concurrent(arguments) -> int:
    import numpy as np

    from .serving import (
        DistanceService,
        measure_concurrent_throughput,
        measure_per_query_throughput,
    )

    rng = np.random.default_rng(arguments.seed)
    shape = (arguments.hosts, arguments.dimension)
    ids = list(range(arguments.hosts))
    service = DistanceService.from_vectors(
        ids, rng.random(shape), rng.random(shape), landmark_ids=ids[:20]
    )
    print(
        f"workload: {arguments.hosts} hosts, d={arguments.dimension}, "
        f"{arguments.clients} clients x {arguments.queries} queries"
    )
    per_query = measure_per_query_throughput(
        service,
        n_clients=arguments.clients,
        queries_per_client=arguments.queries,
        seed=arguments.seed,
    )
    batched = measure_concurrent_throughput(
        service,
        n_clients=arguments.clients,
        queries_per_client=arguments.queries,
        window=arguments.window,
        seed=arguments.seed,
    )
    print(per_query)
    print(batched)
    if per_query.queries_per_second > 0:
        ratio = batched.queries_per_second / per_query.queries_per_second
        print(f"speedup: {ratio:.1f}x")
    return 0


def _command_serve_bench_transport(arguments) -> int:
    from .serving import measure_pipelined_speedup

    print(
        f"workload: one shard process, {arguments.hosts} hosts, "
        f"d={arguments.dimension}, {arguments.requests} gathers of "
        f"{arguments.batch} ids, work_delay "
        f"{arguments.work_delay * 1000:.1f} ms/RPC"
    )
    report = measure_pipelined_speedup(
        depth=arguments.depth,
        requests=arguments.requests,
        batch=arguments.batch,
        work_delay=arguments.work_delay,
        codec=arguments.codec,
        dimension=arguments.dimension,
        n_hosts=arguments.hosts,
    )
    print(f"one-in-flight (v1): {report.sequential_seconds * 1000:8.1f} ms")
    print(f"pipelined (v2)    : {report.pipelined_seconds * 1000:8.1f} ms")
    print(f"speedup           : {report.speedup:8.1f} x  (depth "
          f"{report.depth}, codec {report.codec})")
    return 0


def _command_serve_refresh(arguments) -> int:
    from .serving import RefreshWorker, synthetic_drift_stream

    service = _load_service(arguments.snapshot)
    worker = RefreshWorker(
        service,
        learning_rate=arguments.learning_rate,
        flush_every=arguments.flush_every,
    )
    stream = synthetic_drift_stream(
        service,
        samples=arguments.samples,
        drift=arguments.drift,
        noise=arguments.noise,
        seed=arguments.seed,
    )
    observations = list(stream)
    midpoint = max(1, len(observations) // 2)
    worker.run(iter(observations[:midpoint]))
    early = worker.stats()
    worker.run(iter(observations[midpoint:]))
    late = worker.stats()
    early_residual = (
        f"{early.mean_abs_residual:.3f}"
        if early.mean_abs_residual is not None
        else "n/a"
    )
    late_residual = (
        f"{late.mean_abs_residual:.3f}"
        if late.mean_abs_residual is not None
        else "n/a"
    )
    print(f"drift +-{arguments.drift:.0%} over {len(observations)} observations")
    print(f"residual ewma: {early_residual} (midstream) -> {late_residual} (final)")
    print(f"refresh: {late}")
    print(f"health: {service.health()}")
    if arguments.save:
        print(f"wrote {service.save(arguments.save)}")
    return 0


def _command_serve_shard(arguments) -> int:
    from .serving.transport import run_shard_server

    run_shard_server(
        dimension=arguments.dimension,
        shard_index=arguments.shard_index,
        n_shards=arguments.n_shards,
        host=arguments.host,
        port=arguments.port,
        snapshot_path=arguments.snapshot,
        work_delay=arguments.work_delay,
        max_inflight=arguments.max_inflight,
        metrics_port=arguments.metrics_port,
        trace_export=arguments.trace_export,
        slow_ms=arguments.slow_ms,
        announce=print,
    )
    return 0


def _command_serve_router(arguments) -> int:
    import asyncio

    from .exceptions import TransportError
    from .serving import connect_router, load_snapshot

    async def session() -> int:
        try:
            router = await connect_router(
                arguments.shard, timeout=arguments.timeout
            )
        except TransportError as dark:
            # A dark shard fails the topology handshake, but an
            # operator pointing at a half-up cluster still needs the
            # health report and --shutdown to reach the live shards.
            if arguments.snapshot or arguments.source is not None:
                raise
            print(f"handshake failed ({dark}); degraded session", file=sys.stderr)
            router = await connect_router(
                arguments.shard, handshake=False, timeout=arguments.timeout
            )
        try:
            if arguments.snapshot:
                snapshot = load_snapshot(arguments.snapshot)
                stored = await router.put_many(
                    snapshot.ids, snapshot.outgoing, snapshot.incoming
                )
                print(
                    f"seeded {stored} hosts across {router.n_shards} shards "
                    f"from {arguments.snapshot}"
                )
            if arguments.source is not None and arguments.dest:
                values = await router.one_to_many(
                    arguments.source, arguments.dest
                )
                for destination, value in zip(arguments.dest, values):
                    print(f"{arguments.source} -> {destination}: {value:.3f}")
            if arguments.source is not None and arguments.nearest:
                neighbors = await router.k_nearest(
                    arguments.source, arguments.nearest
                )
                for host_id, distance in neighbors:
                    print(f"{arguments.source} ~ {host_id}: {distance:.3f}")
            health = await router.health()
            if arguments.json:
                import json

                print(json.dumps(health.to_dict(), indent=2, sort_keys=True))
            else:
                for shard in health.shards:
                    print(f"  {shard}")
                print(f"health: {health}")
            if arguments.shutdown:
                stopped = 0
                for client in router.clients:
                    # Best-effort: a shard that is already dark must not
                    # keep the live ones running.
                    try:
                        await client.call("shutdown")
                        stopped += 1
                    except TransportError:
                        pass
                print(f"sent shutdown to {stopped}/{router.n_shards} shards")
            return 2 if health.unreachable_shards else 0
        finally:
            await router.close()

    return asyncio.run(session())


def _command_serve_replica_set(arguments) -> int:
    import asyncio
    from pathlib import Path

    from .exceptions import ValidationError
    from .serving.transport import spawn_shard_process
    from .serving.transport.replica import connect_replica_router

    if arguments.slices < 1 or arguments.replicas < 1:
        raise ValidationError("replica-set needs --slices >= 1, --replicas >= 1")
    if arguments.snapshot is None and arguments.dimension is None:
        raise ValidationError("replica-set needs --snapshot or --dimension")

    def _journal_dir(slice_index: int, replica_index: int) -> str | None:
        if arguments.journal_dir is None:
            return None
        # One private directory per replica: journals are per-server
        # sequences and must never be shared.
        return str(
            Path(arguments.journal_dir)
            / f"slice{slice_index}-r{replica_index}"
        )

    processes = []
    try:
        groups = []
        for slice_index in range(arguments.slices):
            members = [
                spawn_shard_process(
                    slice_index,
                    arguments.slices,
                    dimension=arguments.dimension,
                    snapshot_path=arguments.snapshot,
                    metrics_port=0 if arguments.metrics else None,
                    journal_dir=_journal_dir(slice_index, replica_index),
                )
                for replica_index in range(arguments.replicas)
            ]
            processes.extend(members)
            addresses = [f"{p.host}:{p.port}" for p in members]
            groups.append(addresses)
            line = f"slice {slice_index}/{arguments.slices}: " + " ".join(addresses)
            if arguments.metrics:
                line += "  (metrics: " + " ".join(
                    "http://{}:{}".format(*p.metrics_address) for p in members
                ) + ")"
            print(line)

        async def session() -> int:
            router = await connect_replica_router(
                groups,
                timeout=arguments.timeout,
                anti_entropy_seconds=arguments.anti_entropy,
            )
            try:
                health = await router.health()
                if arguments.json:
                    import json

                    print(json.dumps(health.to_dict(), indent=2, sort_keys=True))
                else:
                    for shard in health.shards:
                        print(f"  {shard}")
                    print(f"health: {health}")
                if health.unreachable_shards:
                    return 2
                if arguments.anti_entropy is not None:
                    # The background repair loops live on the router's
                    # replica groups — keep the session open for the
                    # whole serving window.
                    if arguments.duration is not None:
                        await asyncio.sleep(arguments.duration)
                    else:
                        print("serving until Ctrl-C ...")
                        while True:
                            await asyncio.sleep(3600.0)
                return 0
            finally:
                await router.close()

        try:
            code = asyncio.run(session())
        except KeyboardInterrupt:
            code = 0
        if code == 0 and arguments.anti_entropy is None:
            try:
                if arguments.duration is not None:
                    time.sleep(arguments.duration)
                else:
                    print("serving until Ctrl-C ...")
                    while True:
                        time.sleep(3600.0)
            except KeyboardInterrupt:
                pass
        return code
    finally:
        for process in processes:
            process.stop()


def _command_serve_repair(arguments) -> int:
    import asyncio

    from .serving.transport import RemoteShardClient
    from .serving.transport.replica import ReplicaGroup
    from .serving.transport.router import _parse_address

    async def poll_digests(group) -> tuple[dict, bool]:
        digests, reachable = {}, True
        for replica in group._replicas:
            address = replica.client.address
            try:
                reply = await replica.client.call("digest")
                digests[address] = reply.fields.get("digest")
            except Exception:  # noqa: BLE001 - a dark replica is a
                # divergence verdict, not a crash
                digests[address] = None
                reachable = False
        return digests, reachable

    async def session() -> int:
        clients = [
            RemoteShardClient(
                *_parse_address(address), timeout=arguments.timeout
            )
            for address in arguments.replica
        ]
        group = ReplicaGroup(clients)
        try:
            await group.probe()
            report = None if arguments.check else await group.repair()
            health = {h.address: h for h in group.replica_health()}
            digests, reachable = await poll_digests(group)
            distinct = {d for d in digests.values() if d is not None}
            converged = reachable and len(distinct) <= 1
            if arguments.json:
                import json

                payload = {
                    "replicas": {
                        address: state.to_dict()
                        for address, state in health.items()
                    },
                    "digests": digests,
                    "converged": converged,
                    "repair": report,
                }
                print(json.dumps(payload, indent=2, sort_keys=True))
            else:
                for address in sorted(digests):
                    state = health.get(address)
                    digest = digests[address]
                    line = (
                        f"  {address}: state={state.state} "
                        f"seq={state.applied_seq} lag={state.seq_lag} "
                        f"repairs={state.repairs}"
                        if state is not None
                        else f"  {address}:"
                    )
                    line += (
                        f" digest={digest[:12]}"
                        if digest
                        else " digest=unavailable"
                    )
                    if report and "error" in report.get(address, {}):
                        line += f" error={report[address]['error']}"
                    print(line)
                verdict = "converged" if converged else "diverged"
                action = "check" if arguments.check else "repair"
                print(f"{action}: {verdict}")
            return 0 if converged else 1
        finally:
            await group.close()

    return asyncio.run(session())


def _command_serve(arguments) -> int:
    from .exceptions import ReproError

    handlers = {
        "build": _command_serve_build,
        "query": _command_serve_query,
        "nearest": _command_serve_nearest,
        "health": _command_serve_health,
        "bench-concurrent": _command_serve_bench_concurrent,
        "bench-transport": _command_serve_bench_transport,
        "refresh": _command_serve_refresh,
        "shard": _command_serve_shard,
        "router": _command_serve_router,
        "replica-set": _command_serve_replica_set,
        "repair": _command_serve_repair,
        "metrics": _command_serve_metrics,
        "trace-tail": _command_serve_trace_tail,
    }
    try:
        return handlers[arguments.serve_command](arguments)
    except ReproError as error:
        print(error, file=sys.stderr)
        return 2


def _command_ablate(arguments) -> int:
    import dataclasses
    import json
    from pathlib import Path

    from .evaluation.ablation import (
        PRESETS,
        AblationConfig,
        axis_catalog,
        build_report,
        expand_grid,
        load_config,
        parse_axis_flag,
        render_markdown,
        require_valid_report,
        run_ablation,
    )
    from .evaluation.ablation.runner import (
        append_sidecar,
        read_sidecar,
        sidecar_path,
    )
    from .exceptions import ValidationError

    if arguments.list_axes:
        for spec in axis_catalog():
            domain = (
                ", ".join(spec.choices) if spec.kind == "choice" else "number >= 0"
            )
            print(f"{spec.name}: {spec.description} [{domain}] (default {spec.default})")
        print(f"presets: {', '.join(PRESETS)}")
        return 0

    preset = arguments.preset
    if arguments.fast:
        if preset is not None and preset != "smoke":
            print("--fast conflicts with --preset", file=sys.stderr)
            return 2
        preset = "smoke"
    if preset is not None and arguments.config is not None:
        print("--config conflicts with --preset/--fast", file=sys.stderr)
        return 2

    try:
        if arguments.config is not None:
            config = load_config(arguments.config)
        elif preset is not None:
            if preset not in PRESETS:
                raise ValidationError(
                    f"unknown preset {preset!r} (known: {', '.join(PRESETS)})"
                )
            config = PRESETS[preset]
        else:
            config = AblationConfig()

        overrides = {}
        if arguments.axis:
            axes = dict(config.axes)
            for flag in arguments.axis:
                name, values = parse_axis_flag(flag)
                axes[name] = values
            overrides["axes"] = axes
        for field, value in (
            ("seed", arguments.seed),
            ("n_hosts", arguments.hosts),
            ("n_landmarks", arguments.landmarks),
            ("dimension", arguments.dimension),
        ):
            if value is not None:
                overrides[field] = value
        if overrides:
            config = dataclasses.replace(config, **overrides)
        config = config.validate()

        timeout = arguments.timeout if arguments.timeout > 0 else None
        if arguments.in_process:
            timeout = None
        if arguments.jobs < 1:
            raise ValidationError(f"--jobs must be >= 1, got {arguments.jobs}")
    except ValidationError as error:
        print(error, file=sys.stderr)
        return 2

    output = Path(arguments.output)
    output.parent.mkdir(parents=True, exist_ok=True)
    fingerprint = config.fingerprint()
    sidecar = sidecar_path(output)

    completed = {}
    if arguments.resume:
        completed = read_sidecar(sidecar, fingerprint)
        if completed:
            print(f"[resume] reusing {len(completed)} finished cells from {sidecar}")
    elif sidecar.exists():
        sidecar.unlink()

    n_cells = len(expand_grid(config))
    progress = {"done": len(completed)}

    def on_cell_complete(result) -> None:
        progress["done"] += 1
        append_sidecar(sidecar, fingerprint, result)
        print(
            f"[{progress['done']}/{n_cells}] {result.status:7s} "
            f"{result.cell_id} ({result.duration_seconds:.1f}s)"
        )

    started = time.perf_counter()
    results = run_ablation(
        config,
        jobs=arguments.jobs,
        timeout=timeout,
        in_process=arguments.in_process,
        completed=completed,
        on_cell_complete=on_cell_complete,
    )
    elapsed = time.perf_counter() - started

    report = require_valid_report(build_report(config, results))
    output.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    markdown = render_markdown(report)
    if arguments.markdown is not None:
        Path(arguments.markdown).write_text(markdown, encoding="utf-8")
    print()
    print(markdown)
    print(f"[report: {output}; {n_cells} cells in {elapsed:.1f}s]")

    failed = [result for result in results if not result.ok]
    if failed and not arguments.allow_failures:
        print(
            f"{len(failed)} cell(s) failed; see the report "
            "(pass --allow-failures to tolerate)",
            file=sys.stderr,
        )
        return 1
    return 0


def _command_datasets() -> int:
    for name in list_datasets():
        dataset = load_dataset(name)
        print(dataset.describe())
        print(f"  {dataset_statistics(dataset)}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    if arguments.command == "list":
        return _command_list()
    if arguments.command == "run":
        return _command_run(
            arguments.experiment, arguments.seed, arguments.fast, arguments.plot
        )
    if arguments.command == "datasets":
        return _command_datasets()
    if arguments.command == "ablate":
        return _command_ablate(arguments)
    if arguments.command == "serve":
        return _command_serve(arguments)
    parser.error(f"unknown command {arguments.command!r}")
    return 2  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
