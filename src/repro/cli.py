"""Command-line entry point: run any paper experiment and print it.

Usage::

    ides-experiment list
    ides-experiment run fig2
    ides-experiment run table1 --fast
    ides-experiment run all --seed 7
    ides-experiment datasets

or ``python -m repro.cli ...``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from .datasets import dataset_statistics, list_datasets, load_dataset
from .evaluation import available_experiments, run_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="ides-experiment",
        description=(
            "Reproduction harness for 'Modeling Distances in Large-Scale "
            "Networks by Matrix Factorization' (Mao & Saul, IMC 2004)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument(
        "experiment",
        help="experiment id from 'list', or 'all'",
    )
    run_parser.add_argument(
        "--seed", type=int, default=None, help="generation seed (default: canonical)"
    )
    run_parser.add_argument(
        "--fast", action="store_true", help="shrink workloads for a quick pass"
    )
    run_parser.add_argument(
        "--plot", action="store_true", help="also render terminal charts"
    )

    subparsers.add_parser("datasets", help="summarize the synthetic data sets")
    return parser


def _command_list() -> int:
    for experiment_id in available_experiments():
        print(experiment_id)
    return 0


def _command_run(
    experiment: str, seed: int | None, fast: bool, plot: bool = False
) -> int:
    from .evaluation import render_charts

    if experiment == "all":
        targets = available_experiments()
    else:
        targets = [experiment]
    for experiment_id in targets:
        started = time.perf_counter()
        try:
            result = run_experiment(experiment_id, seed=seed, fast=fast)
        except KeyError as error:
            print(error, file=sys.stderr)
            return 2
        elapsed = time.perf_counter() - started
        print(result)
        if plot:
            for chart in render_charts(result):
                print()
                print(chart)
        print(f"[{experiment_id} completed in {elapsed:.1f}s]")
        print()
    return 0


def _command_datasets() -> int:
    for name in list_datasets():
        dataset = load_dataset(name)
        print(dataset.describe())
        print(f"  {dataset_statistics(dataset)}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    if arguments.command == "list":
        return _command_list()
    if arguments.command == "run":
        return _command_run(
            arguments.experiment, arguments.seed, arguments.fast, arguments.plot
        )
    if arguments.command == "datasets":
        return _command_datasets()
    parser.error(f"unknown command {arguments.command!r}")
    return 2  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
