"""Min-of-N RTT probing, the methodology behind NLANR and PL-RTT data.

"Each host was pinged once per minute, and network distance was taken
as the minimum of the ping times over the day" (paper Section 4.3.1).
:class:`Pinger` reproduces that estimator: draw ``n`` noisy samples per
pair, discard losses, keep the minimum. With enough samples the minimum
converges to the true propagation RTT, which is why NLANR is the
cleanest data set in Figure 2.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_matrix, as_rng
from ..exceptions import MeasurementError, ValidationError
from .noise import NoNoise, NoiseModel

__all__ = ["Pinger"]


class Pinger:
    """Simulated prober over a ground-truth RTT matrix.

    Args:
        true_rtt: ``(N, N')`` matrix of true RTTs in ms.
        noise: per-sample noise model; ideal by default.
        samples: probes per pair; the estimate is their minimum.
        seed: randomness source.
    """

    def __init__(
        self,
        true_rtt: object,
        noise: NoiseModel | None = None,
        samples: int = 10,
        seed: int | np.random.Generator | None = None,
    ):
        self.true_rtt = as_matrix(true_rtt, name="true_rtt")
        self.noise = noise if noise is not None else NoNoise()
        if samples < 1:
            raise ValidationError(f"samples must be >= 1, got {samples}")
        self.samples = int(samples)
        self._rng = as_rng(seed)

    def measure(self, source: int, destination: int) -> float:
        """Min-of-N RTT estimate for one pair.

        Raises:
            MeasurementError: if every probe in the batch was lost.
        """
        true_value = np.asarray([self.true_rtt[source, destination]])
        best = np.inf
        for _ in range(self.samples):
            sample = self.noise.sample(true_value, self._rng)[0]
            if np.isfinite(sample):
                best = min(best, float(sample))
        if not np.isfinite(best):
            raise MeasurementError(
                f"all {self.samples} probes from {source} to {destination} were lost"
            )
        return best

    def measure_matrix(
        self,
        source_indices: object | None = None,
        target_indices: object | None = None,
    ) -> np.ndarray:
        """Min-of-N estimates for a block of pairs, vectorized.

        Args:
            source_indices: row subset (all rows if omitted).
            target_indices: column subset (all columns if omitted).

        Returns:
            matrix of estimates; pairs whose every probe was lost come
            back NaN (the collector layer handles missingness). The
            diagonal of a square block is forced to exact zero — a host
            needs no probe to know its self-distance.
        """
        rows = (
            np.arange(self.true_rtt.shape[0])
            if source_indices is None
            else np.asarray(source_indices, dtype=int)
        )
        cols = (
            np.arange(self.true_rtt.shape[1])
            if target_indices is None
            else np.asarray(target_indices, dtype=int)
        )
        block = self.true_rtt[np.ix_(rows, cols)]

        best = np.full(block.shape, np.inf)
        for _ in range(self.samples):
            sample = self.noise.sample(block, self._rng)
            best = np.fmin(best, sample)
        best[np.isinf(best)] = np.nan

        if block.shape[0] == block.shape[1] and np.array_equal(rows, cols):
            np.fill_diagonal(best, 0.0)
        return best
