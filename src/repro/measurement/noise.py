"""Noise models for simulated RTT probes.

A single ping sample is the propagation RTT plus transient components:
small jitter from serialization and scheduling, occasional large
queueing spikes when a router buffer is loaded, and outright loss. The
data sets the paper uses (NLANR, PL-RTT) take the *minimum* of many
samples precisely to strip these components; our pinger reproduces that
pipeline, so the residual noise floor in the generated matrices matches
the character of real min-RTT data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from .._validation import as_rng, check_fraction
from ..exceptions import ValidationError

__all__ = [
    "NoiseModel",
    "NoNoise",
    "GaussianJitter",
    "QueueingSpikes",
    "PacketLoss",
    "CompositeNoise",
    "noise_model_from_name",
]


class NoiseModel(Protocol):
    """Transforms a vector of true RTTs into noisy probe samples.

    Implementations must be pure given the generator: all randomness
    comes from ``rng``. A returned NaN marks a lost probe.
    """

    def sample(self, true_rtt: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return one noisy sample per entry of ``true_rtt``."""
        ...  # pragma: no cover


@dataclass(frozen=True)
class NoNoise:
    """Ideal measurement: samples equal the true RTT."""

    def sample(self, true_rtt: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return the true RTTs unchanged (as a copy)."""
        return np.array(true_rtt, dtype=float, copy=True)


@dataclass(frozen=True)
class GaussianJitter:
    """Additive truncated-Gaussian jitter.

    Attributes:
        sigma_ms: jitter standard deviation; samples never fall below
            the true RTT (a probe cannot beat the propagation delay).
    """

    sigma_ms: float = 0.5

    def sample(self, true_rtt: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Add truncated-Gaussian jitter above the true RTT."""
        jitter = np.abs(rng.normal(0.0, self.sigma_ms, size=np.shape(true_rtt)))
        return np.asarray(true_rtt, dtype=float) + jitter


@dataclass(frozen=True)
class QueueingSpikes:
    """Occasional exponential queueing delay added to a sample.

    Attributes:
        probability: chance a probe hits a loaded queue.
        mean_ms: mean of the exponential spike magnitude.
    """

    probability: float = 0.1
    mean_ms: float = 20.0

    def sample(self, true_rtt: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Add an exponential queueing spike with the given probability."""
        check_fraction(self.probability, name="probability")
        base = np.asarray(true_rtt, dtype=float)
        hit = rng.random(base.shape) < self.probability
        spikes = rng.exponential(self.mean_ms, size=base.shape)
        return base + np.where(hit, spikes, 0.0)


@dataclass(frozen=True)
class PacketLoss:
    """Independent probe loss; lost probes are NaN.

    Attributes:
        probability: per-probe loss rate.
    """

    probability: float = 0.01

    def sample(self, true_rtt: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Drop each probe independently (lost probes become NaN)."""
        check_fraction(self.probability, name="probability")
        base = np.array(true_rtt, dtype=float, copy=True)
        lost = rng.random(base.shape) < self.probability
        base[lost] = np.nan
        return base


@dataclass(frozen=True)
class CompositeNoise:
    """Apply several noise models in sequence.

    Attributes:
        stages: models applied left to right; a NaN introduced by any
            stage survives to the output (loss dominates).
    """

    stages: tuple = field(default_factory=tuple)

    def sample(self, true_rtt: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Apply every stage in order; loss survives the whole chain."""
        current = np.asarray(true_rtt, dtype=float)
        for stage in self.stages:
            lost = np.isnan(current)
            current = stage.sample(np.where(lost, 0.0, current), rng)
            current[lost] = np.nan
        return current


def default_internet_noise() -> CompositeNoise:
    """The noise profile used by the data-set generators by default."""
    return CompositeNoise(
        stages=(GaussianJitter(sigma_ms=0.4), QueueingSpikes(probability=0.15, mean_ms=15.0))
    )


def noise_model_from_name(name: str) -> NoiseModel:
    """Named noise profiles for declarative scenario configs.

    The catalog behind the ablation harness's ``noise`` axis:

    * ``none`` — ideal probes;
    * ``jitter`` — serialization/scheduling jitter only;
    * ``spikes`` — occasional queueing spikes only;
    * ``internet`` — the composite default of the data-set generators;
    * ``lossy`` — the internet profile plus 5% independent probe loss.

    (The King *methodology* is not a probe noise model — the harness
    handles ``noise=king`` at the campaign level via
    :class:`repro.measurement.KingEstimator`.)
    """
    catalog: dict[str, NoiseModel] = {
        "none": NoNoise(),
        "jitter": GaussianJitter(sigma_ms=0.8),
        "spikes": QueueingSpikes(probability=0.2, mean_ms=20.0),
        "internet": default_internet_noise(),
        "lossy": CompositeNoise(
            stages=(
                GaussianJitter(sigma_ms=0.4),
                QueueingSpikes(probability=0.15, mean_ms=15.0),
                PacketLoss(probability=0.05),
            )
        ),
    }
    try:
        return catalog[name]
    except KeyError:
        known = ", ".join(sorted(catalog))
        raise ValidationError(
            f"unknown noise profile {name!r} (known: {known})"
        ) from None


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Public re-export of the internal RNG coercion for convenience."""
    return as_rng(seed)
