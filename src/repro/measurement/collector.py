"""Measurement campaigns: assembling (possibly incomplete) matrices.

A campaign drives a prober over a host population and produces the
artifact every algorithm in this library consumes: a distance matrix
plus its observation mask. Missingness has two independent sources —
probe loss inside the prober, and hosts that are down or unreachable
for entire rows/columns — mirroring why the paper had to filter its
raw data sets ("parts of the data sets were filtered out to eliminate
missing elements", Section 4.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_rng, check_fraction
from ..core.masks import mask_from_missing
from .noise import NoiseModel
from .pinger import Pinger

__all__ = ["CampaignResult", "MeasurementCampaign"]


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of a measurement campaign.

    Attributes:
        distances: measured matrix; NaN marks unmeasured pairs.
        mask: boolean observation matrix (True = measured).
        down_hosts: indices of hosts that were down for the campaign.
    """

    distances: np.ndarray
    mask: np.ndarray
    down_hosts: np.ndarray

    @property
    def completeness(self) -> float:
        """Fraction of matrix entries actually observed."""
        return float(self.mask.mean())


class MeasurementCampaign:
    """All-pairs campaign over a ground-truth RTT matrix.

    Args:
        true_rtt: square ground-truth matrix.
        noise: per-probe noise model.
        samples: probes per pair (min-of-N estimation).
        pair_loss: fraction of pairs that fail to produce any estimate
            (beyond per-probe loss) — path outages, filtering.
        host_downtime: fraction of hosts down for the whole campaign;
            their rows and columns are entirely missing.
        seed: randomness source.
    """

    def __init__(
        self,
        true_rtt: object,
        noise: NoiseModel | None = None,
        samples: int = 10,
        pair_loss: float = 0.0,
        host_downtime: float = 0.0,
        seed: int | np.random.Generator | None = None,
    ):
        self._rng = as_rng(seed)
        self.pinger = Pinger(true_rtt, noise=noise, samples=samples, seed=self._rng)
        self.pair_loss = check_fraction(pair_loss, name="pair_loss")
        self.host_downtime = check_fraction(host_downtime, name="host_downtime")

    def run(self) -> CampaignResult:
        """Execute the campaign and return its result."""
        measured = self.pinger.measure_matrix()
        n = measured.shape[0]
        rng = self._rng

        if self.pair_loss > 0:
            lost = rng.random(measured.shape) < self.pair_loss
            if measured.shape[0] == measured.shape[1]:
                np.fill_diagonal(lost, False)
            measured[lost] = np.nan

        down = np.array([], dtype=int)
        if self.host_downtime > 0:
            n_down = int(round(self.host_downtime * n))
            if n_down:
                down = np.sort(rng.choice(n, size=n_down, replace=False))
                measured[down, :] = np.nan
                measured[:, down] = np.nan

        return CampaignResult(
            distances=measured,
            mask=mask_from_missing(measured),
            down_hosts=down,
        )
