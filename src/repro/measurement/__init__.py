"""Measurement substrate: simulated RTT probing.

Noise models, the min-of-N pinger (NLANR/PL-RTT methodology), the King
indirect-measurement simulator (P2PSim methodology), and campaign
collection with missing data.
"""

from .collector import CampaignResult, MeasurementCampaign
from .king import KingConfig, KingEstimator
from .noise import (
    CompositeNoise,
    GaussianJitter,
    NoNoise,
    NoiseModel,
    PacketLoss,
    QueueingSpikes,
    default_internet_noise,
    noise_model_from_name,
)
from .pinger import Pinger

__all__ = [
    "CampaignResult",
    "CompositeNoise",
    "GaussianJitter",
    "KingConfig",
    "KingEstimator",
    "MeasurementCampaign",
    "NoNoise",
    "NoiseModel",
    "PacketLoss",
    "Pinger",
    "QueueingSpikes",
    "default_internet_noise",
    "noise_model_from_name",
]
