"""Simulation of the King indirect-latency measurement technique.

King (Gummadi, Saroiu & Gribble, IMW 2002 — the paper's reference [8])
estimates the RTT between two arbitrary hosts without controlling
either: it finds authoritative DNS servers topologically near each
host and measures between the *servers* using recursive DNS queries.
The estimate therefore carries two systematic error sources:

* a *proxy gap* — the DNS server is near, not at, the host, and
* *recursion overhead* — the measured quantity rides on DNS processing.

The P2PSim data set the paper evaluates on was collected with King,
which is why it is the noisiest matrix in Figure 2. This module
reproduces that error structure so the synthetic ``p2psim_like`` data
set inherits the paper's accuracy ordering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_matrix, as_rng, check_fraction
from ..exceptions import ValidationError

__all__ = ["KingConfig", "KingEstimator"]


@dataclass(frozen=True)
class KingConfig:
    """Error parameters of the King simulation.

    Attributes:
        proxy_gap_ms: scale of the exponential extra RTT between a host
            and its nearby DNS server (added once per endpoint).
        recursion_overhead_ms: mean extra latency of the recursive
            query path (added once per estimate).
        relative_noise: sigma of the multiplicative log-normal noise on
            each estimate (name-server load, retransmissions).
        failure_probability: chance a pair cannot be measured at all
            (no cooperative name server) — yields NaN.
    """

    proxy_gap_ms: float = 2.0
    recursion_overhead_ms: float = 1.0
    relative_noise: float = 0.1
    failure_probability: float = 0.0

    def validate(self) -> None:
        """Raise on out-of-range parameters."""
        if self.proxy_gap_ms < 0 or self.recursion_overhead_ms < 0:
            raise ValidationError("King overheads must be >= 0")
        if self.relative_noise < 0:
            raise ValidationError("relative_noise must be >= 0")
        check_fraction(self.failure_probability, name="failure_probability")


class KingEstimator:
    """Applies King-style estimation error to a true RTT matrix.

    Args:
        config: error parameters.
        seed: randomness source.

    Per-host proxy gaps are drawn once and reused for every pair
    involving that host — the DNS server does not move between
    measurements — so the error is *structured*, not i.i.d., exactly as
    in the real technique.
    """

    def __init__(
        self,
        config: KingConfig | None = None,
        seed: int | np.random.Generator | None = None,
    ):
        self.config = config or KingConfig()
        self.config.validate()
        self._rng = as_rng(seed)

    def estimate_matrix(self, true_rtt: object) -> np.ndarray:
        """King estimates for every pair of a square RTT matrix.

        Returns:
            matrix of estimates with a zero diagonal; pairs that failed
            to find a measurable server pair are NaN.
        """
        matrix = as_matrix(true_rtt, name="true_rtt")
        if matrix.shape[0] != matrix.shape[1]:
            raise ValidationError(f"true_rtt must be square, got {matrix.shape}")
        n = matrix.shape[0]
        config = self.config
        rng = self._rng

        if config.proxy_gap_ms > 0:
            proxy_gap = rng.exponential(config.proxy_gap_ms, size=n)
        else:
            proxy_gap = np.zeros(n)
        estimate = matrix + proxy_gap[:, None] + proxy_gap[None, :]

        if config.recursion_overhead_ms > 0:
            estimate = estimate + rng.exponential(
                config.recursion_overhead_ms, size=(n, n)
            )

        if config.relative_noise > 0:
            estimate = estimate * rng.lognormal(
                mean=0.0, sigma=config.relative_noise, size=(n, n)
            )

        if config.failure_probability > 0:
            failed = rng.random((n, n)) < config.failure_probability
            estimate[failed] = np.nan

        np.fill_diagonal(estimate, 0.0)
        return estimate
