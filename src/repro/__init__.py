"""repro: reproduction of "Modeling Distances in Large-Scale Networks by
Matrix Factorization" (Yun Mao & Lawrence K. Saul, IMC 2004).

The package implements the paper's factored distance model
(``D ~= X @ Y.T``), the SVD and NMF learning algorithms, the IDES
landmark service with basic and relaxed host placement, the Euclidean
baselines it is compared against (Lipschitz+PCA, ICS, GNP, Vivaldi),
and the full substrate needed to evaluate them offline: transit-stub
topologies, policy/asymmetric routing, simulated ping and King
measurement, and synthetic counterparts of the paper's five data sets.

Quick start::

    from repro import IDESSystem, load_dataset, split_landmarks

    dataset = load_dataset("nlanr")
    split = split_landmarks(dataset, n_landmarks=20, seed=0)

    ides = IDESSystem(dimension=10, method="svd")
    ides.fit_landmarks(split.landmark_matrix)
    ides.place_hosts(split.out_distances, split.in_distances)
    predicted = ides.predict_matrix()   # ordinary-host pairwise RTTs
"""

from .core import (
    ErrorSummary,
    FactoredDistanceModel,
    NMFFactorizer,
    SVDFactorizer,
    relative_error_matrix,
    relative_errors,
    summarize_errors,
)
from .datasets import (
    DistanceDataset,
    LandmarkSplit,
    dataset_statistics,
    list_datasets,
    load_dataset,
    split_landmarks,
)
from .embedding import (
    GNPSystem,
    ICSSystem,
    LipschitzPCAEmbedding,
    VivaldiSystem,
)
from .exceptions import ReproError
from .ides import HostVectors, IDESSystem, InformationServer
from .serving import (
    DistanceService,
    InMemoryVectorStore,
    PredictionCache,
    QueryEngine,
    ShardedVectorStore,
)

__version__ = "1.1.0"

__all__ = [
    "DistanceDataset",
    "DistanceService",
    "ErrorSummary",
    "FactoredDistanceModel",
    "GNPSystem",
    "HostVectors",
    "ICSSystem",
    "IDESSystem",
    "InMemoryVectorStore",
    "InformationServer",
    "LandmarkSplit",
    "LipschitzPCAEmbedding",
    "NMFFactorizer",
    "PredictionCache",
    "QueryEngine",
    "ReproError",
    "SVDFactorizer",
    "ShardedVectorStore",
    "VivaldiSystem",
    "__version__",
    "dataset_statistics",
    "list_datasets",
    "load_dataset",
    "relative_error_matrix",
    "relative_errors",
    "split_landmarks",
    "summarize_errors",
]
