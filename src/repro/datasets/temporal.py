"""Time-varying RTT matrices: diurnal load and route changes.

The paper models a *snapshot* of network distances; a deployed IDES
must cope with the fact that RTTs drift. Two real phenomena dominate:

* **diurnal queueing** — RTTs swell during regional busy hours and
  relax at night, smoothly and (mostly) reversibly; and
* **route changes** — BGP reconvergence abruptly moves a domain pair
  onto a different (usually longer or shorter) path and stays there.

:class:`TemporalWorld` generates a sequence of matrices exhibiting
both, anchored on any base matrix. It powers the ``ablate-staleness``
experiment and the online-update machinery in
:mod:`repro.ides.updates`: how fast does a fitted model rot, and how
cheaply can it be kept fresh?
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import as_distance_matrix, as_rng, check_fraction, check_positive
from ..exceptions import ValidationError

__all__ = ["TemporalConfig", "TemporalWorld"]


@dataclass(frozen=True)
class TemporalConfig:
    """Parameters of RTT evolution.

    Attributes:
        diurnal_amplitude: peak-to-trough fractional RTT swell from
            load (0.1 = +10% at the busiest hour).
        period_steps: steps per diurnal cycle (24 for hourly steps).
        phase_groups: number of distinct regional phases; hosts in
            different groups peak at different times, so the drift is
            *not* a global rank-1 scaling.
        route_groups: number of routing regions (sites/ASes). A route
            change re-routes one *pair of regions*: every host pair
            across the two regions shifts together, the way a BGP
            event moves whole prefixes. Structured changes keep the
            matrix modelable — a fresh fit recovers — whereas i.i.d.
            per-pair changes would be irreducible noise for every
            model (see the unstructured arm of ``ablate-asym``).
        route_change_rate: per-step probability of a route change per
            ordered region pair.
        route_change_sigma: log-normal magnitude of a route change.
            A change *redraws* the region pair's deviation from the
            base path (memoryless, like flipping between a bounded set
            of alternative routes) rather than compounding forever —
            compounding would grow the matrix rank without limit,
            which no real routing system does.
        jitter_sigma: small per-step multiplicative measurement noise.
    """

    diurnal_amplitude: float = 0.15
    period_steps: int = 24
    phase_groups: int = 4
    route_groups: int = 12
    route_change_rate: float = 0.01
    route_change_sigma: float = 0.3
    jitter_sigma: float = 0.01

    def validate(self) -> None:
        """Raise on out-of-range parameters."""
        check_fraction(self.diurnal_amplitude, name="diurnal_amplitude")
        check_positive(self.period_steps, name="period_steps")
        if self.phase_groups < 1:
            raise ValidationError("phase_groups must be >= 1")
        if self.route_groups < 1:
            raise ValidationError("route_groups must be >= 1")
        check_fraction(self.route_change_rate, name="route_change_rate")
        if self.route_change_sigma < 0 or self.jitter_sigma < 0:
            raise ValidationError("sigmas must be >= 0")


@dataclass
class TemporalWorld:
    """A drifting RTT matrix, stepped one epoch at a time.

    Args:
        base_matrix: the time-zero square RTT matrix.
        config: drift parameters.
        seed: randomness source.

    Attributes:
        step: number of epochs elapsed.
    """

    base_matrix: np.ndarray
    config: TemporalConfig = field(default_factory=TemporalConfig)
    seed: int | np.random.Generator | None = 0

    def __post_init__(self) -> None:
        matrix = as_distance_matrix(
            self.base_matrix, name="base_matrix", require_square=True
        )
        self.config.validate()
        self._rng = as_rng(self.seed)
        self.base_matrix = matrix
        n = matrix.shape[0]
        # Persistent route-change factors accumulate at region-pair
        # granularity and expand to host pairs on demand.
        g = self.config.route_groups
        self._group_factors = np.ones((g, g))
        self._route_group = self._rng.integers(0, g, size=n)
        # Each host belongs to a diurnal phase group (a "timezone").
        self._phases = (
            2.0
            * np.pi
            * self._rng.integers(0, self.config.phase_groups, size=n)
            / self.config.phase_groups
        )
        self.step = 0

    @property
    def n_hosts(self) -> int:
        """Number of hosts."""
        return self.base_matrix.shape[0]

    def _diurnal_factors(self) -> np.ndarray:
        """Pairwise load swell for the current step.

        A pair's queueing delay reflects the busy-hours of *both*
        endpoint regions; we average the two endpoint load levels.
        """
        angle = 2.0 * np.pi * self.step / self.config.period_steps
        host_load = 0.5 * (1.0 + np.sin(angle + self._phases))  # in [0, 1]
        pair_load = 0.5 * (host_load[:, None] + host_load[None, :])
        return 1.0 + self.config.diurnal_amplitude * pair_load

    def advance(self, steps: int = 1) -> None:
        """Advance time, accumulating route changes."""
        if steps < 0:
            raise ValidationError(f"steps must be >= 0, got {steps}")
        g = self.config.route_groups
        for _ in range(steps):
            self.step += 1
            if self.config.route_change_rate > 0:
                changed = np.triu(
                    self._rng.random((g, g)) < self.config.route_change_rate, k=1
                )
                if changed.any():
                    factors = self._rng.lognormal(
                        0.0, self.config.route_change_sigma, size=(g, g)
                    )
                    # Redraw the changed region pairs' factors
                    # symmetrically (intra-region routes never change).
                    changed = changed | changed.T
                    symmetric = np.triu(factors) + np.triu(factors, k=1).T
                    self._group_factors = np.where(
                        changed, symmetric, self._group_factors
                    )

    def current_matrix(self, measured: bool = True) -> np.ndarray:
        """The RTT matrix at the current step.

        Args:
            measured: add the per-observation jitter; False returns the
                noiseless drifted matrix.
        """
        route_factors = self._group_factors[
            np.ix_(self._route_group, self._route_group)
        ]
        matrix = self.base_matrix * route_factors * self._diurnal_factors()
        if measured and self.config.jitter_sigma > 0:
            noise = self._rng.lognormal(
                0.0, self.config.jitter_sigma, size=matrix.shape
            )
            matrix = matrix * noise
        result = matrix.copy()
        np.fill_diagonal(result, 0.0)
        return result

    def drift_from_base(self) -> float:
        """Median relative drift of the current noiseless matrix."""
        current = self.current_matrix(measured=False)
        off_diagonal = ~np.eye(self.n_hosts, dtype=bool)
        base = self.base_matrix[off_diagonal]
        now = current[off_diagonal]
        valid = base > 0
        return float(np.median(np.abs(now[valid] - base[valid]) / base[valid]))
