"""Data sets: synthetic counterparts of the paper's five RTT matrices.

The container (:class:`DistanceDataset`), landmark splitting, summary
statistics, completeness filtering, persistence, and the seeded
generator registry (``nlanr``, ``gnp``, ``agnp``, ``p2psim``,
``plrtt``).
"""

from .base import DistanceDataset, LandmarkSplit, split_landmarks
from .filtering import complete_host_subset, drop_missing_rows, filter_complete
from .io import export_text, import_text, load_dataset_file, save_dataset
from .registry import clear_cache, list_datasets, load_dataset
from .stats import DatasetStatistics, dataset_statistics, triangle_violation_fraction
from .temporal import TemporalConfig, TemporalWorld
from .synthetic import (
    DEFAULT_SEED,
    GNPFamily,
    SyntheticWorld,
    WorldConfig,
    agnp_like,
    build_world,
    gnp_family,
    gnp_like,
    nlanr_like,
    p2psim_like,
    plrtt_like,
)

__all__ = [
    "DEFAULT_SEED",
    "DatasetStatistics",
    "DistanceDataset",
    "GNPFamily",
    "LandmarkSplit",
    "SyntheticWorld",
    "TemporalConfig",
    "TemporalWorld",
    "WorldConfig",
    "agnp_like",
    "build_world",
    "clear_cache",
    "complete_host_subset",
    "dataset_statistics",
    "drop_missing_rows",
    "export_text",
    "filter_complete",
    "gnp_family",
    "gnp_like",
    "import_text",
    "list_datasets",
    "load_dataset",
    "load_dataset_file",
    "nlanr_like",
    "p2psim_like",
    "plrtt_like",
    "save_dataset",
    "split_landmarks",
    "triangle_violation_fraction",
]
