"""Named data-set registry with per-process caching.

Experiments refer to data sets by the paper's names (``"nlanr"``,
``"gnp"``, ``"agnp"``, ``"p2psim"``, ``"plrtt"``); the registry builds
them on demand and caches by ``(name, seed)`` so that a benchmark suite
touching the same data set from several figures pays generation cost
once.
"""

from __future__ import annotations

from typing import Callable

from ..exceptions import DatasetError
from .base import DistanceDataset
from .synthetic import agnp_like, gnp_like, nlanr_like, p2psim_like, plrtt_like

__all__ = ["list_datasets", "load_dataset", "clear_cache"]

_BUILDERS: dict[str, Callable[..., DistanceDataset]] = {
    "nlanr": nlanr_like,
    "gnp": gnp_like,
    "agnp": agnp_like,
    "p2psim": p2psim_like,
    "plrtt": plrtt_like,
}

_CACHE: dict[tuple[str, object], DistanceDataset] = {}


def list_datasets() -> list[str]:
    """Names of the available data sets, in the paper's order."""
    return ["nlanr", "gnp", "agnp", "p2psim", "plrtt"]


def load_dataset(
    name: str,
    seed: int | None = None,
    use_cache: bool = True,
    **overrides: object,
) -> DistanceDataset:
    """Build (or fetch from cache) a named data set.

    Args:
        name: one of :func:`list_datasets`.
        seed: generation seed; ``None`` selects the canonical default,
            keeping every experiment reproducible.
        use_cache: reuse a previously generated instance when the seed
            matches and no overrides are given.
        **overrides: generator-specific keyword overrides (for example
            ``n_hosts`` for sized-down test runs); disables caching.

    Returns:
        the :class:`DistanceDataset`.

    Raises:
        DatasetError: for unknown names.
    """
    key = name.lower()
    if key not in _BUILDERS:
        known = ", ".join(sorted(_BUILDERS))
        raise DatasetError(f"unknown dataset {name!r}; known: {known}")

    cache_key = (key, seed)
    if use_cache and not overrides and cache_key in _CACHE:
        return _CACHE[cache_key]

    dataset = _BUILDERS[key](seed=seed, **overrides)
    if use_cache and not overrides:
        _CACHE[cache_key] = dataset
    return dataset


def clear_cache() -> None:
    """Drop all cached data sets (tests use this for isolation)."""
    _CACHE.clear()
