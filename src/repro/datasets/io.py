"""Data-set persistence.

Two formats:

* ``.npz`` — lossless binary round-trip of a :class:`DistanceDataset`
  including its array-valued metadata; the format experiments cache.
* plain text — the interchange format of the measurement community
  (one header line ``rows cols name``, then the matrix rows, NaN as
  ``-1``), close to how the original P2PSim/King matrices were
  published.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..exceptions import DatasetError
from .base import DistanceDataset

__all__ = ["save_dataset", "load_dataset_file", "export_text", "import_text"]

_META_ARRAY_PREFIX = "meta_array_"


def save_dataset(dataset: DistanceDataset, path: str | Path) -> Path:
    """Write a data set to ``path`` (``.npz`` appended if missing)."""
    destination = Path(path)
    if destination.suffix != ".npz":
        destination = destination.with_suffix(".npz")

    arrays: dict[str, np.ndarray] = {}
    plain_metadata: dict[str, object] = {}
    for key, value in dataset.metadata.items():
        if isinstance(value, np.ndarray):
            arrays[f"{_META_ARRAY_PREFIX}{key}"] = value
        else:
            plain_metadata[key] = value

    np.savez_compressed(
        destination,
        matrix=dataset.matrix,
        name=np.array(dataset.name),
        metadata_json=np.array(json.dumps(plain_metadata, default=str)),
        **arrays,
    )
    return destination


def load_dataset_file(path: str | Path) -> DistanceDataset:
    """Load a data set previously written by :func:`save_dataset`."""
    source = Path(path)
    if not source.exists():
        raise DatasetError(f"dataset file not found: {source}")
    with np.load(source, allow_pickle=False) as archive:
        metadata: dict[str, object] = json.loads(str(archive["metadata_json"]))
        for key in archive.files:
            if key.startswith(_META_ARRAY_PREFIX):
                metadata[key[len(_META_ARRAY_PREFIX) :]] = archive[key]
        return DistanceDataset(
            name=str(archive["name"]),
            matrix=archive["matrix"],
            metadata=metadata,
        )


def export_text(dataset: DistanceDataset, path: str | Path, missing_token: float = -1.0) -> Path:
    """Write a data set as a plain-text matrix file."""
    destination = Path(path)
    rows, cols = dataset.shape
    matrix = np.where(np.isnan(dataset.matrix), missing_token, dataset.matrix)
    with destination.open("w", encoding="utf-8") as handle:
        handle.write(f"{rows} {cols} {dataset.name}\n")
        for row in matrix:
            handle.write(" ".join(f"{value:.6g}" for value in row))
            handle.write("\n")
    return destination


def import_text(path: str | Path, missing_token: float = -1.0) -> DistanceDataset:
    """Read a plain-text matrix file written by :func:`export_text`."""
    source = Path(path)
    if not source.exists():
        raise DatasetError(f"dataset file not found: {source}")
    with source.open("r", encoding="utf-8") as handle:
        header = handle.readline().split()
        if len(header) < 3:
            raise DatasetError(f"malformed header in {source}: {header!r}")
        rows, cols, name = int(header[0]), int(header[1]), " ".join(header[2:])
        matrix = np.loadtxt(handle, ndmin=2)
    if matrix.shape != (rows, cols):
        raise DatasetError(
            f"header promises {rows}x{cols} but file contains {matrix.shape}"
        )
    matrix = np.where(matrix == missing_token, np.nan, matrix)
    return DistanceDataset(name=name, matrix=matrix, metadata={"source": str(source)})
