"""Data-set statistics: the properties the paper's argument rests on.

Section 2.2 motivates matrix factorization with three empirical facts
about Internet distance matrices: routes are sub-optimal (a detour
through an alternate node can beat the direct route), routes are
asymmetric, and the matrices are nevertheless close to low-rank. These
statistics let us verify that the synthetic data sets actually exhibit
the pathologies — and the structure — of their real counterparts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_rng
from ..core.diagnostics import effective_rank, rank_for_energy
from ..routing.asymmetric import asymmetry_index
from ..routing.policy import alternate_path_fraction
from .base import DistanceDataset

__all__ = ["DatasetStatistics", "dataset_statistics", "triangle_violation_fraction"]


def triangle_violation_fraction(
    matrix: np.ndarray,
    sample_triples: int = 50_000,
    seed: int | np.random.Generator | None = 0,
    tolerance: float = 1e-9,
) -> float:
    """Fraction of sampled host triples violating the triangle inequality.

    A triple ``(i, k, j)`` violates when ``D[i,k] + D[k,j] < D[i,j]``,
    i.e. relaying through ``k`` beats the direct route — impossible for
    any Euclidean embedding to represent.
    """
    square = np.asarray(matrix, dtype=float)
    n = square.shape[0]
    if n < 3:
        return 0.0
    rng = as_rng(seed)
    i = rng.integers(0, n, size=sample_triples)
    j = rng.integers(0, n, size=sample_triples)
    k = rng.integers(0, n, size=sample_triples)
    distinct = (i != j) & (j != k) & (i != k)
    i, j, k = i[distinct], j[distinct], k[distinct]
    direct = square[i, j]
    relayed = square[i, k] + square[k, j]
    valid = np.isfinite(direct) & np.isfinite(relayed)
    if not valid.any():
        return 0.0
    return float(np.mean(relayed[valid] < direct[valid] - tolerance))


@dataclass(frozen=True)
class DatasetStatistics:
    """Summary statistics of one data set.

    Attributes:
        name: data-set name.
        shape: matrix shape.
        missing_fraction: unmeasured-entry fraction.
        median_rtt_ms / mean_rtt_ms / max_rtt_ms: RTT scale statistics
            over measured off-diagonal entries.
        asymmetry: median relative direction gap (square sets only;
            0 for symmetric data).
        alternate_path_fraction: fraction of pairs with a shorter
            two-hop detour (square complete sets only; NaN otherwise).
        triangle_violation_fraction: fraction of violating triples.
        effective_rank: spectral-entropy effective rank (complete sets).
        rank_for_99_energy: smallest rank capturing 99% of the squared
            Frobenius norm.
    """

    name: str
    shape: tuple[int, int]
    missing_fraction: float
    median_rtt_ms: float
    mean_rtt_ms: float
    max_rtt_ms: float
    asymmetry: float
    alternate_path_fraction: float
    triangle_violation_fraction: float
    effective_rank: float
    rank_for_99_energy: int

    def __str__(self) -> str:
        rows, cols = self.shape
        return (
            f"{self.name}: {rows}x{cols}, median RTT {self.median_rtt_ms:.1f} ms, "
            f"asym {self.asymmetry:.3f}, alt-path {self.alternate_path_fraction:.2f}, "
            f"tri-viol {self.triangle_violation_fraction:.3f}, "
            f"eff-rank {self.effective_rank:.1f}"
        )


def dataset_statistics(
    dataset: DistanceDataset,
    seed: int | np.random.Generator | None = 0,
    sample_budget: int = 20_000,
) -> DatasetStatistics:
    """Compute :class:`DatasetStatistics` for one data set.

    Sampling-based statistics (alternate paths, triangle violations)
    use ``sample_budget`` probes so the computation stays cheap even on
    the 1740-host P2PSim-like matrix.
    """
    matrix = dataset.matrix
    rng = as_rng(seed)

    if dataset.is_square:
        off_diag = ~np.eye(matrix.shape[0], dtype=bool)
        values = matrix[off_diag]
    else:
        values = matrix.ravel()
    values = values[np.isfinite(values)]

    square_complete = dataset.is_square and dataset.is_complete
    asym = asymmetry_index(matrix) if dataset.is_square else 0.0
    alt_fraction = (
        alternate_path_fraction(matrix, sample_pairs=sample_budget, seed=rng)
        if square_complete
        else float("nan")
    )
    tri_fraction = (
        triangle_violation_fraction(matrix, sample_triples=sample_budget, seed=rng)
        if dataset.is_square
        else float("nan")
    )
    if dataset.is_complete:
        eff_rank = effective_rank(matrix)
        rank99 = rank_for_energy(matrix, 0.99)
    else:
        eff_rank = float("nan")
        rank99 = -1

    return DatasetStatistics(
        name=dataset.name,
        shape=dataset.shape,
        missing_fraction=dataset.missing_fraction,
        median_rtt_ms=float(np.median(values)) if values.size else float("nan"),
        mean_rtt_ms=float(values.mean()) if values.size else float("nan"),
        max_rtt_ms=float(values.max()) if values.size else float("nan"),
        asymmetry=asym,
        alternate_path_fraction=alt_fraction,
        triangle_violation_fraction=tri_fraction,
        effective_rank=eff_rank,
        rank_for_99_energy=rank99,
    )
