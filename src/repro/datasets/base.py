"""Distance data-set container and landmark splitting.

A :class:`DistanceDataset` bundles a measured RTT matrix with its
provenance. Experiments operate on datasets rather than raw arrays so
that names, seeds, and generation parameters travel with the numbers
into reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import as_distance_matrix, as_rng, check_indices
from ..exceptions import ValidationError

__all__ = ["DistanceDataset", "LandmarkSplit", "split_landmarks"]


@dataclass(frozen=True)
class DistanceDataset:
    """A (possibly rectangular, possibly incomplete) RTT data set.

    Attributes:
        name: short identifier (``"nlanr"``, ``"p2psim"``, ...).
        matrix: ``(N, N')`` RTT matrix in ms; NaN marks unmeasured
            pairs. Square matrices describe one host population; the
            rectangular AGNP-like set measures one population against
            another (paper footnote 3).
        metadata: generation parameters and provenance notes.
    """

    name: str
    matrix: np.ndarray
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        matrix = as_distance_matrix(self.matrix, name="matrix", allow_missing=True)
        object.__setattr__(self, "matrix", matrix)

    @property
    def shape(self) -> tuple[int, int]:
        """Matrix shape ``(rows, columns)``."""
        return self.matrix.shape

    @property
    def n_hosts(self) -> int:
        """Number of row hosts."""
        return self.matrix.shape[0]

    @property
    def is_square(self) -> bool:
        """Whether rows and columns index the same host population."""
        return self.matrix.shape[0] == self.matrix.shape[1]

    @property
    def is_complete(self) -> bool:
        """True when every pair was measured (no NaN)."""
        return not np.isnan(self.matrix).any()

    @property
    def missing_fraction(self) -> float:
        """Fraction of unmeasured entries."""
        return float(np.isnan(self.matrix).mean())

    def submatrix(self, rows: object, cols: object | None = None) -> np.ndarray:
        """Copy of the ``rows x cols`` block (cols default to rows)."""
        row_idx = check_indices(rows, self.matrix.shape[0], name="rows")
        if cols is None:
            if not self.is_square:
                raise ValidationError(
                    "cols must be given explicitly for a rectangular data set"
                )
            col_idx = row_idx
        else:
            col_idx = check_indices(cols, self.matrix.shape[1], name="cols")
        return self.matrix[np.ix_(row_idx, col_idx)].copy()

    def with_matrix(self, matrix: object, suffix: str = "") -> "DistanceDataset":
        """Derived data set with a replaced matrix and annotated name."""
        new_name = f"{self.name}{suffix}" if suffix else self.name
        return DistanceDataset(name=new_name, matrix=matrix, metadata=dict(self.metadata))

    def describe(self) -> str:
        """One-line human-readable summary."""
        rows, cols = self.shape
        kind = "square" if self.is_square else "rectangular"
        completeness = 100.0 * (1.0 - self.missing_fraction)
        return (
            f"{self.name}: {rows}x{cols} {kind} RTT matrix, "
            f"{completeness:.1f}% measured"
        )


@dataclass(frozen=True)
class LandmarkSplit:
    """A data set partitioned into landmarks and ordinary hosts.

    Mirrors the evaluation protocol of Section 6.1: a few hosts act as
    the IDES landmark set, every other host is an ordinary host, and
    prediction accuracy is scored on ordinary-to-ordinary pairs that no
    system ever measured.

    Attributes:
        landmark_indices: indices of the ``m`` landmark hosts.
        ordinary_indices: indices of the remaining hosts.
        landmark_matrix: ``(m, m)`` inter-landmark distances.
        out_distances: ``(n_ord, m)`` distances host -> landmark.
        in_distances: ``(m, n_ord)`` distances landmark -> host.
        ordinary_matrix: ``(n_ord, n_ord)`` held-out evaluation truth.
    """

    landmark_indices: np.ndarray
    ordinary_indices: np.ndarray
    landmark_matrix: np.ndarray
    out_distances: np.ndarray
    in_distances: np.ndarray
    ordinary_matrix: np.ndarray

    @property
    def n_landmarks(self) -> int:
        """Number of landmark hosts ``m``."""
        return len(self.landmark_indices)

    @property
    def n_ordinary(self) -> int:
        """Number of ordinary hosts."""
        return len(self.ordinary_indices)


def split_landmarks(
    dataset: DistanceDataset,
    n_landmarks: int,
    seed: int | np.random.Generator | None = None,
    landmark_indices: object | None = None,
) -> LandmarkSplit:
    """Partition a square data set into landmarks and ordinary hosts.

    Args:
        dataset: a square :class:`DistanceDataset`.
        n_landmarks: number of landmarks ``m``; ignored when explicit
            ``landmark_indices`` are given.
        seed: randomness source for the random selection. The paper
            selects landmarks randomly, citing Tang & Crovella (PAM
            2004) that random placement is effective beyond ~20
            landmarks.
        landmark_indices: explicit landmark indices, overriding random
            selection (used to hold the landmark set fixed across the
            four systems compared in Figure 6).

    Returns:
        a :class:`LandmarkSplit`.
    """
    if not dataset.is_square:
        raise ValidationError(
            f"landmark splitting requires a square data set, got {dataset.shape}"
        )
    n = dataset.n_hosts
    if landmark_indices is not None:
        landmarks = check_indices(landmark_indices, n, name="landmark_indices")
    else:
        if not 1 <= n_landmarks < n:
            raise ValidationError(
                f"n_landmarks must be in [1, {n - 1}], got {n_landmarks}"
            )
        rng = as_rng(seed)
        landmarks = np.sort(rng.choice(n, size=n_landmarks, replace=False))
    ordinary = np.setdiff1d(np.arange(n), landmarks)
    if ordinary.size == 0:
        raise ValidationError("no ordinary hosts remain after landmark selection")

    matrix = dataset.matrix
    return LandmarkSplit(
        landmark_indices=landmarks,
        ordinary_indices=ordinary,
        landmark_matrix=matrix[np.ix_(landmarks, landmarks)].copy(),
        out_distances=matrix[np.ix_(ordinary, landmarks)].copy(),
        in_distances=matrix[np.ix_(landmarks, ordinary)].copy(),
        ordinary_matrix=matrix[np.ix_(ordinary, ordinary)].copy(),
    )
