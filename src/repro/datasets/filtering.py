"""Filtering incomplete matrices down to complete submatrices.

"Parts of the data sets were filtered out to eliminate missing elements
in the distance matrices (since none of the algorithms except NMF can
cope with missing data)" — paper Section 4.3.1. This module implements
that preprocessing: greedily remove the hosts responsible for the most
missing entries until the remaining submatrix is complete. Greedy
vertex deletion is the standard heuristic for the (NP-hard) maximum
complete-submatrix problem and matches how the PL-RTT 169 x 169 clique
was extracted from the raw PlanetLab mesh.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_distance_matrix
from ..exceptions import ValidationError
from .base import DistanceDataset

__all__ = ["complete_host_subset", "filter_complete", "drop_missing_rows"]


def complete_host_subset(matrix: object) -> np.ndarray:
    """Indices of a (maximal, greedy) complete host clique.

    Args:
        matrix: square matrix with NaN marking missing entries.

    Returns:
        sorted indices such that the induced submatrix has no NaN. The
        greedy rule removes the host with the most missing pairs first,
        breaking ties toward the higher index for determinism.
    """
    square = as_distance_matrix(matrix, name="matrix", allow_missing=True, require_square=True)
    n = square.shape[0]
    missing = np.isnan(square)
    alive = np.ones(n, dtype=bool)

    while True:
        rows = (missing & alive[None, :])[alive].sum(axis=1)
        cols = (missing & alive[:, None])[:, alive].sum(axis=0)
        alive_indices = np.flatnonzero(alive)
        badness = rows + cols
        if badness.sum() == 0:
            break
        worst_local = int(np.argmax(badness))
        alive[alive_indices[worst_local]] = False
        if not alive.any():
            raise ValidationError("matrix has no complete submatrix of size >= 1")
    return np.flatnonzero(alive)


def filter_complete(dataset: DistanceDataset) -> tuple[DistanceDataset, np.ndarray]:
    """Filter a square data set down to its complete host clique.

    Returns:
        ``(filtered_dataset, kept_indices)``; the filtered data set's
        name gains a ``-complete`` suffix and its metadata records the
        hosts removed. Complete inputs are returned unchanged (same
        matrix, all indices kept).
    """
    if not dataset.is_square:
        raise ValidationError("filter_complete requires a square data set")
    if dataset.is_complete:
        return dataset, np.arange(dataset.n_hosts)
    kept = complete_host_subset(dataset.matrix)
    filtered = dataset.matrix[np.ix_(kept, kept)]
    metadata = dict(dataset.metadata)
    metadata["filtered_from"] = dataset.n_hosts
    metadata["kept_indices"] = kept
    return (
        DistanceDataset(
            name=f"{dataset.name}-complete", matrix=filtered, metadata=metadata
        ),
        kept,
    )


def drop_missing_rows(matrix: object) -> tuple[np.ndarray, np.ndarray]:
    """Drop rows containing any NaN from a (rectangular) matrix.

    The rectangular analogue of clique filtering, used for the AGNP-like
    host-to-landmark matrix where a row is one host's measurement
    vector: a host that failed to probe some landmark is removed.

    Returns:
        ``(filtered_matrix, kept_row_indices)``.
    """
    data = as_distance_matrix(matrix, name="matrix", allow_missing=True)
    keep = ~np.isnan(data).any(axis=1)
    return data[keep].copy(), np.flatnonzero(keep)
