"""Synthetic counterparts of the paper's five measurement data sets.

The real NLANR, GNP, AGNP, P2PSim and PL-RTT matrices are not available
offline, so each generator here rebuilds a data set with the same
dimensions, collection methodology and statistical pathologies from the
library's own substrates:

1. a transit-stub router topology (:mod:`repro.topology`),
2. shortest-path delays with policy inflation and optional asymmetry
   (:mod:`repro.routing`),
3. host populations attached to sites with access delays, and
4. a simulated measurement campaign — min-of-N pings for the directly
   measured sets, the King method for P2PSim
   (:mod:`repro.measurement`).

Every generator is deterministic given its seed; calling with
``seed=None`` uses a fixed canonical seed so that figures and tables
are exactly reproducible run to run. See DESIGN.md section 2 for the
substitution rationale per data set.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from .._validation import as_rng
from ..exceptions import ValidationError
from ..measurement import (
    CompositeNoise,
    GaussianJitter,
    KingConfig,
    KingEstimator,
    Pinger,
    QueueingSpikes,
)
from ..routing import (
    PolicyInflationConfig,
    apply_asymmetry,
    apply_policy_inflation,
    compose_host_rtt,
    pairwise_site_delays,
)
from ..topology import (
    AccessDelayModel,
    TransitStubConfig,
    assign_hosts,
    place_sites,
    transit_stub_topology,
)
from .base import DistanceDataset

__all__ = [
    "DEFAULT_SEED",
    "SyntheticWorld",
    "WorldConfig",
    "build_world",
    "nlanr_like",
    "plrtt_like",
    "p2psim_like",
    "GNPFamily",
    "gnp_family",
    "gnp_like",
    "agnp_like",
]

#: Canonical base seed (the paper's ACM DOI suffix, 10.1145/1028788.1028827).
DEFAULT_SEED = 1028827


@dataclass(frozen=True)
class WorldConfig:
    """Parameters of a synthetic measured-Internet world.

    Attributes:
        n_hosts: number of end hosts.
        n_sites: number of sites hosts attach to; fewer sites means
            stronger clustering and lower matrix rank.
        topology: transit-stub generator parameters (the stub count is
            scaled automatically to fit ``n_sites``).
        site_concentration: Dirichlet concentration of host-to-site
            assignment (small = skewed P2P-like populations).
        access: host access-delay distribution.
        policy: inter-domain path-inflation parameters.
        asymmetry_level: log-sigma of directional asymmetry (0 = RTT
            symmetric world).
        intra_site_ms: one-way delay between co-located hosts.
    """

    n_hosts: int
    n_sites: int
    topology: TransitStubConfig = field(default_factory=TransitStubConfig)
    site_concentration: float = 1.0
    access: AccessDelayModel = field(default_factory=AccessDelayModel)
    policy: PolicyInflationConfig = field(default_factory=PolicyInflationConfig)
    asymmetry_level: float = 0.0
    intra_site_ms: float = 0.2


@dataclass(frozen=True)
class SyntheticWorld:
    """Ground truth of a synthetic world, before measurement error.

    Attributes:
        true_rtt: ``(n_hosts, n_hosts)`` true RTT matrix in ms.
        host_sites: site index of each host.
        site_domains: domain label of each site.
        config: the generating configuration.
    """

    true_rtt: np.ndarray
    host_sites: np.ndarray
    site_domains: np.ndarray
    config: WorldConfig


def _topology_config_for_sites(
    base: TransitStubConfig, n_sites: int
) -> TransitStubConfig:
    """Scale stub-domain count so the topology offers >= n_sites stubs."""
    per_stub_domain = base.stub_domain_size
    transit_routers = base.n_transit_domains * base.transit_domain_size
    needed_domains = int(np.ceil(n_sites / per_stub_domain))
    per_transit_node = int(np.ceil(needed_domains / transit_routers))
    per_transit_node = max(per_transit_node, base.stub_domains_per_transit_node)
    return replace(base, stub_domains_per_transit_node=per_transit_node)


def build_world(
    config: WorldConfig, seed: int | np.random.Generator | None = None
) -> SyntheticWorld:
    """Construct the ground-truth RTT matrix of a synthetic world.

    Runs the full substrate pipeline: topology generation, site
    placement, shortest-path routing, policy inflation, host
    attachment, RTT composition, and optional directional asymmetry.
    """
    if config.n_hosts < 2:
        raise ValidationError(f"n_hosts must be >= 2, got {config.n_hosts}")
    if config.n_sites < 1:
        raise ValidationError(f"n_sites must be >= 1, got {config.n_sites}")
    rng = as_rng(seed)

    topology_config = _topology_config_for_sites(config.topology, config.n_sites)
    topology = transit_stub_topology(topology_config, seed=rng)

    sites = place_sites(topology, config.n_sites, seed=rng)
    site_delays = pairwise_site_delays(topology, sites.site_indices)
    site_delays = apply_policy_inflation(
        site_delays, sites.site_domains, config.policy, seed=rng
    )

    host_sites, host_access = assign_hosts(
        config.n_hosts,
        config.n_sites,
        seed=rng,
        concentration=config.site_concentration,
        access_model=config.access,
    )
    true_rtt = compose_host_rtt(
        site_delays,
        host_sites,
        host_access,
        intra_site_ms=config.intra_site_ms,
    )
    if config.asymmetry_level > 0:
        true_rtt = apply_asymmetry(true_rtt, config.asymmetry_level, seed=rng)

    return SyntheticWorld(
        true_rtt=true_rtt,
        host_sites=host_sites,
        site_domains=sites.site_domains,
        config=config,
    )


def _min_rtt_campaign(
    true_rtt: np.ndarray,
    samples: int,
    jitter_ms: float,
    spike_probability: float,
    spike_mean_ms: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Min-of-N ping campaign over a truth matrix (complete result)."""
    noise = CompositeNoise(
        stages=(
            GaussianJitter(sigma_ms=jitter_ms),
            QueueingSpikes(probability=spike_probability, mean_ms=spike_mean_ms),
        )
    )
    pinger = Pinger(true_rtt, noise=noise, samples=samples, seed=rng)
    return pinger.measure_matrix()


def _seed_or_default(seed: int | np.random.Generator | None, offset: int) -> object:
    """Resolve ``None`` to the canonical per-data-set seed."""
    if seed is None:
        return DEFAULT_SEED + offset
    return seed


def nlanr_like(
    seed: int | np.random.Generator | None = None,
    n_hosts: int = 110,
) -> DistanceDataset:
    """NLANR-AMP-like data set: 110 HPC sites, minimum-of-day RTTs.

    The AMP mesh is clean and mostly North American: one host per site,
    tiny access delays, modest policy detours, and min-of-many-samples
    probing that strips nearly all transient noise — the best-behaved
    data set in the paper's Figure 2 after tiny GNP.
    """
    rng = as_rng(_seed_or_default(seed, offset=0))
    config = WorldConfig(
        n_hosts=n_hosts,
        n_sites=n_hosts,  # one AMP monitor per HPC site
        topology=TransitStubConfig(
            n_transit_domains=1,  # a single research backbone (Abilene-like)
            transit_domain_size=6,
            stub_domain_size=3,
            region_km=5500.0,  # continental-US scale, ~10% abroad
            multihoming_probability=0.05,
        ),
        site_concentration=5.0,  # managed testbed: even spread
        access=AccessDelayModel(median_ms=0.2, sigma=0.2),
        policy=PolicyInflationConfig(
            detour_probability=0.08,
            inflation_sigma=0.2,
            pair_detour_probability=0.01,
            pair_inflation_sigma=0.25,
        ),
        asymmetry_level=0.0,
        intra_site_ms=0.1,
    )
    world = build_world(config, seed=rng)
    measured = _min_rtt_campaign(
        world.true_rtt,
        samples=40,
        jitter_ms=0.3,
        spike_probability=0.1,
        spike_mean_ms=10.0,
        rng=rng,
    )
    return DistanceDataset(
        name="nlanr",
        matrix=measured,
        metadata={
            "methodology": "min-of-day ping mesh (NLANR AMP, Jan 30 2003)",
            "host_sites": world.host_sites,
            "n_sites": config.n_sites,
        },
    )


def plrtt_like(
    seed: int | np.random.Generator | None = None,
    n_hosts: int = 169,
) -> DistanceDataset:
    """PL-RTT-like data set: 169 PlanetLab hosts, all-pairs min ping.

    PlanetLab hosts cluster two-to-a-site on academic networks whose
    GREN/commodity dual-homing produces frequent path detours — noisier
    than NLANR, cleaner than King-derived P2PSim.
    """
    rng = as_rng(_seed_or_default(seed, offset=1))
    config = WorldConfig(
        n_hosts=n_hosts,
        n_sites=max(n_hosts // 2, 1),  # ~2 PlanetLab nodes per site
        topology=TransitStubConfig(
            n_transit_domains=4,
            transit_domain_size=4,
            stub_domain_size=3,
            region_km=9000.0,  # global
            multihoming_probability=0.25,
        ),
        site_concentration=3.0,
        access=AccessDelayModel(median_ms=0.4, sigma=0.3),
        policy=PolicyInflationConfig(
            detour_probability=0.45,
            inflation_sigma=0.5,
            pair_detour_probability=0.05,
            pair_inflation_sigma=0.3,
        ),
        asymmetry_level=0.0,
        intra_site_ms=0.15,
    )
    world = build_world(config, seed=rng)
    measured = _min_rtt_campaign(
        world.true_rtt,
        samples=15,
        jitter_ms=0.8,
        spike_probability=0.25,
        spike_mean_ms=25.0,
        rng=rng,
    )
    return DistanceDataset(
        name="plrtt",
        matrix=measured,
        metadata={
            "methodology": "all-pairs ping, min RTT (PlanetLab 2004-03-23)",
            "host_sites": world.host_sites,
            "n_sites": config.n_sites,
        },
    )


def p2psim_like(
    seed: int | np.random.Generator | None = None,
    n_hosts: int = 1740,
) -> DistanceDataset:
    """P2PSim-like data set: DNS servers measured with the King method.

    The hardest data set in the paper: a large, globally skewed
    population measured *indirectly* through nearby DNS servers, whose
    proxy gaps and recursion overheads leave structured error that no
    amount of min-filtering removes.
    """
    rng = as_rng(_seed_or_default(seed, offset=2))
    config = WorldConfig(
        n_hosts=n_hosts,
        n_sites=max(n_hosts // 5, 1),
        topology=TransitStubConfig(
            n_transit_domains=5,
            transit_domain_size=4,
            stub_domain_size=4,
            region_km=10000.0,
            multihoming_probability=0.3,
        ),
        site_concentration=0.6,  # Gnutella-crawl skew
        access=AccessDelayModel(median_ms=1.0, sigma=0.7),
        policy=PolicyInflationConfig(
            detour_probability=0.5,
            inflation_sigma=0.6,
            pair_detour_probability=0.08,
            pair_inflation_sigma=0.4,
        ),
        asymmetry_level=0.0,
        intra_site_ms=0.3,
    )
    world = build_world(config, seed=rng)
    king = KingEstimator(
        KingConfig(
            proxy_gap_ms=3.0,
            recursion_overhead_ms=2.0,
            relative_noise=0.12,
            failure_probability=0.0,
        ),
        seed=rng,
    )
    measured = king.estimate_matrix(world.true_rtt)
    return DistanceDataset(
        name="p2psim",
        matrix=measured,
        metadata={
            "methodology": "King indirect RTT between DNS servers (P2PSim)",
            "host_sites": world.host_sites,
            "n_sites": config.n_sites,
        },
    )


@dataclass(frozen=True)
class GNPFamily:
    """The linked GNP / AGNP data sets.

    Attributes:
        gnp: 19 x 19 symmetric probe-measured matrix among the GNP
            nodes.
        agnp: 869 x 19 asymmetric matrix from the wider host population
            to the GNP nodes; ``metadata["reverse"]`` holds the 19 x 869
            reverse-direction measurements needed to place hosts with
            both outgoing and incoming vectors.
        world_truth: the full (19+869)-host ground-truth matrix, GNP
            nodes first — used only for held-out evaluation.
    """

    gnp: DistanceDataset
    agnp: DistanceDataset
    world_truth: DistanceDataset


def gnp_family(
    seed: int | np.random.Generator | None = None,
    n_gnp: int = 19,
    n_agnp: int = 869,
) -> GNPFamily:
    """Build the consistent GNP (19 x 19) + AGNP (869 x 19) pair.

    Both data sets are slices of one 888-host asymmetric world, so that
    the Figure 6(a) protocol — 15 GNP landmarks, 4 GNP + 869 AGNP
    ordinary hosts, evaluation on the 869 x 4 held-out block — is
    internally consistent, exactly as with the original data.
    """
    rng = as_rng(_seed_or_default(seed, offset=3))
    n_total = n_gnp + n_agnp
    config = WorldConfig(
        n_hosts=n_total,
        n_sites=max(n_total // 6, n_gnp),
        topology=TransitStubConfig(
            n_transit_domains=4,
            transit_domain_size=4,
            stub_domain_size=3,
            region_km=9000.0,
            multihoming_probability=0.2,
        ),
        site_concentration=1.0,
        access=AccessDelayModel(median_ms=0.5, sigma=0.5),
        policy=PolicyInflationConfig(
            detour_probability=0.25,
            inflation_sigma=0.35,
            pair_detour_probability=0.015,
            pair_inflation_sigma=0.25,
        ),
        # The paper's RTT data is symmetric; "asymmetric" for AGNP means
        # rectangular (869 x 19). A small residual level models probes
        # of the two directions happening at different times.
        asymmetry_level=0.03,
        intra_site_ms=0.2,
    )
    world = build_world(config, seed=rng)
    truth = world.true_rtt

    # The GNP nodes are hosts at n_gnp distinct sites: well-positioned
    # infrastructure nodes, as in the original deployment.
    gnp_indices = []
    seen_sites: set[int] = set()
    for host, site in enumerate(world.host_sites):
        if site not in seen_sites:
            gnp_indices.append(host)
            seen_sites.add(int(site))
        if len(gnp_indices) == n_gnp:
            break
    gnp_idx = np.asarray(gnp_indices)
    agnp_idx = np.setdiff1d(np.arange(n_total), gnp_idx)[:n_agnp]

    # Reorder the world truth so GNP nodes occupy the first rows.
    order = np.concatenate([gnp_idx, agnp_idx])
    truth_ordered = truth[np.ix_(order, order)]

    gnp_truth = truth_ordered[:n_gnp, :n_gnp]
    gnp_symmetric = 0.5 * (gnp_truth + gnp_truth.T)  # ping RTT is symmetric
    gnp_measured = _min_rtt_campaign(
        gnp_symmetric,
        samples=30,
        jitter_ms=0.4,
        spike_probability=0.15,
        spike_mean_ms=15.0,
        rng=rng,
    )
    # A ping mesh keeps the per-pair minimum over both probe directions,
    # so the published matrix is exactly symmetric.
    gnp_measured = np.minimum(gnp_measured, gnp_measured.T)

    agnp_forward = _min_rtt_campaign(
        truth_ordered[n_gnp:, :n_gnp],
        samples=10,
        jitter_ms=0.6,
        spike_probability=0.2,
        spike_mean_ms=20.0,
        rng=rng,
    )
    agnp_reverse = _min_rtt_campaign(
        truth_ordered[:n_gnp, n_gnp:],
        samples=10,
        jitter_ms=0.6,
        spike_probability=0.2,
        spike_mean_ms=20.0,
        rng=rng,
    )

    gnp_dataset = DistanceDataset(
        name="gnp",
        matrix=gnp_measured,
        metadata={"methodology": "min RTT among 19 GNP probes (May 2001)"},
    )
    agnp_dataset = DistanceDataset(
        name="agnp",
        matrix=agnp_forward,
        metadata={
            "methodology": "asymmetric host-to-GNP-node RTT (AGNP)",
            "reverse": agnp_reverse,
        },
    )
    world_dataset = DistanceDataset(
        name="gnp-world-truth",
        matrix=truth_ordered,
        metadata={"n_gnp": n_gnp, "n_agnp": n_agnp},
    )
    return GNPFamily(gnp=gnp_dataset, agnp=agnp_dataset, world_truth=world_dataset)


def gnp_like(seed: int | np.random.Generator | None = None) -> DistanceDataset:
    """The 19 x 19 symmetric GNP-like data set (see :func:`gnp_family`)."""
    return gnp_family(seed).gnp


def agnp_like(seed: int | np.random.Generator | None = None) -> DistanceDataset:
    """The 869 x 19 asymmetric AGNP-like data set (see :func:`gnp_family`)."""
    return gnp_family(seed).agnp
