"""Spectral diagnostics: why low-rank models fit distance matrices.

The paper's central assumption (Section 3) is that "many rows in the
distance matrix are linearly dependent, or nearly so", i.e. the matrix
has low *effective* rank. These diagnostics quantify that assumption
for any data set and back the ``ablate-rank`` experiment.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from .._validation import as_matrix, check_fraction
from ..linalg import singular_spectrum

__all__ = [
    "ReplicaHealth",
    "ServiceHealth",
    "ShardHealth",
    "SpectrumDiagnostics",
    "spectrum_diagnostics",
    "effective_rank",
    "rank_for_energy",
    "energy_captured",
]


def effective_rank(matrix: object) -> float:
    """Spectral-entropy effective rank (Roy & Vetterli, 2007).

    ``exp(H(p))`` where ``p`` is the singular-value distribution; equals
    ``k`` for a matrix with ``k`` equal singular values and degrades
    smoothly as the spectrum concentrates. A 110-host matrix with
    effective rank ~4 is why ``d = 10`` reconstructs it almost exactly.
    """
    values = singular_spectrum(as_matrix(matrix, name="matrix"))
    total = values.sum()
    if total == 0.0:
        return 0.0
    probabilities = values / total
    positive = probabilities[probabilities > 0]
    entropy = -np.sum(positive * np.log(positive))
    return float(np.exp(entropy))


def energy_captured(matrix: object, rank: int) -> float:
    """Fraction of squared Frobenius norm captured by the top ``rank``.

    Equals ``1 - (residual of best rank-k approximation)^2 / ||D||_F^2``
    by the Eckart-Young theorem.
    """
    values = singular_spectrum(as_matrix(matrix, name="matrix"))
    squared = values**2
    total = squared.sum()
    if total == 0.0:
        return 1.0
    rank = max(0, min(int(rank), squared.size))
    return float(squared[:rank].sum() / total)


def rank_for_energy(matrix: object, energy: float = 0.99) -> int:
    """Smallest rank capturing at least ``energy`` of the squared norm."""
    target = check_fraction(energy, name="energy")
    values = singular_spectrum(as_matrix(matrix, name="matrix"))
    squared = values**2
    total = squared.sum()
    if total == 0.0:
        return 0
    cumulative = np.cumsum(squared) / total
    return int(np.searchsorted(cumulative, target) + 1)


@dataclass(frozen=True)
class SpectrumDiagnostics:
    """Bundle of spectral statistics for one distance matrix.

    Attributes:
        shape: matrix shape.
        singular_values: full descending spectrum.
        effective_rank: spectral-entropy effective rank.
        rank_90 / rank_99: smallest rank capturing 90% / 99% energy.
        top10_energy: energy fraction captured at rank 10 (the paper's
            recommended dimension).
    """

    shape: tuple[int, int]
    singular_values: np.ndarray
    effective_rank: float
    rank_90: int
    rank_99: int
    top10_energy: float

    def __str__(self) -> str:
        return (
            f"shape={self.shape} eff_rank={self.effective_rank:.2f} "
            f"rank90={self.rank_90} rank99={self.rank_99} "
            f"energy@10={self.top10_energy:.4f}"
        )


@dataclass(frozen=True)
class ReplicaHealth:
    """Health of one replica inside a shard's replica group.

    Attributes:
        address: the replica server's ``host:port``.
        state: ``"active"`` (serving reads), ``"dark"`` (failed its
            last contact; sidelined until a reprobe or a successful
            write resurrects it), or ``"catching_up"`` (answering
            again but behind its siblings' journal; excluded from the
            read rotation until an anti-entropy repair converges it).
        ewma_latency_ms: smoothed RPC latency as seen by the group's
            health scorer, or None before the first completed call.
        in_flight: RPCs currently outstanding on the replica's client.
        failures: calls this replica failed (each one triggered a
            failover to a sibling or a counted write miss).
        applied_seq: the replica's journal high-water mark as last
            observed by the group, or None before any seq was seen.
        seq_lag: how many journal entries this replica trails the
            most-applied sibling by (0 when caught up, None when
            either side's seq is unknown).
        repairs: anti-entropy repairs that converged this replica.
        last_repair_seconds: wall-clock duration of the most recent
            successful repair, or None when never repaired.
    """

    address: str
    state: str
    ewma_latency_ms: float | None = None
    in_flight: int = 0
    failures: int = 0
    applied_seq: int | None = None
    seq_lag: int | None = None
    repairs: int = 0
    last_repair_seconds: float | None = None

    def to_dict(self) -> dict:
        """Plain-JSON form (the ``--json`` health surfaces)."""
        return asdict(self)

    def __str__(self) -> str:
        latency = (
            f" {self.ewma_latency_ms:.1f}ms"
            if self.ewma_latency_ms is not None
            else ""
        )
        lag = f" lag={self.seq_lag}" if self.seq_lag else ""
        return f"{self.address}:{self.state}{latency}{lag}"


@dataclass(frozen=True)
class ShardHealth:
    """Health of one shard of a (possibly distributed) directory.

    For an in-process :class:`~repro.serving.store.ShardedVectorStore`
    all shards share one query engine, so the per-shard served-work
    counters are unknown (None). For a cross-process deployment each
    :class:`~repro.serving.transport.ShardServer` reports its own
    counters, and an unreachable shard is recorded with
    ``reachable=False`` rather than silently dropped — a router health
    report must show *which* partition of the directory is dark.

    Attributes:
        shard_index: the shard's slot in the hash space.
        n_hosts: hosts stored on the shard (0 when unreachable).
        queries_served / pairs_evaluated: the shard's own engine
            counters, or None when not individually tracked.
        address: ``host:port`` for remote shards, None in-process.
        reachable: False when the shard could not be contacted (for a
            replica group: when *every* replica is dark).
        replicas: per-replica :class:`ReplicaHealth` entries when the
            shard is served by a replica group (empty for a single
            unreplicated server).
        failovers: reads this shard retried on a sibling replica after
            the preferred replica failed.
        overload_rejections: requests the shard server refused at
            admission because it was saturated (None when the server
            predates admission control).
        deadline_shed: requests the shard server dropped because their
            propagated deadline expired while queued (None when
            untracked).
        group_overload_events: read passes in which *every* replica of
            the shard's group failed together — a group-saturation
            signal, deliberately distinct from per-replica dark
            markings (0 for unreplicated shards).
    """

    shard_index: int
    n_hosts: int
    queries_served: int | None = None
    pairs_evaluated: int | None = None
    address: str | None = None
    reachable: bool = True
    replicas: tuple[ReplicaHealth, ...] = ()
    failovers: int = 0
    overload_rejections: int | None = None
    deadline_shed: int | None = None
    group_overload_events: int = 0

    def to_dict(self) -> dict:
        """Plain-JSON form (the ``--json`` health surfaces)."""
        data = asdict(self)
        data["replicas"] = [replica.to_dict() for replica in self.replicas]
        return data

    @property
    def dark_replicas(self) -> int:
        """Replicas currently sidelined as dark (0 when unreplicated)."""
        return sum(1 for replica in self.replicas if replica.state == "dark")

    def __str__(self) -> str:
        location = f"@{self.address}" if self.address else ""
        replicas = ""
        if self.replicas:
            detail = ",".join(str(replica) for replica in self.replicas)
            replicas = f" replicas[{detail}]"
            if self.failovers:
                replicas += f" failovers={self.failovers}"
        if not self.reachable:
            return f"shard{self.shard_index}{location}:UNREACHABLE{replicas}"
        served = (
            f" queries={self.queries_served}"
            if self.queries_served is not None
            else ""
        )
        return (
            f"shard{self.shard_index}{location}:{self.n_hosts}hosts"
            f"{served}{replicas}"
        )


@dataclass(frozen=True)
class ServiceHealth:
    """Operational counters of a running distance-query service.

    Produced by :meth:`repro.serving.DistanceService.health` and printed
    by the CLI ``serve`` commands and ``benchmarks/bench_serving.py``.
    Plain numbers only, so the core layer stays independent of the
    serving implementation.

    Attributes:
        n_hosts: hosts in the vector store (landmarks included).
        n_landmarks: hosts acting as the landmark reference set.
        dimension: model dimension ``d``.
        n_shards: store shard count (0 for the unsharded backend).
        shard_occupancy: hosts per shard (empty when unsharded).
        queries_served: engine calls answered since start/reset.
        pairs_evaluated: (source, destination) pairs predicted.
        cache_hits / cache_misses: point-query cache outcomes.
        cache_size / cache_max_entries: cache occupancy and capacity.
        cache_admitted / cache_rejected: admission-gate outcomes for
            insert offers (rejected stays 0 unless the cache runs a
            doorkeeper admission policy).
        vectors_refreshed: cumulative host-vector updates applied
            through the bulk refresh path.
        refresh_batches: bulk refresh flushes applied.
        seconds_since_refresh: age of the newest refresh flush, or
            None when no refresh ever ran.
        max_vector_age_seconds / mean_vector_age_seconds: staleness of
            the stored vectors (time since each host's last write), or
            None when the service does not track write times.
        shards: per-shard :class:`ShardHealth` entries (empty when
            unsharded); a cross-process router fills per-shard served
            counters and reachability here.
        update_sink_failures: vector-update fan-outs to attached
            replicas (see
            :meth:`~repro.serving.DistanceService.add_update_sink`)
            that raised — replication lag the operator must see.
        update_sink_failures_by_sink: the same failures attributed to
            the sink that raised, as sorted ``(sink_name, count)``
            pairs — a flapping replica is identifiable by name instead
            of hiding inside one global counter. A failure is only
            counted after the service's one bounded in-line retry also
            failed.
        update_sink_last_error: the most recent failure reason per
            sink, as sorted ``(sink_name, "ErrorType: message")``
            pairs — *why* a sink is flapping, not just how often.
        stale_served: point queries answered from a TTL-expired cache
            entry because the owning shard was overloaded (brownout
            degradation; 0 when the service never browned out).
        deadline_rejected: queries refused because their latency
            budget had already expired when they arrived.
    """

    n_hosts: int
    n_landmarks: int
    dimension: int
    n_shards: int
    shard_occupancy: tuple[int, ...]
    queries_served: int
    pairs_evaluated: int
    cache_hits: int
    cache_misses: int
    cache_size: int
    cache_max_entries: int
    cache_admitted: int = 0
    cache_rejected: int = 0
    vectors_refreshed: int = 0
    refresh_batches: int = 0
    seconds_since_refresh: float | None = None
    max_vector_age_seconds: float | None = None
    mean_vector_age_seconds: float | None = None
    shards: tuple[ShardHealth, ...] = ()
    update_sink_failures: int = 0
    update_sink_failures_by_sink: tuple[tuple[str, int], ...] = ()
    update_sink_last_error: tuple[tuple[str, str], ...] = ()
    stale_served: int = 0
    deadline_rejected: int = 0

    def to_dict(self) -> dict:
        """Plain-JSON form (the ``--json`` health surfaces).

        Shards become a list of dicts and the per-sink failure pairs
        become a name -> count mapping; derived rates ride along.
        """
        data = asdict(self)
        data["shard_occupancy"] = list(self.shard_occupancy)
        data["shards"] = [shard.to_dict() for shard in self.shards]
        data["update_sink_failures_by_sink"] = dict(
            self.update_sink_failures_by_sink
        )
        data["update_sink_last_error"] = dict(self.update_sink_last_error)
        data["cache_hit_rate"] = self.cache_hit_rate
        data["shard_imbalance"] = self.shard_imbalance
        data["unreachable_shards"] = self.unreachable_shards
        return data

    @property
    def cache_hit_rate(self) -> float:
        """Cache hits over lookups (0.0 when never queried)."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def shard_imbalance(self) -> float:
        """Max over mean shard occupancy (1.0 = perfectly balanced)."""
        if not self.shard_occupancy or sum(self.shard_occupancy) == 0:
            return 1.0
        mean = sum(self.shard_occupancy) / len(self.shard_occupancy)
        return max(self.shard_occupancy) / mean

    @property
    def unreachable_shards(self) -> int:
        """Shards that could not be contacted (0 for local stores)."""
        return sum(1 for shard in self.shards if not shard.reachable)

    def __str__(self) -> str:
        shards = (
            f" shards={self.n_shards} imbalance={self.shard_imbalance:.2f}"
            if self.n_shards
            else ""
        )
        if self.unreachable_shards:
            shards += f" unreachable={self.unreachable_shards}"
        if self.update_sink_failures:
            shards += f" sink_failures={self.update_sink_failures}"
            if self.update_sink_failures_by_sink:
                detail = ",".join(
                    f"{name}={count}"
                    for name, count in self.update_sink_failures_by_sink
                )
                shards += f"({detail})"
        admission = (
            f" cache_rejected={self.cache_rejected}"
            if self.cache_rejected
            else ""
        )
        if self.stale_served:
            admission += f" stale_served={self.stale_served}"
        if self.deadline_rejected:
            admission += f" deadline_rejected={self.deadline_rejected}"
        refresh = ""
        if self.refresh_batches:
            age = (
                f" refresh_age={self.seconds_since_refresh:.1f}s"
                if self.seconds_since_refresh is not None
                else ""
            )
            refresh = (
                f" refreshed={self.vectors_refreshed}"
                f"/{self.refresh_batches}batches{age}"
            )
        staleness = (
            f" max_vector_age={self.max_vector_age_seconds:.1f}s"
            if self.max_vector_age_seconds is not None
            else ""
        )
        return (
            f"hosts={self.n_hosts} landmarks={self.n_landmarks} "
            f"d={self.dimension}{shards} queries={self.queries_served} "
            f"pairs={self.pairs_evaluated} "
            f"cache_hit_rate={self.cache_hit_rate:.3f} "
            f"cache={self.cache_size}/{self.cache_max_entries}"
            f"{admission}{refresh}{staleness}"
        )


def spectrum_diagnostics(matrix: object) -> SpectrumDiagnostics:
    """Compute :class:`SpectrumDiagnostics` for one matrix."""
    data = as_matrix(matrix, name="matrix")
    return SpectrumDiagnostics(
        shape=data.shape,
        singular_values=singular_spectrum(data),
        effective_rank=effective_rank(data),
        rank_90=rank_for_energy(data, 0.90),
        rank_99=rank_for_energy(data, 0.99),
        top10_energy=energy_captured(data, 10),
    )
