"""The paper's primary contribution: distance-matrix factorization.

``D ~= X @ Y.T`` with per-host outgoing/incoming vectors, fitted by SVD
(global optimum, complete matrices) or NMF (non-negative, handles
missing data), evaluated with the modified relative error of Eq. 10.
"""

from .diagnostics import (
    ServiceHealth,
    ShardHealth,
    SpectrumDiagnostics,
    effective_rank,
    energy_captured,
    rank_for_energy,
    spectrum_diagnostics,
)
from .errors import (
    ErrorSummary,
    off_diagonal_values,
    relative_error_matrix,
    relative_errors,
    summarize_errors,
)
from .masks import (
    apply_mask,
    mask_from_missing,
    random_mask,
    symmetric_random_mask,
    unobserved_landmark_mask,
)
from .model import FactoredDistanceModel
from .nmf_model import NMFFactorizer
from .svd_model import SVDFactorizer

__all__ = [
    "ErrorSummary",
    "FactoredDistanceModel",
    "NMFFactorizer",
    "SVDFactorizer",
    "ServiceHealth",
    "ShardHealth",
    "SpectrumDiagnostics",
    "apply_mask",
    "effective_rank",
    "energy_captured",
    "mask_from_missing",
    "off_diagonal_values",
    "random_mask",
    "rank_for_energy",
    "relative_error_matrix",
    "relative_errors",
    "spectrum_diagnostics",
    "summarize_errors",
    "symmetric_random_mask",
    "unobserved_landmark_mask",
]
