"""The factored distance model ``D ~= X @ Y.T`` (paper Section 3).

A :class:`FactoredDistanceModel` assigns every host an *outgoing* vector
``X[i]`` and an *incoming* vector ``Y[i]``; the estimated distance from
host ``i`` to host ``j`` is the dot product ``X[i] . Y[j]`` (Eq. 4).
Because the two vectors are independent the model can express asymmetric
distances (``X_i . Y_j != X_j . Y_i``) and distances that violate the
triangle inequality — the two properties of Internet routing that defeat
Euclidean embeddings (Section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from .._validation import as_matrix
from ..exceptions import ValidationError

__all__ = ["FactoredDistanceModel"]


@dataclass(frozen=True)
class FactoredDistanceModel:
    """A fitted matrix-factorization model of network distances.

    Attributes:
        outgoing: ``(N, d)`` matrix ``X``; row ``i`` is host ``i``'s
            outgoing vector.
        incoming: ``(N', d)`` matrix ``Y``; row ``j`` is host ``j``'s
            incoming vector. ``N' == N`` for square distance matrices,
            but rectangular models (one host set measuring another, as
            in the AGNP data set) are fully supported.
        method: name of the fitting algorithm (``"svd"``, ``"nmf"``...).
        metadata: free-form details recorded by the fitter (iterations,
            objective value, singular values, ...).
    """

    outgoing: np.ndarray
    incoming: np.ndarray
    method: str = "unknown"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        outgoing = as_matrix(self.outgoing, name="outgoing")
        incoming = as_matrix(self.incoming, name="incoming")
        if outgoing.shape[1] != incoming.shape[1]:
            raise ValidationError(
                "outgoing and incoming vectors must share a dimension, got "
                f"{outgoing.shape[1]} and {incoming.shape[1]}"
            )
        object.__setattr__(self, "outgoing", outgoing)
        object.__setattr__(self, "incoming", incoming)

    @property
    def dimension(self) -> int:
        """The model dimension ``d``."""
        return self.outgoing.shape[1]

    @property
    def n_sources(self) -> int:
        """Number of hosts with outgoing vectors (matrix rows)."""
        return self.outgoing.shape[0]

    @property
    def n_destinations(self) -> int:
        """Number of hosts with incoming vectors (matrix columns)."""
        return self.incoming.shape[0]

    def predict(self, source: int, destination: int) -> float:
        """Estimated distance from ``source`` to ``destination`` (Eq. 4)."""
        return float(self.outgoing[source] @ self.incoming[destination])

    def predict_matrix(self) -> np.ndarray:
        """The full reconstructed distance matrix ``X @ Y.T``."""
        return self.outgoing @ self.incoming.T

    def predict_rows(self, sources: Sequence[int]) -> np.ndarray:
        """Reconstructed rows for the given source hosts."""
        return self.outgoing[np.asarray(sources, dtype=int)] @ self.incoming.T

    def predict_between(
        self, sources: Sequence[int], destinations: Sequence[int]
    ) -> np.ndarray:
        """Reconstructed submatrix for given source and destination sets."""
        src = np.asarray(sources, dtype=int)
        dst = np.asarray(destinations, dtype=int)
        return self.outgoing[src] @ self.incoming[dst].T

    def residual_matrix(self, true_distances: object) -> np.ndarray:
        """Signed residuals ``D - X @ Y.T`` against a true matrix."""
        distances = as_matrix(true_distances, name="true_distances")
        expected = (self.n_sources, self.n_destinations)
        if distances.shape != expected:
            raise ValidationError(
                f"true_distances must have shape {expected}, got {distances.shape}"
            )
        return distances - self.predict_matrix()

    def frobenius_error(self, true_distances: object) -> float:
        """Frobenius norm of the residual against a true matrix."""
        return float(np.linalg.norm(self.residual_matrix(true_distances)))

    def is_nonnegative(self, tolerance: float = 0.0) -> bool:
        """Whether both factors are elementwise non-negative.

        True for NMF models, guaranteeing non-negative predictions — the
        advantage over SVD highlighted in Section 4.2.
        """
        floor = -abs(tolerance)
        return bool((self.outgoing >= floor).all() and (self.incoming >= floor).all())

    def save(self, path: str | Path) -> None:
        """Serialize the model to an ``.npz`` file."""
        destination = Path(path)
        np.savez_compressed(
            destination,
            outgoing=self.outgoing,
            incoming=self.incoming,
            method=np.array(self.method),
        )

    @classmethod
    def load(cls, path: str | Path) -> "FactoredDistanceModel":
        """Load a model previously written by :meth:`save`."""
        source = Path(path)
        if not source.exists():
            raise ValidationError(f"model file not found: {source}")
        with np.load(source, allow_pickle=False) as archive:
            return cls(
                outgoing=archive["outgoing"],
                incoming=archive["incoming"],
                method=str(archive["method"]),
            )
