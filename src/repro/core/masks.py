"""Observation masks for partially measured distance matrices.

A mask is a boolean matrix ``M`` with ``M[i, j] = True`` when ``D[i, j]``
was measured — the binary matrix of the paper's Eqs. (8)-(9). Masks
model two distinct phenomena:

* *missing data* in a measurement campaign (probe loss, host downtime),
  handled by masked NMF during landmark-matrix fitting, and
* *unobserved landmarks* during ordinary-host placement (Section 6.2 /
  Figure 7), where each host independently fails to measure a random
  subset of landmarks.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_rng, check_fraction

__all__ = [
    "random_mask",
    "symmetric_random_mask",
    "unobserved_landmark_mask",
    "apply_mask",
    "mask_from_missing",
]


def random_mask(
    shape: tuple[int, int],
    missing_fraction: float,
    seed: int | np.random.Generator | None = None,
    keep_diagonal: bool = True,
) -> np.ndarray:
    """Independent Bernoulli observation mask.

    Args:
        shape: matrix shape.
        missing_fraction: probability that an entry is unobserved.
        seed: randomness source.
        keep_diagonal: always observe ``i == i`` (self-distance is known
            to be zero without measurement); only applies to square
            shapes.

    Returns:
        boolean mask with True marking observed entries.
    """
    fraction = check_fraction(missing_fraction, name="missing_fraction")
    rng = as_rng(seed)
    mask = rng.random(shape) >= fraction
    if keep_diagonal and shape[0] == shape[1]:
        np.fill_diagonal(mask, True)
    return mask


def symmetric_random_mask(
    size: int,
    missing_fraction: float,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Random mask where ``(i, j)`` and ``(j, i)`` share one coin flip.

    Models probe campaigns where a pair is measured by one round trip:
    losing the measurement loses both directions.
    """
    fraction = check_fraction(missing_fraction, name="missing_fraction")
    rng = as_rng(seed)
    upper = rng.random((size, size)) >= fraction
    mask = np.triu(upper, k=1)
    mask = mask | mask.T
    np.fill_diagonal(mask, True)
    return mask


def unobserved_landmark_mask(
    n_hosts: int,
    n_landmarks: int,
    unobserved_fraction: float,
    seed: int | np.random.Generator | None = None,
    min_observed: int = 1,
) -> np.ndarray:
    """Per-host landmark observation mask for the Figure 7 experiment.

    Each ordinary host independently fails to observe a random
    ``unobserved_fraction`` of the landmarks (rounded to the nearest
    count), matching Section 6.2: "The unobserved landmarks for each
    ordinary host were independently generated at random."

    Args:
        n_hosts: number of ordinary hosts (mask rows).
        n_landmarks: number of landmarks (mask columns).
        unobserved_fraction: fraction of landmarks each host misses.
        seed: randomness source.
        min_observed: lower bound on observed landmarks per host, so a
            host is never left with an empty reference set.

    Returns:
        ``(n_hosts, n_landmarks)`` boolean mask, True = observed.
    """
    fraction = check_fraction(unobserved_fraction, name="unobserved_fraction")
    rng = as_rng(seed)
    n_unobserved = int(round(fraction * n_landmarks))
    n_unobserved = min(n_unobserved, max(n_landmarks - min_observed, 0))

    mask = np.ones((n_hosts, n_landmarks), dtype=bool)
    if n_unobserved == 0:
        return mask
    for row in range(n_hosts):
        hidden = rng.choice(n_landmarks, size=n_unobserved, replace=False)
        mask[row, hidden] = False
    return mask


def apply_mask(matrix: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Return a copy of ``matrix`` with unobserved entries set to NaN."""
    masked = np.array(matrix, dtype=float, copy=True)
    masked[~mask] = np.nan
    return masked


def mask_from_missing(matrix: object) -> np.ndarray:
    """Derive the observation mask of a matrix with NaN missing entries."""
    return ~np.isnan(np.asarray(matrix, dtype=float))
