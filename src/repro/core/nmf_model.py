"""NMF-based distance matrix factorizer (paper Section 4.2)."""

from __future__ import annotations

import numpy as np

from .._validation import as_distance_matrix, as_mask, as_rng, check_dimension
from ..linalg import masked_nmf_factorize, nmf_factorize
from .masks import mask_from_missing
from .model import FactoredDistanceModel

__all__ = ["NMFFactorizer"]


class NMFFactorizer:
    """Fits :class:`FactoredDistanceModel` by non-negative factorization.

    Args:
        dimension: model dimension ``d``.
        max_iter: multiplicative-update budget per restart; the paper
            reports "two hundred iterations suffice to converge".
        tol: relative-improvement early-stop threshold.
        n_restarts: number of random restarts; NMF only reaches local
            minima, so the best of a few restarts smooths the variance
            the paper attributes to it at large ``d`` (Section 4.3.2).
        seed: base seed for the restart initializations.

    Unlike SVD, NMF guarantees non-negative factors (hence non-negative
    predictions) and copes with missing entries via the masked updates
    of Eqs. (8)-(9): pass a matrix containing NaN, or an explicit mask.
    """

    method_name = "nmf"

    def __init__(
        self,
        dimension: int = 10,
        max_iter: int = 200,
        tol: float = 1e-7,
        n_restarts: int = 1,
        seed: int | np.random.Generator | None = 0,
    ):
        self.dimension = check_dimension(dimension)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.n_restarts = max(int(n_restarts), 1)
        self.seed = seed

    def fit(self, distances: object, mask: object | None = None) -> FactoredDistanceModel:
        """Factor a (possibly incomplete) distance matrix.

        Args:
            distances: ``(N, N')`` non-negative matrix; NaN entries mark
                unmeasured pairs and switch the fit to the masked
                update rules automatically.
            mask: optional explicit boolean observation matrix; merged
                (logical AND) with the NaN-derived mask.

        Returns:
            a fitted model; metadata records the final objective value,
            iteration count, convergence flag, and restart index chosen.
        """
        matrix = as_distance_matrix(distances, name="distances", allow_missing=True)
        check_dimension(self.dimension, limit=min(matrix.shape))

        observed = mask_from_missing(matrix)
        if mask is not None:
            observed &= as_mask(mask, matrix.shape)
        complete = bool(observed.all())

        rng = as_rng(self.seed)
        best = None
        best_restart = 0
        for restart in range(self.n_restarts):
            if complete:
                result = nmf_factorize(
                    matrix,
                    self.dimension,
                    seed=rng,
                    max_iter=self.max_iter,
                    tol=self.tol,
                )
            else:
                result = masked_nmf_factorize(
                    matrix,
                    observed,
                    self.dimension,
                    seed=rng,
                    max_iter=self.max_iter,
                    tol=self.tol,
                )
            if best is None or result.objective < best.objective:
                best = result
                best_restart = restart

        assert best is not None
        return FactoredDistanceModel(
            outgoing=best.outgoing,
            incoming=best.incoming,
            method=self.method_name,
            metadata={
                "objective": best.objective,
                "iterations": best.iterations,
                "converged": best.converged,
                "restart": best_restart,
                "masked": not complete,
            },
        )

    def fit_predict(self, distances: object, mask: object | None = None) -> np.ndarray:
        """Fit and immediately return the reconstructed matrix."""
        return self.fit(distances, mask=mask).predict_matrix()
