"""SVD-based distance matrix factorizer (paper Section 4.1)."""

from __future__ import annotations

import numpy as np

from .._validation import as_distance_matrix, check_dimension
from ..linalg import truncated_svd_factors
from .model import FactoredDistanceModel

__all__ = ["SVDFactorizer"]


class SVDFactorizer:
    """Fits :class:`FactoredDistanceModel` by truncated SVD.

    Args:
        dimension: model dimension ``d``. The paper finds ``d ~= 10`` a
            good complexity/accuracy trade-off (Section 4.3.2).

    SVD computes the *global* minimum of the squared reconstruction
    error (Eq. 7) but requires a complete matrix — it "can proceed with
    missing values if we eliminate the rows and columns that contain
    them" (Section 4.2), i.e. filter first with
    :mod:`repro.datasets.filtering`. Reconstructed distances may be
    negative; use :class:`repro.core.NMFFactorizer` when non-negative
    estimates are required.
    """

    method_name = "svd"

    def __init__(self, dimension: int = 10):
        self.dimension = check_dimension(dimension)

    def fit(self, distances: object) -> FactoredDistanceModel:
        """Factor a complete distance matrix into a rank-``d`` model.

        Args:
            distances: complete ``(N, N')`` non-negative matrix. NaN
                entries raise ``ValidationError`` — SVD has no masked
                variant.

        Returns:
            a fitted :class:`FactoredDistanceModel` whose metadata holds
            the retained singular values and the Frobenius residual.
        """
        matrix = as_distance_matrix(distances, name="distances")
        check_dimension(self.dimension, limit=min(matrix.shape))
        factors = truncated_svd_factors(matrix, self.dimension)
        return FactoredDistanceModel(
            outgoing=factors.outgoing,
            incoming=factors.incoming,
            method=self.method_name,
            metadata={
                "singular_values": factors.singular_values,
                "frobenius_residual": factors.residual,
            },
        )

    def fit_predict(self, distances: object) -> np.ndarray:
        """Fit and immediately return the reconstructed matrix."""
        return self.fit(distances).predict_matrix()
