"""Error metrics for distance reconstruction and prediction.

The paper evaluates accuracy with a *modified relative error* (Eq. 10):

.. math::

    \\text{relative error} = \\frac{|D_{ij} - \\hat D_{ij}|}
                                   {\\min(D_{ij}, \\hat D_{ij})}

The ``min`` in the denominator penalizes under-estimation: predicting
10 ms for a true 20 ms pair scores 1.0, not 0.5. The same metric is
used by GNP and Vivaldi, which makes cross-system comparisons fair.

SVD-based models can produce non-positive estimates, and measured
matrices can contain zero self-distances; we therefore clamp the
denominator at a small positive floor so the metric stays finite while
still penalizing severe under-estimates heavily.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_matrix
from ..exceptions import ValidationError

__all__ = [
    "relative_error_matrix",
    "relative_errors",
    "off_diagonal_values",
    "ErrorSummary",
    "summarize_errors",
]

#: Relative floor applied to the Eq. 10 denominator, as a fraction of the
#: mean true distance. Guards against division by ~zero when a model
#: under-predicts to (or below) zero.
DENOMINATOR_FLOOR_FRACTION = 1e-6


def _denominator_floor(true_distances: np.ndarray) -> float:
    """Positive floor for the Eq. 10 denominator, scaled to the data."""
    finite = true_distances[np.isfinite(true_distances)]
    positive = finite[finite > 0]
    if positive.size == 0:
        return DENOMINATOR_FLOOR_FRACTION
    return float(positive.mean() * DENOMINATOR_FLOOR_FRACTION)


def relative_error_matrix(
    true_distances: object,
    estimated_distances: object,
) -> np.ndarray:
    """Elementwise modified relative error (Eq. 10).

    Args:
        true_distances: matrix ``D`` of measured distances; NaN entries
            (unmeasured pairs) yield NaN errors.
        estimated_distances: matrix ``D_hat`` of model estimates, same
            shape.

    Returns:
        matrix of ``|D - D_hat| / max(min(D, D_hat), floor)`` values.
    """
    true_matrix = as_matrix(true_distances, name="true_distances")
    estimated = as_matrix(estimated_distances, name="estimated_distances")
    if true_matrix.shape != estimated.shape:
        raise ValidationError(
            f"shape mismatch: true {true_matrix.shape} vs estimated {estimated.shape}"
        )
    floor = _denominator_floor(true_matrix)
    denominator = np.maximum(np.minimum(true_matrix, estimated), floor)
    return np.abs(true_matrix - estimated) / denominator


def off_diagonal_values(matrix: object) -> np.ndarray:
    """Flatten a square matrix, dropping the diagonal.

    Self-distances are identically zero in every data set and would
    otherwise dominate relative-error statistics.
    """
    square = as_matrix(matrix, name="matrix")
    if square.shape[0] != square.shape[1]:
        raise ValidationError(f"matrix must be square, got {square.shape}")
    mask = ~np.eye(square.shape[0], dtype=bool)
    return square[mask]


def relative_errors(
    true_distances: object,
    estimated_distances: object,
    exclude_diagonal: bool | None = None,
) -> np.ndarray:
    """Flat array of finite relative errors between two matrices.

    Args:
        true_distances: measured matrix ``D`` (NaN allowed = unmeasured).
        estimated_distances: model estimates, same shape.
        exclude_diagonal: drop ``i == j`` pairs; defaults to True for
            square matrices and is ignored for rectangular ones.

    Returns:
        1-D array of errors for measured pairs, ready for CDF plotting.
    """
    error_matrix = relative_error_matrix(true_distances, estimated_distances)
    square = error_matrix.shape[0] == error_matrix.shape[1]
    if exclude_diagonal is None:
        exclude_diagonal = square
    if exclude_diagonal and square:
        values = off_diagonal_values(error_matrix)
    else:
        values = error_matrix.ravel()
    return values[np.isfinite(values)]


@dataclass(frozen=True)
class ErrorSummary:
    """Percentile summary of a relative-error distribution.

    Attributes:
        count: number of finite error samples.
        median: 50th percentile (the paper's headline statistic).
        p90: 90th percentile (quoted throughout Section 4.3).
        mean: arithmetic mean.
        maximum: worst-case error.
    """

    count: int
    median: float
    p90: float
    mean: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} median={self.median:.4f} p90={self.p90:.4f} "
            f"mean={self.mean:.4f} max={self.maximum:.4f}"
        )


def summarize_errors(errors: object) -> ErrorSummary:
    """Summarize a flat array of relative errors."""
    values = np.asarray(errors, dtype=float).ravel()
    values = values[np.isfinite(values)]
    if values.size == 0:
        raise ValidationError("no finite error values to summarize")
    return ErrorSummary(
        count=int(values.size),
        median=float(np.median(values)),
        p90=float(np.percentile(values, 90)),
        mean=float(values.mean()),
        maximum=float(values.max()),
    )
