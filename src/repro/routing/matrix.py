"""Composition of site-level delays into host-level RTT matrices.

The generators decompose an RTT as

``rtt(i, j) = 2 * (access_i + path(site_i, site_j) + access_j)``

with all terms one-way delays in ms. Hosts in the same site see a small
intra-site path instead of zero, so co-located hosts are close but not
identical. Composition is fully vectorized: a 1740-host matrix costs a
single fancy-indexing pass over a small site-level matrix.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_matrix, as_rng, check_positive
from ..exceptions import ValidationError

__all__ = ["compose_host_rtt"]


def compose_host_rtt(
    site_delays: object,
    row_sites: object,
    row_access: object,
    col_sites: object | None = None,
    col_access: object | None = None,
    intra_site_ms: float = 0.2,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Build a host-level RTT matrix from site-level one-way delays.

    Args:
        site_delays: ``(S, S)`` one-way site-to-site delay matrix
            (already policy-inflated if desired).
        row_sites: site index of each row host.
        row_access: one-way access delay of each row host (ms).
        col_sites: site index of each column host; defaults to
            ``row_sites`` (square matrix over one host population).
        col_access: access delay of each column host; defaults to
            ``row_access``.
        intra_site_ms: one-way delay charged between *distinct* hosts of
            the same site (LAN/metro hop).
        seed: reserved for future stochastic composition; accepted for
            interface symmetry.

    Returns:
        ``(len(row_sites), len(col_sites))`` RTT matrix in ms with a
        zero diagonal when the row and column populations are identical.
    """
    delays = as_matrix(site_delays, name="site_delays")
    if delays.shape[0] != delays.shape[1]:
        raise ValidationError(f"site_delays must be square, got {delays.shape}")
    check_positive(intra_site_ms, name="intra_site_ms")
    _ = as_rng(seed)

    rows = np.asarray(row_sites, dtype=int)
    row_acc = np.asarray(row_access, dtype=float)
    if rows.shape != row_acc.shape:
        raise ValidationError("row_sites and row_access must have equal length")

    same_population = col_sites is None
    cols = rows if same_population else np.asarray(col_sites, dtype=int)
    col_acc = row_acc if col_access is None else np.asarray(col_access, dtype=float)
    if cols.shape != col_acc.shape:
        raise ValidationError("col_sites and col_access must have equal length")

    n_sites = delays.shape[0]
    for label, sites in (("row_sites", rows), ("col_sites", cols)):
        if sites.size and (sites.min() < 0 or sites.max() >= n_sites):
            raise ValidationError(f"{label} must index into the {n_sites} sites")

    path = delays[np.ix_(rows, cols)]
    same_site = rows[:, None] == cols[None, :]
    path = np.where(same_site, intra_site_ms, path)

    one_way = row_acc[:, None] + path + col_acc[None, :]
    rtt = 2.0 * one_way

    if same_population and rtt.shape[0] == rtt.shape[1]:
        np.fill_diagonal(rtt, 0.0)
    return rtt
