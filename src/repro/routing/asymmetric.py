"""Asymmetric routing: direction-dependent distances.

Paxson (ToN 1997) found asymmetric routes common in the Internet, and
broadband access links have very different up/down characteristics
(Lakshminarayanan & Padmanabhan, IMC 2003) — the paper's references
[15] and [10]. Euclidean embeddings force ``D_hat[i,j] == D_hat[j,i]``;
the factored model does not, because host ``i``'s outgoing vector is
independent of its incoming vector.

We model asymmetry multiplicatively: each ordered pair ``(i, j)`` draws
a persistent factor so ``D[i, j]`` and ``D[j, i]`` diverge by a
controlled amount while their geometric mean stays at the symmetric
base value.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_matrix, as_rng
from ..exceptions import ValidationError

__all__ = ["apply_asymmetry", "apply_host_asymmetry", "asymmetry_index"]


def apply_asymmetry(
    distances: object,
    level: float,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Make a symmetric matrix asymmetric by paired log-normal factors.

    Args:
        distances: square non-negative matrix (typically symmetric).
        level: log-space sigma of the directional factor. ``0`` returns
            the matrix unchanged; ``0.2`` yields ~±20% typical
            directional splits; ``0.5`` models heavily asymmetric
            policy routing.
        seed: randomness source.

    Returns:
        a new matrix where ``D[i, j] *= exp(+g_ij)`` and
        ``D[j, i] *= exp(-g_ij)`` with ``g_ij ~ N(0, level)``, keeping
        the per-pair geometric mean fixed and the diagonal intact.
    """
    matrix = as_matrix(distances, name="distances")
    if matrix.shape[0] != matrix.shape[1]:
        raise ValidationError(f"distances must be square, got {matrix.shape}")
    if level < 0:
        raise ValidationError(f"level must be >= 0, got {level}")
    if level == 0.0:
        return matrix.copy()
    rng = as_rng(seed)

    n = matrix.shape[0]
    gains = rng.normal(0.0, level, size=(n, n))
    upper = np.triu(gains, k=1)
    signed = upper - upper.T  # g_ji = -g_ij
    result = matrix * np.exp(signed)
    np.fill_diagonal(result, np.diag(matrix))
    return result


def apply_host_asymmetry(
    distances: object,
    level: float,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Per-host *structured* directional asymmetry.

    Each host ``i`` draws a directional imbalance ``g_i ~ N(0, level)``
    and the matrix becomes ``D'_ij = D_ij * exp((g_i - g_j) / 2)`` —
    i.e. ``D' = diag(u) @ D @ diag(1/u)`` with ``u_i = exp(g_i / 2)``.
    This models hosts whose outbound path systematically differs from
    their inbound path (asymmetric broadband capacities, hot-potato
    exit points: the paper's reference [10]), and — unlike the i.i.d.
    pair-level :func:`apply_asymmetry` — it *preserves the rank* of the
    matrix exactly. A factored model at the same dimension therefore
    absorbs it completely, while any Euclidean (symmetric) model is
    stuck at the geometric mean; the ``ablate-asym`` experiment
    measures exactly this gap.

    Args:
        distances: square non-negative matrix.
        level: standard deviation of the per-host imbalance.
        seed: randomness source.

    Returns:
        the skewed matrix; per-pair geometric means and the diagonal
        are preserved.
    """
    matrix = as_matrix(distances, name="distances")
    if matrix.shape[0] != matrix.shape[1]:
        raise ValidationError(f"distances must be square, got {matrix.shape}")
    if level < 0:
        raise ValidationError(f"level must be >= 0, got {level}")
    if level == 0.0:
        return matrix.copy()
    rng = as_rng(seed)

    n = matrix.shape[0]
    imbalance = rng.normal(0.0, level, size=n)
    out_factor = np.exp(imbalance / 2.0)
    result = matrix * out_factor[:, None] / out_factor[None, :]
    np.fill_diagonal(result, np.diag(matrix))
    return result


def asymmetry_index(distances: object) -> float:
    """Median relative direction gap ``|D_ij - D_ji| / min(D_ij, D_ji)``.

    Zero for symmetric matrices; roughly ``2 * sinh(level)`` after
    :func:`apply_asymmetry`. NaN entries and the diagonal are ignored.
    """
    matrix = as_matrix(distances, name="distances")
    if matrix.shape[0] != matrix.shape[1]:
        raise ValidationError(f"distances must be square, got {matrix.shape}")
    n = matrix.shape[0]
    if n < 2:
        return 0.0
    upper_idx = np.triu_indices(n, k=1)
    forward = matrix[upper_idx]
    backward = matrix.T[upper_idx]
    valid = np.isfinite(forward) & np.isfinite(backward)
    forward, backward = forward[valid], backward[valid]
    smaller = np.minimum(forward, backward)
    positive = smaller > 0
    if not positive.any():
        return 0.0
    gaps = np.abs(forward - backward)[positive] / smaller[positive]
    return float(np.median(gaps))
