"""Routing substrate: from topologies to distance matrices.

Shortest-path delays (scipy Dijkstra), policy inflation producing
sub-optimal routes and triangle-inequality violations, directional
asymmetry, and the vectorized site-to-host RTT composition.
"""

from .asymmetric import apply_asymmetry, apply_host_asymmetry, asymmetry_index
from .matrix import compose_host_rtt
from .policy import (
    PolicyInflationConfig,
    alternate_path_fraction,
    apply_policy_inflation,
)
from .shortest_path import pairwise_site_delays, shortest_path_delays

__all__ = [
    "PolicyInflationConfig",
    "alternate_path_fraction",
    "apply_asymmetry",
    "apply_host_asymmetry",
    "apply_policy_inflation",
    "asymmetry_index",
    "compose_host_rtt",
    "pairwise_site_delays",
    "shortest_path_delays",
]
