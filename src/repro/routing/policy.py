"""Policy-routing path inflation: modeling sub-optimal routes.

BGP routing chooses paths by commercial policy, not delay: a route
through a provider can be far longer than the geometric shortest path,
and studies the paper cites (Banerjee et al. PAM 2004; Tang & Crovella
IMC 2003) find that for as many as 40% of node pairs some alternate
node offers a shorter two-hop path. Euclidean embeddings *cannot*
represent such matrices (they force the triangle inequality); the
factored model can — this inflated regime is where the paper wins.

Two inflation layers model two distinct real phenomena:

* **Domain-pair factors** — persistent detours between pairs of
  autonomous systems (a peering dispute routes all of AS A's traffic to
  AS B through a distant exchange). These are *structural*: every site
  pair across the two domains shares the factor, so the matrix stays
  close to low rank — exactly why factorization keeps working on real
  data.
* **Pair-level factors** — idiosyncratic per-site-pair detours (a
  broken route, an anycast oddity). These are full-rank noise, the
  irreducible error floor that no model dimension recovers; data sets
  differ mainly in how much of this they carry (NLANR little, PL-RTT
  and P2PSim a lot).

Factors are deterministic given the seed, matching how real route
selection is stable over a measurement campaign.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_matrix, as_rng, check_fraction
from ..exceptions import ValidationError

__all__ = [
    "PolicyInflationConfig",
    "apply_policy_inflation",
    "alternate_path_fraction",
]


@dataclass(frozen=True)
class PolicyInflationConfig:
    """Parameters of the two-layer policy-inflation model.

    Attributes:
        detour_probability: fraction of ordered domain pairs whose
            traffic takes a policy detour.
        inflation_sigma: log-normal sigma of the domain-pair detour
            factor; the multiplier is ``1 + |lognormal(-0.5, sigma) - 1|``
            so typical detours add tens of percent with a heavy tail.
        pair_detour_probability: fraction of individual site pairs with
            an idiosyncratic detour on top of the domain factor.
        pair_inflation_sigma: log-normal sigma of the idiosyncratic
            factor.
        symmetric: when True both directions of a pair share one factor
            (RTT data); when False each direction draws independently.
    """

    detour_probability: float = 0.4
    inflation_sigma: float = 0.5
    pair_detour_probability: float = 0.05
    pair_inflation_sigma: float = 0.3
    symmetric: bool = True

    def validate(self) -> None:
        """Raise on out-of-range parameters."""
        check_fraction(self.detour_probability, name="detour_probability")
        check_fraction(self.pair_detour_probability, name="pair_detour_probability")
        if self.inflation_sigma < 0:
            raise ValidationError("inflation_sigma must be >= 0")
        if self.pair_inflation_sigma < 0:
            raise ValidationError("pair_inflation_sigma must be >= 0")


def _detour_factors(
    size: int,
    probability: float,
    sigma: float,
    symmetric: bool,
    rng: np.random.Generator,
) -> np.ndarray:
    """Matrix of ``>= 1`` inflation factors, unit where no detour."""
    if probability == 0.0 or sigma == 0.0:
        return np.ones((size, size))
    detour = rng.random((size, size)) < probability
    inflation = 1.0 + np.abs(rng.lognormal(-0.5, sigma, size=(size, size)) - 1.0)
    factors = np.where(detour, inflation, 1.0)
    if symmetric:
        upper = np.triu(factors, k=1)
        factors = upper + upper.T + np.diag(np.diag(factors))
        factors[factors == 0.0] = 1.0
    return factors


def apply_policy_inflation(
    site_delays: object,
    site_domains: object,
    config: PolicyInflationConfig | None = None,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Inflate inter-domain site delays by persistent policy factors.

    Args:
        site_delays: ``(S, S)`` shortest-path one-way delay matrix.
        site_domains: length-``S`` domain label per site.
        config: inflation parameters.
        seed: randomness source.

    Returns:
        a new ``(S, S)`` matrix. Intra-domain entries are never
        inflated (local routing is near-optimal); the diagonal is
        preserved exactly.
    """
    config = config or PolicyInflationConfig()
    config.validate()
    delays = as_matrix(site_delays, name="site_delays")
    if delays.shape[0] != delays.shape[1]:
        raise ValidationError(f"site_delays must be square, got {delays.shape}")
    domains = np.asarray(site_domains)
    if domains.shape[0] != delays.shape[0]:
        raise ValidationError(
            f"site_domains has length {domains.shape[0]}, expected {delays.shape[0]}"
        )
    rng = as_rng(seed)
    count = delays.shape[0]

    # Structural layer: one factor per ordered domain pair, expanded to
    # the site pairs it covers.
    unique_domains, domain_of_site = np.unique(domains, return_inverse=True)
    n_domains = unique_domains.size
    domain_factors = _detour_factors(
        n_domains,
        config.detour_probability,
        config.inflation_sigma,
        config.symmetric,
        rng,
    )
    np.fill_diagonal(domain_factors, 1.0)
    factors = domain_factors[np.ix_(domain_of_site, domain_of_site)]

    # Idiosyncratic layer: per-site-pair detours (full-rank noise floor).
    pair_factors = _detour_factors(
        count,
        config.pair_detour_probability,
        config.pair_inflation_sigma,
        config.symmetric,
        rng,
    )
    factors = factors * pair_factors

    same_domain = domains[:, None] == domains[None, :]
    factors = np.where(same_domain, 1.0, factors)
    np.fill_diagonal(factors, 1.0)
    return delays * factors


def alternate_path_fraction(
    distances: object,
    sample_pairs: int | None = 20_000,
    seed: int | np.random.Generator | None = 0,
    tolerance: float = 1e-9,
) -> float:
    """Fraction of pairs with a shorter path through an alternate node.

    For a pair ``(i, j)`` checks whether some ``k`` satisfies
    ``D[i, k] + D[k, j] < D[i, j]`` — the triangle-inequality-violation
    statistic the paper quotes at ~40% for real data sets. Exact over
    all pairs for small matrices; sampled for large ones.

    Args:
        distances: square distance matrix (NaN entries skipped).
        sample_pairs: pair-sample budget; ``None`` forces the exact
            all-pairs computation.
        seed: randomness source for sampling.
        tolerance: slack for the strict inequality.

    Returns:
        the (estimated) violating-pair fraction in ``[0, 1]``.
    """
    matrix = as_matrix(distances, name="distances")
    if matrix.shape[0] != matrix.shape[1]:
        raise ValidationError(f"distances must be square, got {matrix.shape}")
    n = matrix.shape[0]
    if n < 3:
        return 0.0
    rng = as_rng(seed)

    total_pairs = n * (n - 1)
    if sample_pairs is None or sample_pairs >= total_pairs:
        rows = np.repeat(np.arange(n), n - 1)
        cols = np.concatenate([np.delete(np.arange(n), i) for i in range(n)])
    else:
        rows = rng.integers(0, n, size=sample_pairs)
        cols = rng.integers(0, n, size=sample_pairs)
        keep = rows != cols
        rows, cols = rows[keep], cols[keep]

    violated = 0
    evaluated = 0
    for i, j in zip(rows, cols):
        direct = matrix[i, j]
        if not np.isfinite(direct):
            continue
        detour = matrix[i, :] + matrix[:, j]
        detour[i] = np.inf
        detour[j] = np.inf
        finite = detour[np.isfinite(detour)]
        if finite.size == 0:
            continue
        evaluated += 1
        if finite.min() < direct - tolerance:
            violated += 1
    if evaluated == 0:
        return 0.0
    return violated / evaluated
