"""Shortest-path (optimal) routing over a topology.

Computes delay matrices by Dijkstra's algorithm over the link-delay
adjacency matrix. This is the *best-case* routing baseline; the policy
layer then inflates selected paths to model the sub-optimal routing the
paper emphasizes (Section 2.2: up to 40% of node pairs have a shorter
path through an alternate node).
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csgraph

from .._validation import check_indices
from ..exceptions import ValidationError
from ..topology import Topology

__all__ = ["shortest_path_delays", "pairwise_site_delays"]


def shortest_path_delays(
    topology: Topology,
    source_indices: object | None = None,
    target_indices: object | None = None,
) -> np.ndarray:
    """One-way shortest-path delay between node sets.

    Args:
        topology: delay-annotated topology.
        source_indices: canonical node indices of sources; all nodes if
            omitted.
        target_indices: canonical node indices of targets; all nodes if
            omitted.

    Returns:
        ``(len(sources), len(targets))`` matrix of one-way delays in ms.
    """
    adjacency = topology.delay_adjacency()
    n = topology.n_nodes

    if source_indices is None:
        sources = np.arange(n)
    else:
        sources = check_indices(source_indices, n, name="source_indices", unique=False)
    if target_indices is None:
        targets = np.arange(n)
    else:
        targets = check_indices(target_indices, n, name="target_indices", unique=False)

    unique_sources, inverse = np.unique(sources, return_inverse=True)
    delays = csgraph.dijkstra(adjacency, directed=False, indices=unique_sources)
    if np.isinf(delays).any():
        raise ValidationError("topology is not connected; some delays are infinite")
    return delays[inverse][:, targets]


def pairwise_site_delays(topology: Topology, site_indices: object) -> np.ndarray:
    """Square one-way delay matrix between a set of sites.

    Convenience wrapper used by every data-set generator: the site-level
    matrix is small (tens to hundreds of sites) even when the host-level
    matrix has thousands of rows.
    """
    return shortest_path_delays(topology, site_indices, site_indices)
