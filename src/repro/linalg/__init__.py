"""Linear-algebra kernels used throughout the reproduction.

Everything here is implemented from scratch on top of raw numpy
primitives (``svd``, ``eigh``, ``lstsq``): truncated-SVD factor
extraction, Lee-Seung NMF with and without missing data, (batched)
least squares with optional ridge, Lawson-Hanson non-negative least
squares, PCA, and the Nelder-Mead simplex-downhill optimizer GNP uses.
"""

from .least_squares import (
    gram_condition_number,
    mask_row_groups,
    solve_batched_least_squares,
    solve_least_squares,
    solve_weighted_batched_least_squares,
)
from .nmf import NMFResult, masked_nmf_factorize, nmf_factorize, nmf_objective
from .nnls import nonnegative_least_squares, nonnegative_least_squares_batched
from .pca import PCA
from .simplex import SimplexResult, minimize_with_restarts, nelder_mead
from .svd import (
    SVDFactors,
    low_rank_approximation,
    singular_spectrum,
    truncated_svd_factors,
)

__all__ = [
    "PCA",
    "NMFResult",
    "SVDFactors",
    "SimplexResult",
    "gram_condition_number",
    "low_rank_approximation",
    "mask_row_groups",
    "masked_nmf_factorize",
    "minimize_with_restarts",
    "nelder_mead",
    "nmf_factorize",
    "nmf_objective",
    "nonnegative_least_squares",
    "nonnegative_least_squares_batched",
    "singular_spectrum",
    "solve_batched_least_squares",
    "solve_least_squares",
    "solve_weighted_batched_least_squares",
    "truncated_svd_factors",
]
