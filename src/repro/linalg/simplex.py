"""Nelder-Mead simplex-downhill minimization, implemented from scratch.

GNP (Ng & Zhang, INFOCOM 2002) computes host coordinates by minimizing a
relative-error objective with the *Simplex Downhill* method, and the
paper's Table 1 attributes GNP's multi-minute running times to this
optimizer. To reproduce that comparison faithfully we implement the
optimizer ourselves rather than calling scipy (scipy serves as a test
oracle only).

The implementation follows the standard Nelder-Mead scheme with
reflection, expansion, outside/inside contraction, and shrink steps
using the classic coefficients (alpha, gamma, rho, sigma) =
(1, 2, 0.5, 0.5), plus optional random restarts — the original GNP
software restarts the simplex several times to escape poor local
minima, which is exactly why it is slow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .._validation import as_rng, as_vector, check_positive

__all__ = ["SimplexResult", "nelder_mead", "minimize_with_restarts"]


@dataclass(frozen=True)
class SimplexResult:
    """Outcome of a simplex-downhill run.

    Attributes:
        point: the best point found.
        value: objective value at :attr:`point`.
        iterations: simplex transformations performed.
        evaluations: objective evaluations performed.
        converged: whether the simplex collapsed below the tolerances
            before the iteration budget ran out.
    """

    point: np.ndarray
    value: float
    iterations: int
    evaluations: int
    converged: bool


def _initial_simplex(start: np.ndarray, step: float) -> np.ndarray:
    """Axis-aligned initial simplex around ``start``.

    Uses the scheme from the original Nelder-Mead paper: vertex ``i+1``
    displaces coordinate ``i`` by ``step`` (or a small absolute step if
    the coordinate is zero).
    """
    dimension = start.shape[0]
    simplex = np.tile(start, (dimension + 1, 1))
    for index in range(dimension):
        if simplex[index + 1, index] != 0.0:
            simplex[index + 1, index] *= 1.0 + step
        else:
            simplex[index + 1, index] = step
    return simplex


def nelder_mead(
    objective: Callable[[np.ndarray], float],
    start: object,
    max_iter: int | None = None,
    xatol: float = 1e-6,
    fatol: float = 1e-9,
    initial_step: float = 0.05,
) -> SimplexResult:
    """Minimize ``objective`` from ``start`` with the Nelder-Mead method.

    Args:
        objective: function mapping a length-``n`` vector to a float.
        start: the initial point.
        max_iter: transformation budget; defaults to ``200 * n`` (the
            conventional heuristic, also scipy's default).
        xatol: simplex-diameter convergence tolerance.
        fatol: objective-spread convergence tolerance.
        initial_step: relative displacement used to build the first
            simplex.

    Returns:
        :class:`SimplexResult` for the best vertex seen.
    """
    origin = as_vector(start, name="start")
    dimension = origin.shape[0]
    if max_iter is None:
        max_iter = 200 * dimension
    check_positive(max_iter, name="max_iter")

    alpha, gamma, rho, sigma = 1.0, 2.0, 0.5, 0.5

    simplex = _initial_simplex(origin, initial_step)
    values = np.array([objective(vertex) for vertex in simplex])
    evaluations = dimension + 1

    iterations = 0
    converged = False
    while iterations < max_iter:
        order = np.argsort(values, kind="stable")
        simplex = simplex[order]
        values = values[order]

        spread = float(np.max(np.abs(simplex[1:] - simplex[0])))
        if spread <= xatol and float(values[-1] - values[0]) <= fatol:
            converged = True
            break

        iterations += 1
        centroid = simplex[:-1].mean(axis=0)

        reflected = centroid + alpha * (centroid - simplex[-1])
        reflected_value = objective(reflected)
        evaluations += 1

        if reflected_value < values[0]:
            expanded = centroid + gamma * (reflected - centroid)
            expanded_value = objective(expanded)
            evaluations += 1
            if expanded_value < reflected_value:
                simplex[-1], values[-1] = expanded, expanded_value
            else:
                simplex[-1], values[-1] = reflected, reflected_value
            continue

        if reflected_value < values[-2]:
            simplex[-1], values[-1] = reflected, reflected_value
            continue

        if reflected_value < values[-1]:
            contracted = centroid + rho * (reflected - centroid)
        else:
            contracted = centroid + rho * (simplex[-1] - centroid)
        contracted_value = objective(contracted)
        evaluations += 1
        if contracted_value < min(reflected_value, values[-1]):
            simplex[-1], values[-1] = contracted, contracted_value
            continue

        # Shrink every vertex toward the best one.
        simplex[1:] = simplex[0] + sigma * (simplex[1:] - simplex[0])
        values[1:] = [objective(vertex) for vertex in simplex[1:]]
        evaluations += dimension

    best = int(np.argmin(values))
    return SimplexResult(
        point=simplex[best].copy(),
        value=float(values[best]),
        iterations=iterations,
        evaluations=evaluations,
        converged=converged,
    )


def minimize_with_restarts(
    objective: Callable[[np.ndarray], float],
    start: object,
    restarts: int = 3,
    perturbation: float = 0.25,
    seed: int | np.random.Generator | None = 0,
    **simplex_options: object,
) -> SimplexResult:
    """Run :func:`nelder_mead` several times from perturbed starts.

    The first run starts exactly at ``start``; each subsequent run
    perturbs the best point found so far by a relative random amount.
    This mirrors the restart strategy of the official GNP software and
    is the main cost driver reproduced in Table 1.

    Returns:
        the :class:`SimplexResult` of the best run, with ``iterations``
        and ``evaluations`` summed over all runs.
    """
    rng = as_rng(seed)
    origin = as_vector(start, name="start")
    if restarts < 1:
        restarts = 1

    best: SimplexResult | None = None
    total_iterations = 0
    total_evaluations = 0
    current = origin
    for attempt in range(restarts):
        result = nelder_mead(objective, current, **simplex_options)
        total_iterations += result.iterations
        total_evaluations += result.evaluations
        if best is None or result.value < best.value:
            best = result
        scale = np.maximum(np.abs(best.point), 1.0)
        current = best.point + perturbation * scale * rng.standard_normal(origin.shape[0])

    assert best is not None
    return SimplexResult(
        point=best.point,
        value=best.value,
        iterations=total_iterations,
        evaluations=total_evaluations,
        converged=best.converged,
    )
