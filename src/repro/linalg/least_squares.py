"""Least-squares solvers used by the IDES host-placement step.

An ordinary host that measured distances ``d_out[i]`` to reference nodes
with incoming vectors ``Y[i]`` solves (paper Eq. 11 / 15)

.. math::

    \\vec X_{new} = \\arg\\min_{u} \\sum_i (d^{out}_i - u \\cdot \\vec Y_i)^2

whose closed form (Eq. 13) is ``X_new = (d_out @ Y) @ inv(Y.T @ Y)``.
This module provides that solve — robustly, via ``lstsq`` when the Gram
matrix is singular — plus a batched variant used to place thousands of
hosts at once, and an optional Tikhonov (ridge) regularizer for noisy or
barely-determined systems (``k`` close to ``d``).
"""

from __future__ import annotations

import numpy as np

from .._validation import as_matrix, as_vector
from ..exceptions import SingularSystemError, ValidationError

__all__ = [
    "solve_least_squares",
    "solve_batched_least_squares",
    "solve_weighted_batched_least_squares",
    "mask_row_groups",
    "gram_condition_number",
]


def row_pattern_groups(rows: np.ndarray) -> list[np.ndarray]:
    """Index arrays grouping the rows of ``rows`` by exact equality.

    The shared engine behind every "hosts sharing a pattern share a
    factorization" path: returns one member-index array per distinct
    row, in first-appearance order of the sorted-unique patterns.
    """
    matrix = np.asarray(rows)
    if matrix.ndim != 2:
        raise ValidationError(f"rows must be 2-D, got shape {matrix.shape}")
    if matrix.shape[0] == 0:
        return []
    _, inverse = np.unique(matrix, axis=0, return_inverse=True)
    order = np.argsort(inverse, kind="stable")
    boundaries = np.flatnonzero(np.diff(inverse[order])) + 1
    return np.split(order, boundaries)


def mask_row_groups(mask_rows: np.ndarray) -> list[tuple[np.ndarray, np.ndarray]]:
    """Group rows of a boolean matrix by identical pattern.

    The grouping step behind mask-aware batched placement: hosts that
    observe the same reference subset (the common case — an outage
    drops the *same* landmarks for many hosts, Figure 7) share one
    design sub-matrix, so their solves collapse into one multi-RHS
    factorization per pattern.

    Args:
        mask_rows: ``(n, k)`` boolean matrix, one observation row per
            host.

    Returns:
        one ``(member_indices, observed_column_indices)`` pair per
        distinct pattern, where ``member_indices`` are the row numbers
        sharing the pattern and ``observed_column_indices`` the True
        columns of that pattern.
    """
    mask = np.asarray(mask_rows, dtype=bool)
    return [
        (members, np.flatnonzero(mask[members[0]]))
        for members in row_pattern_groups(mask)
    ]


def solve_least_squares(
    basis: object,
    targets: object,
    ridge: float = 0.0,
    strict: bool = False,
) -> np.ndarray:
    """Solve ``min_u ||basis @ u - targets||^2`` for ``u``.

    Args:
        basis: ``(k, d)`` matrix whose rows are reference vectors (the
            ``Y_i`` of Eq. 11 or the ``X_i`` of Eq. 12).
        targets: length-``k`` vector of measured distances.
        ridge: optional Tikhonov coefficient ``λ >= 0``; the solve
            becomes ``(B.T B + λ I)^{-1} B.T t``. Zero reproduces the
            paper's unregularized closed form exactly.
        strict: when True, raise :class:`SingularSystemError` instead of
            falling back to the minimum-norm ``lstsq`` solution if the
            system is underdetermined (``k < d`` or rank-deficient).

    Returns:
        the length-``d`` solution vector.
    """
    basis_matrix = as_matrix(basis, name="basis")
    target_vector = as_vector(targets, name="targets")
    count, dimension = basis_matrix.shape
    if target_vector.shape[0] != count:
        raise ValidationError(
            f"targets has length {target_vector.shape[0]}, expected {count}"
        )
    if ridge < 0:
        raise ValidationError(f"ridge must be >= 0, got {ridge}")

    if strict and count < dimension:
        raise SingularSystemError(
            f"need at least d={dimension} reference measurements, got k={count} "
            "(paper Section 5.2 requires k >= d)"
        )

    if ridge > 0.0:
        gram = basis_matrix.T @ basis_matrix + ridge * np.eye(dimension)
        rhs = basis_matrix.T @ target_vector
        return np.linalg.solve(gram, rhs)

    solution, _residuals, rank, _sv = np.linalg.lstsq(basis_matrix, target_vector, rcond=None)
    if strict and rank < dimension:
        raise SingularSystemError(
            f"reference system is rank-deficient (rank {rank} < d={dimension})"
        )
    return solution


def solve_batched_least_squares(
    basis: object,
    target_rows: object,
    ridge: float = 0.0,
    strict: bool = False,
) -> np.ndarray:
    """Solve many least-squares problems sharing one ``basis``.

    Args:
        basis: ``(k, d)`` shared reference matrix.
        target_rows: ``(n, k)`` matrix; row ``i`` is the measurement
            vector of host ``i``.
        ridge: Tikhonov coefficient shared by all solves.
        strict: as in :func:`solve_least_squares`.

    Returns:
        ``(n, d)`` matrix whose row ``i`` solves host ``i``'s problem.

    This is the vectorized form of placing ``n`` ordinary hosts against
    the same landmark set: one factorization of the shared Gram matrix
    amortizes over every host, which is what makes IDES placement run in
    milliseconds even for the P2PSim-scale data set.
    """
    basis_matrix = as_matrix(basis, name="basis")
    rows = as_matrix(target_rows, name="target_rows")
    count, dimension = basis_matrix.shape
    if rows.shape[1] != count:
        raise ValidationError(
            f"target_rows has {rows.shape[1]} columns, expected {count}"
        )
    if ridge < 0:
        raise ValidationError(f"ridge must be >= 0, got {ridge}")
    if strict and count < dimension:
        raise SingularSystemError(
            f"need at least d={dimension} reference measurements, got k={count}"
        )

    if ridge > 0.0:
        gram = basis_matrix.T @ basis_matrix + ridge * np.eye(dimension)
        return np.linalg.solve(gram, basis_matrix.T @ rows.T).T

    solutions, _residuals, rank, _sv = np.linalg.lstsq(basis_matrix, rows.T, rcond=None)
    if strict and rank < dimension:
        raise SingularSystemError(
            f"reference system is rank-deficient (rank {rank} < d={dimension})"
        )
    return solutions.T


def solve_weighted_batched_least_squares(
    basis: object,
    target_rows: object,
    weight_rows: object,
    ridge: float = 0.0,
) -> np.ndarray:
    """Solve per-row *weighted* least squares sharing one basis.

    Row ``h`` solves ``min_u sum_i w[h, i] * (t[h, i] - u . basis[i])^2``.
    Because the weights differ per host, the Gram matrix cannot be
    shared; instead all ``n`` small ``d x d`` normal-equation systems
    are assembled with one einsum and solved batched.

    This is the engine behind IDES's relative-error host placement
    extension: weighting each landmark measurement by ``1 / d^2`` turns
    the absolute squared-error solve of Eq. 13 into an approximate
    relative squared-error solve — aligning the optimization with the
    paper's Eq. 10 evaluation metric.

    Args:
        basis: ``(k, d)`` shared reference matrix.
        target_rows: ``(n, k)`` per-host measurement rows.
        weight_rows: ``(n, k)`` non-negative weights; zero drops a
            measurement from that host's solve.
        ridge: Tikhonov coefficient added to every normal matrix. A
            small positive value also regularizes hosts whose weighted
            system is near-singular.

    Returns:
        ``(n, d)`` solutions.
    """
    basis_matrix = as_matrix(basis, name="basis")
    rows = as_matrix(target_rows, name="target_rows")
    weights = as_matrix(weight_rows, name="weight_rows")
    if rows.shape != weights.shape:
        raise ValidationError(
            f"target_rows {rows.shape} and weight_rows {weights.shape} disagree"
        )
    k, dimension = basis_matrix.shape
    if rows.shape[1] != k:
        raise ValidationError(f"target_rows has {rows.shape[1]} columns, expected {k}")
    if (weights < 0).any():
        raise ValidationError("weights must be non-negative")
    if ridge < 0:
        raise ValidationError(f"ridge must be >= 0, got {ridge}")

    # Normal equations per host: A_h = sum_i w_hi * y_i y_i^T,
    # b_h = sum_i w_hi t_hi * y_i.
    normal = np.einsum("hi,ij,ik->hjk", weights, basis_matrix, basis_matrix)
    rhs = np.einsum("hi,hi,ij->hj", weights, rows, basis_matrix)
    if ridge > 0.0:
        normal = normal + ridge * np.eye(dimension)[None, :, :]

    try:
        return np.linalg.solve(normal, rhs[..., None])[..., 0]
    except np.linalg.LinAlgError:
        # Some host's weighted system is singular: fall back to
        # minimum-norm solves. Hosts sharing a weight pattern share a
        # normal matrix, so each pattern is one multi-RHS lstsq rather
        # than a per-host Python loop (the Figure 7 workload drops the
        # same landmarks for many hosts at once).
        solutions = np.empty((rows.shape[0], dimension))
        for members in row_pattern_groups(weights):
            solved, *_ = np.linalg.lstsq(
                normal[members[0]], rhs[members].T, rcond=None
            )
            solutions[members] = solved.T
        return solutions


def gram_condition_number(basis: object) -> float:
    """Condition number of ``basis.T @ basis``.

    A diagnostic for the host solve: when an ordinary host observes too
    few landmarks (close to ``d``), the Gram matrix becomes poorly
    conditioned and predictions degrade — the effect behind Figure 7.
    """
    basis_matrix = as_matrix(basis, name="basis")
    singular_values = np.linalg.svd(basis_matrix, compute_uv=False)
    smallest = singular_values.min()
    largest = singular_values.max()
    # Relative threshold matching numpy's default rank tolerance.
    cutoff = largest * max(basis_matrix.shape) * np.finfo(float).eps
    if smallest <= cutoff:
        return float("inf")
    return float((largest / smallest) ** 2)
