"""Non-negative least squares by the Lawson-Hanson active-set method.

Section 5.1 of the paper notes that the ordinary-host solves (Eqs. 11-12)
"can be solved with nonnegativity constraints, but the solution is
somewhat more complicated", and that constrained and unconstrained
solutions gave indistinguishable accuracy. This module provides that
more complicated solve — implemented from scratch so the comparison in
the ``ablate-nnls`` experiment exercises our own code — following
Lawson & Hanson, *Solving Least Squares Problems* (1974), Chapter 23.

Two entry points share the algorithm:

* :func:`nonnegative_least_squares` — the single right-hand-side
  reference solver, one host at a time.
* :func:`nonnegative_least_squares_batched` — the multi-RHS production
  kernel behind batched host placement. All hosts iterate in lockstep;
  each outer iteration groups hosts whose (observation mask, passive
  set) coincide and solves every group as one multi-RHS ``lstsq``, so
  one factorization of the shared sub-design serves the whole group.
  The iterates match the single-RHS solver host for host (same entering
  rule, same backtracking, same per-host tolerance), which the property
  suite in ``tests/linalg/test_nnls_batched.py`` pins down.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_mask, as_matrix, as_vector
from ..exceptions import ConvergenceError, ValidationError
from .least_squares import row_pattern_groups

__all__ = ["nonnegative_least_squares", "nonnegative_least_squares_batched"]


def nonnegative_least_squares(
    basis: object,
    targets: object,
    max_iter: int | None = None,
    tol: float | None = None,
) -> np.ndarray:
    """Solve ``min_u ||basis @ u - targets||^2`` subject to ``u >= 0``.

    Args:
        basis: ``(k, d)`` design matrix.
        targets: length-``k`` right-hand side.
        max_iter: iteration budget; defaults to ``3 * d`` as recommended
            by Lawson & Hanson.
        tol: dual-feasibility tolerance; defaults to
            ``10 * eps * ||basis||_1 * max(k, d)`` (the classic choice).

    Returns:
        the non-negative length-``d`` solution.

    Raises:
        ConvergenceError: if the active-set loop exceeds its budget
            (practically impossible for well-posed inputs).

    The solution satisfies the KKT conditions: ``u >= 0``, the gradient
    ``basis.T @ (basis @ u - targets)`` is ``>= -tol`` componentwise, and
    complementary slackness holds on the active set. Tests verify all
    three against :func:`scipy.optimize.nnls`.
    """
    design = as_matrix(basis, name="basis")
    rhs = as_vector(targets, name="targets")
    rows, cols = design.shape
    if rhs.shape[0] != rows:
        raise ValidationError(f"targets has length {rhs.shape[0]}, expected {rows}")

    if max_iter is None:
        max_iter = max(3 * cols, 30)
    if tol is None:
        tol = 10.0 * np.finfo(float).eps * np.abs(design).sum(axis=0).max() * max(rows, cols)

    solution = np.zeros(cols)
    # P: passive (free) set; all variables start active (clamped at zero).
    passive = np.zeros(cols, dtype=bool)
    gradient = design.T @ (rhs - design @ solution)

    outer_iterations = 0
    while True:
        candidates = ~passive & (gradient > tol)
        if not candidates.any():
            break
        outer_iterations += 1
        if outer_iterations > max_iter:
            raise ConvergenceError(
                f"NNLS active-set loop exceeded {max_iter} iterations"
            )

        # Move the most violating variable into the passive set.
        entering = int(np.argmax(np.where(candidates, gradient, -np.inf)))
        passive[entering] = True

        # Inner loop: solve the unconstrained problem on the passive set,
        # backtracking if any passive variable would go negative.
        previous = solution.copy()
        while True:
            free = np.flatnonzero(passive)
            trial = np.zeros(cols)
            trial[free], *_ = np.linalg.lstsq(design[:, free], rhs, rcond=None)

            negative = free[trial[free] <= 0.0]
            if negative.size == 0:
                # Coefficients below the dual-noise tolerance are
                # statistically zero; clamping them here (not just on
                # the backtracking path) prevents a period-2 cycle
                # where a ~eps-sized coefficient is kept by a feasible
                # exit and stripped again by the next backtrack.
                trial[trial < tol] = 0.0
                solution = trial
                passive &= solution > 0.0
                break

            # Step from `solution` toward `trial` until the first passive
            # variable hits zero, then clamp it back to the active set.
            movement = solution[negative] - trial[negative]
            with np.errstate(divide="ignore", invalid="ignore"):
                ratios = np.where(movement != 0.0, solution[negative] / movement, np.inf)
            alpha = float(np.min(ratios))
            if not np.isfinite(alpha):
                # Degenerate backtrack: the offending variable sits at
                # exactly zero with zero movement (no finite step
                # exists). A zero step lets the clamp below retire it
                # and the stall guard recognize convergence — instead
                # of an infinite step poisoning the iterate with NaNs.
                alpha = 0.0
            solution = solution + alpha * (trial - solution)
            solution[solution < tol] = 0.0
            passive &= solution > 0.0

        # Anti-cycling guard (mirrors the batched kernel): an outer
        # iteration that left the solution bitwise unchanged — the
        # entering variable immediately backtracked to zero because the
        # dual gradient is hovering at the rounding-noise floor — can
        # only repeat itself; the solution is numerically optimal.
        if np.array_equal(solution, previous):
            break

        gradient = design.T @ (rhs - design @ solution)

    return solution


def _pattern_groups(
    mask_rows: np.ndarray, passive_rows: np.ndarray, hosts: np.ndarray
) -> list[np.ndarray]:
    """Positions (into ``hosts``) grouped by identical (mask, passive) rows.

    The group key is the packed bit pattern of both boolean rows, so
    hosts that observe the same references *and* currently free the
    same variables land in one group and share one factorization.
    """
    packed = np.packbits(
        np.concatenate([mask_rows[hosts], passive_rows[hosts]], axis=1), axis=1
    )
    return row_pattern_groups(packed)


def _solve_passive_sets(
    design: np.ndarray,
    rhs: np.ndarray,
    observed: np.ndarray,
    passive: np.ndarray,
    normal: np.ndarray,
    beta: np.ndarray,
    pending: np.ndarray,
) -> np.ndarray:
    """Unconstrained solves restricted to each pending host's passive set.

    Hosts are stacked by free-set size and each size class is one
    batched ``np.linalg.solve`` over the hosts' precomputed ``d x d``
    normal subsystems — so the per-iteration cost no longer scales with
    the number of distinct passive sets. A size class containing a
    singular subsystem falls back to grouped minimum-norm ``lstsq`` on
    the masked design itself, matching the single-RHS solver's
    rank-deficient behavior exactly.
    """
    count = pending.size
    cols = design.shape[1]
    trial = np.zeros((count, cols))
    free_counts = passive[pending].sum(axis=1)
    for size in np.unique(free_counts):
        if size == 0:
            continue  # no free variables: the trial stays at zero
        positions = np.flatnonzero(free_counts == size)
        hosts = pending[positions]
        _, free_idx = np.nonzero(passive[hosts])
        free_idx = free_idx.reshape(hosts.size, size)
        subsystems = normal[
            hosts[:, None, None], free_idx[:, :, None], free_idx[:, None, :]
        ]
        sub_rhs = beta[hosts[:, None], free_idx]
        try:
            solved = np.linalg.solve(subsystems, sub_rhs[..., None])[..., 0]
            # A singular subsystem that LAPACK's pivoting does not
            # flag (rank deficiency hidden by rounding) yields garbage
            # that would break Lawson-Hanson's descent guarantee —
            # verify each host's normal equations actually hold.
            products = np.einsum("hij,hj->hi", subsystems, solved)
            scale = np.maximum(np.abs(products), np.abs(sub_rhs)).max(axis=1)
            defective = ~np.isfinite(solved).all(axis=1)
            defective |= np.abs(products - sub_rhs).max(axis=1) > 1e-6 * (
                scale + 1e-30
            )
        except np.linalg.LinAlgError:
            solved = np.empty((hosts.size, int(size)))
            defective = np.ones(hosts.size, dtype=bool)
        if defective.any():
            # Minimum-norm solves on the masked design itself — the
            # single-RHS solver's exact rank-deficient behavior —
            # grouped by (mask, passive) pattern.
            bad_positions = np.flatnonzero(defective)
            bad_hosts = hosts[bad_positions]
            for group in _pattern_groups(observed, passive, bad_hosts):
                exemplar = bad_hosts[group[0]]
                observed_idx = np.flatnonzero(observed[exemplar])
                free = np.flatnonzero(passive[exemplar])
                sub_design = design[np.ix_(observed_idx, free)]
                group_rhs = rhs[np.ix_(bad_hosts[group], observed_idx)]
                answer, *_ = np.linalg.lstsq(sub_design, group_rhs.T, rcond=None)
                solved[bad_positions[group]] = answer.T
        trial[positions[:, None], free_idx] = solved
    return trial


def nonnegative_least_squares_batched(
    basis: object,
    targets: object,
    mask: object | None = None,
    max_iter: int | None = None,
    tol: float | None = None,
) -> np.ndarray:
    """Solve ``min_U ||(basis @ u_h - t_h)[mask_h]||^2 s.t. u_h >= 0`` for all hosts.

    The batched Lawson-Hanson kernel: every host runs the same
    active-set iteration as :func:`nonnegative_least_squares`, but the
    hosts advance together and the inner unconstrained solves are
    grouped — hosts sharing an observation mask and a passive set are
    solved as one multi-RHS ``lstsq`` against the shared sub-design.
    In the common placement workload (many hosts dropping the *same*
    landmarks, Figure 7) a handful of factorizations serve the whole
    batch.

    Args:
        basis: ``(k, d)`` shared design matrix.
        targets: ``(n, k)`` right-hand sides, one row per host. Entries
            excluded by ``mask`` may be NaN.
        mask: optional ``(n, k)`` boolean observation matrix; a False
            entry drops that measurement from its host's solve.
        max_iter: per-host outer-iteration budget; defaults to
            ``max(3 * d, 30)`` like the single-RHS solver.
        tol: dual-feasibility tolerance; defaults to the single-RHS
            solver's per-host value ``10 * eps * ||basis[mask_h]||_1 *
            max(k_h, d)``, so each host converges exactly when its
            single-RHS solve would.

    Returns:
        ``(n, d)`` non-negative solutions, row per host.

    Raises:
        ConvergenceError: if any host's active-set loop exceeds the
            budget (practically impossible for well-posed inputs).
    """
    design = as_matrix(basis, name="basis")
    rows = np.asarray(targets, dtype=float)
    if rows.ndim != 2:
        raise ValidationError(f"targets must be 2-D, got shape {rows.shape}")
    k, cols = design.shape
    n_hosts = rows.shape[0]
    if rows.shape[1] != k:
        raise ValidationError(f"targets has {rows.shape[1]} columns, expected {k}")
    if mask is None:
        observed = np.ones((n_hosts, k), dtype=bool)
    else:
        observed = as_mask(mask, rows.shape)

    if max_iter is None:
        max_iter = max(3 * cols, 30)
    if tol is None:
        # Per-host tolerance of the reference solver applied to the
        # host's masked sub-design: 10 eps ||A_h||_1 max(k_h, d).
        column_sums = observed.astype(float) @ np.abs(design)
        observed_counts = observed.sum(axis=1)
        tolerances = (
            10.0
            * np.finfo(float).eps
            * column_sums.max(axis=1, initial=0.0)
            * np.maximum(observed_counts, cols)
        )
    else:
        tolerances = np.full(n_hosts, float(tol))

    rhs = np.where(observed, rows, 0.0)
    solution = np.zeros((n_hosts, cols))
    passive = np.zeros((n_hosts, cols), dtype=bool)
    converging = np.ones(n_hosts, dtype=bool)
    outer_iterations = np.zeros(n_hosts, dtype=np.intp)
    # Per-host normal equations, assembled once: the inner loop solves
    # tiny d x d subsystems of these, stacked by free-set size, instead
    # of refactoring the k x d design per host per iteration.
    normal = np.einsum("hk,ki,kj->hij", observed.astype(float), design, design)
    beta = rhs @ design

    while converging.any():
        # Dual feasibility, computed only over the hosts still
        # iterating: the masked residual and its gradient come out of
        # two dense matmuls on the converging slice — stragglers don't
        # re-pay for the whole batch.
        active = np.flatnonzero(converging)
        residual = np.where(
            observed[active], rhs[active] - solution[active] @ design.T, 0.0
        )
        gradient = residual @ design
        candidates = ~passive[active] & (
            gradient > tolerances[active, None]
        )
        has_candidate = candidates.any(axis=1)
        converging[active[~has_candidate]] = False
        active_rows = active[has_candidate]
        if not active_rows.size:
            break
        outer_iterations[active_rows] += 1
        if (outer_iterations[active_rows] > max_iter).any():
            worst = int(active_rows[np.argmax(outer_iterations[active_rows])])
            raise ConvergenceError(
                f"NNLS active-set loop exceeded {max_iter} iterations "
                f"for host {worst}"
            )
        entering = np.argmax(
            np.where(
                candidates[has_candidate], gradient[has_candidate], -np.inf
            ),
            axis=1,
        )
        passive[active_rows, entering] = True

        # Inner loop: unconstrained solves on the passive sets, with
        # backtracking. Hosts leave as soon as their trial is feasible.
        pending = active_rows
        previous = solution[active_rows].copy()
        while pending.size:
            trial = _solve_passive_sets(
                design, rhs, observed, passive, normal, beta, pending
            )

            negative = passive[pending] & (trial <= 0.0)
            feasible = ~negative.any(axis=1)
            if feasible.any():
                # Same sub-tolerance clamp as the single-RHS solver's
                # feasible exit (see there): prevents period-2 cycling
                # on ~eps-sized coefficients.
                finished = pending[feasible]
                cleaned = trial[feasible]
                cleaned[cleaned < tolerances[finished, None]] = 0.0
                solution[finished] = cleaned
                passive[finished] &= cleaned > 0.0
            pending = pending[~feasible]
            if not pending.size:
                break
            # Step toward the trial until the first passive variable
            # hits zero, then clamp it back to the active set.
            trial = trial[~feasible]
            negative = negative[~feasible]
            current = solution[pending]
            movement = np.where(negative, current - trial, 0.0)
            with np.errstate(divide="ignore", invalid="ignore"):
                ratios = np.where(
                    negative & (movement != 0.0), current / movement, np.inf
                )
            alpha = ratios.min(axis=1)
            # Degenerate backtrack (see the single-RHS solver): no
            # finite step exists, so step zero and let the clamp +
            # stall guard retire the offending variable.
            alpha = np.where(np.isfinite(alpha), alpha, 0.0)
            stepped = current + alpha[:, None] * (trial - current)
            stepped[stepped < tolerances[pending, None]] = 0.0
            solution[pending] = stepped
            passive[pending] &= stepped > 0.0

        # Anti-cycling guard: an outer iteration that left a host's
        # solution bitwise unchanged (the entering variable immediately
        # backtracked to zero — a dual gradient hovering at the noise
        # floor) can only repeat itself; that host is numerically
        # converged.
        stalled = (solution[active_rows] == previous).all(axis=1)
        if stalled.any():
            converging[active_rows[stalled]] = False

    return solution
