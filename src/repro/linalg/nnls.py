"""Non-negative least squares by the Lawson-Hanson active-set method.

Section 5.1 of the paper notes that the ordinary-host solves (Eqs. 11-12)
"can be solved with nonnegativity constraints, but the solution is
somewhat more complicated", and that constrained and unconstrained
solutions gave indistinguishable accuracy. This module provides that
more complicated solve — implemented from scratch so the comparison in
the ``ablate-nnls`` experiment exercises our own code — following
Lawson & Hanson, *Solving Least Squares Problems* (1974), Chapter 23.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_matrix, as_vector
from ..exceptions import ConvergenceError, ValidationError

__all__ = ["nonnegative_least_squares"]


def nonnegative_least_squares(
    basis: object,
    targets: object,
    max_iter: int | None = None,
    tol: float | None = None,
) -> np.ndarray:
    """Solve ``min_u ||basis @ u - targets||^2`` subject to ``u >= 0``.

    Args:
        basis: ``(k, d)`` design matrix.
        targets: length-``k`` right-hand side.
        max_iter: iteration budget; defaults to ``3 * d`` as recommended
            by Lawson & Hanson.
        tol: dual-feasibility tolerance; defaults to
            ``10 * eps * ||basis||_1 * max(k, d)`` (the classic choice).

    Returns:
        the non-negative length-``d`` solution.

    Raises:
        ConvergenceError: if the active-set loop exceeds its budget
            (practically impossible for well-posed inputs).

    The solution satisfies the KKT conditions: ``u >= 0``, the gradient
    ``basis.T @ (basis @ u - targets)`` is ``>= -tol`` componentwise, and
    complementary slackness holds on the active set. Tests verify all
    three against :func:`scipy.optimize.nnls`.
    """
    design = as_matrix(basis, name="basis")
    rhs = as_vector(targets, name="targets")
    rows, cols = design.shape
    if rhs.shape[0] != rows:
        raise ValidationError(f"targets has length {rhs.shape[0]}, expected {rows}")

    if max_iter is None:
        max_iter = max(3 * cols, 30)
    if tol is None:
        tol = 10.0 * np.finfo(float).eps * np.abs(design).sum(axis=0).max() * max(rows, cols)

    solution = np.zeros(cols)
    # P: passive (free) set; all variables start active (clamped at zero).
    passive = np.zeros(cols, dtype=bool)
    gradient = design.T @ (rhs - design @ solution)

    outer_iterations = 0
    while True:
        candidates = ~passive & (gradient > tol)
        if not candidates.any():
            break
        outer_iterations += 1
        if outer_iterations > max_iter:
            raise ConvergenceError(
                f"NNLS active-set loop exceeded {max_iter} iterations"
            )

        # Move the most violating variable into the passive set.
        entering = int(np.argmax(np.where(candidates, gradient, -np.inf)))
        passive[entering] = True

        # Inner loop: solve the unconstrained problem on the passive set,
        # backtracking if any passive variable would go negative.
        while True:
            free = np.flatnonzero(passive)
            trial = np.zeros(cols)
            trial[free], *_ = np.linalg.lstsq(design[:, free], rhs, rcond=None)

            negative = free[trial[free] <= 0.0]
            if negative.size == 0:
                solution = trial
                break

            # Step from `solution` toward `trial` until the first passive
            # variable hits zero, then clamp it back to the active set.
            movement = solution[negative] - trial[negative]
            with np.errstate(divide="ignore", invalid="ignore"):
                ratios = np.where(movement != 0.0, solution[negative] / movement, np.inf)
            alpha = float(np.min(ratios))
            solution = solution + alpha * (trial - solution)
            solution[solution < tol] = 0.0
            passive &= solution > 0.0

        gradient = design.T @ (rhs - design @ solution)

    return solution
