"""Non-negative matrix factorization by Lee-Seung multiplicative updates.

Implements Section 4.2 of the paper: minimize the squared error
``sum_ij (D_ij - (X @ Y.T)_ij)^2`` subject to ``X >= 0`` and ``Y >= 0``
with the multiplicative update rules

.. math::

    X \\leftarrow X \\odot (D Y) \\oslash (X Y^T Y), \\qquad
    Y \\leftarrow Y \\odot (D^T X) \\oslash (Y X^T X)

and the *masked* variant (Eqs. 8-9) that skips missing entries marked
by a binary observation matrix ``M``. Both variants decrease the
objective monotonically (Lee & Seung, NIPS 2000); the paper reports
that two hundred iterations suffice in practice, which is the default
budget here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import (
    as_distance_matrix,
    as_mask,
    as_rng,
    check_dimension,
    check_positive,
)
from ..exceptions import ValidationError

__all__ = ["NMFResult", "nmf_factorize", "masked_nmf_factorize", "nmf_objective"]

#: Denominator guard: keeps multiplicative updates finite when a factor
#: column collapses to zero. Small relative to any realistic RTT scale.
_EPSILON = 1e-12


@dataclass(frozen=True)
class NMFResult:
    """Outcome of an NMF run.

    Attributes:
        outgoing: non-negative ``(N, d)`` factor ``X``.
        incoming: non-negative ``(N', d)`` factor ``Y``.
        objective: final value of the (masked) squared-error objective.
        iterations: number of update sweeps actually performed.
        converged: whether the relative objective improvement fell below
            the tolerance before the iteration budget ran out.
        history: objective value after every sweep (length ``iterations``).
    """

    outgoing: np.ndarray
    incoming: np.ndarray
    objective: float
    iterations: int
    converged: bool
    history: np.ndarray = field(repr=False)


def nmf_objective(
    matrix: np.ndarray,
    outgoing: np.ndarray,
    incoming: np.ndarray,
    mask: np.ndarray | None = None,
) -> float:
    """Squared reconstruction error, restricted to ``mask`` if given."""
    residual = matrix - outgoing @ incoming.T
    if mask is None:
        return float(np.sum(residual * residual))
    masked = residual[mask]
    return float(np.sum(masked * masked))


def _initial_factors(
    shape: tuple[int, int],
    dimension: int,
    scale: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Random non-negative starting factors sized so ``X @ Y.T ~ scale``.

    Uniform draws in ``(0, 1]`` scaled so the initial product matches the
    magnitude of the data, which keeps early multiplicative steps from
    over- or under-shooting by orders of magnitude.
    """
    rows, cols = shape
    magnitude = np.sqrt(max(scale, _EPSILON) / max(dimension, 1))
    outgoing = magnitude * (rng.random((rows, dimension)) + _EPSILON)
    incoming = magnitude * (rng.random((cols, dimension)) + _EPSILON)
    return outgoing, incoming


def nmf_factorize(
    matrix: object,
    dimension: int,
    seed: int | np.random.Generator | None = 0,
    max_iter: int = 200,
    tol: float = 1e-7,
) -> NMFResult:
    """Factor a complete non-negative matrix with Lee-Seung updates.

    Args:
        matrix: ``(N, N')`` non-negative distance matrix with no missing
            entries (use :func:`masked_nmf_factorize` otherwise).
        dimension: inner dimension ``d`` of the factors.
        seed: seed or generator for the random initialization.
        max_iter: update-sweep budget; the paper's default is 200.
        tol: relative objective-improvement threshold for early stop.

    Returns:
        :class:`NMFResult`. Factors are guaranteed non-negative and the
        objective history is monotonically non-increasing (up to floating
        point noise); tests assert both invariants.
    """
    distances = as_distance_matrix(matrix, name="matrix")
    rank = check_dimension(dimension, limit=min(distances.shape))
    check_positive(max_iter, name="max_iter")
    rng = as_rng(seed)

    mean_value = float(distances.mean())
    outgoing, incoming = _initial_factors(distances.shape, rank, mean_value, rng)

    history = np.empty(max_iter)
    converged = False
    previous = nmf_objective(distances, outgoing, incoming)
    sweeps = 0
    # Preallocated sweep buffers: every multiplicative update writes
    # into these in place, so the 200-sweep loop allocates nothing.
    gram = np.empty((rank, rank))
    numer_out = np.empty_like(outgoing)
    denom_out = np.empty_like(outgoing)
    numer_in = np.empty_like(incoming)
    denom_in = np.empty_like(incoming)
    residual = np.empty_like(distances)
    for sweeps in range(1, max_iter + 1):
        # X <- X * (D Y) / (X Y^T Y)
        np.matmul(incoming.T, incoming, out=gram)
        np.matmul(distances, incoming, out=numer_out)
        np.matmul(outgoing, gram, out=denom_out)
        denom_out += _EPSILON
        np.divide(numer_out, denom_out, out=numer_out)
        outgoing *= numer_out
        # Y <- Y * (D^T X) / (Y X^T X)
        np.matmul(outgoing.T, outgoing, out=gram)
        np.matmul(distances.T, outgoing, out=numer_in)
        np.matmul(incoming, gram, out=denom_in)
        denom_in += _EPSILON
        np.divide(numer_in, denom_in, out=numer_in)
        incoming *= numer_in

        np.matmul(outgoing, incoming.T, out=residual)
        np.subtract(distances, residual, out=residual)
        np.multiply(residual, residual, out=residual)
        current = float(residual.sum())
        history[sweeps - 1] = current
        if previous > 0 and (previous - current) <= tol * previous:
            converged = True
            break
        previous = current

    return NMFResult(
        outgoing=outgoing,
        incoming=incoming,
        objective=history[sweeps - 1] if sweeps else previous,
        iterations=sweeps,
        converged=converged,
        history=history[:sweeps].copy(),
    )


def masked_nmf_factorize(
    matrix: object,
    mask: object,
    dimension: int,
    seed: int | np.random.Generator | None = 0,
    max_iter: int = 200,
    tol: float = 1e-7,
) -> NMFResult:
    """Factor a matrix with missing entries (paper Eqs. 8-9).

    Args:
        matrix: ``(N, N')`` matrix; entries where ``mask`` is False may
            be NaN and are ignored by the objective and the updates.
        mask: boolean ``(N, N')`` observation matrix ``M`` (True = known).
        dimension: inner dimension ``d``.
        seed: seed or generator for the random initialization.
        max_iter: update-sweep budget.
        tol: relative objective-improvement threshold for early stop.

    The update rules are

    ``X_ia <- X_ia * sum_k(D_ik M_ik Y_ka) / sum_k((XY^T)_ik M_ik Y_ka)``

    and symmetrically for ``Y``, implemented by zeroing unobserved
    entries of ``D`` and of the current reconstruction.
    """
    distances = as_distance_matrix(matrix, name="matrix", allow_missing=True)
    observed = as_mask(mask, distances.shape)
    if not observed.any():
        raise ValidationError("mask marks every entry as missing")
    nan_but_observed = np.isnan(distances) & observed
    if nan_but_observed.any():
        raise ValidationError(
            f"{int(nan_but_observed.sum())} entries are marked observed but are NaN"
        )
    rank = check_dimension(dimension, limit=min(distances.shape))
    check_positive(max_iter, name="max_iter")
    rng = as_rng(seed)

    # Zero-filled copy: unobserved entries contribute nothing once the
    # reconstruction is masked the same way.
    data = np.where(observed, distances, 0.0)
    weight = observed.astype(float)

    mean_value = float(data.sum() / observed.sum())
    outgoing, incoming = _initial_factors(distances.shape, rank, mean_value, rng)

    history = np.empty(max_iter)
    converged = False
    previous = nmf_objective(data, outgoing, incoming, observed)
    sweeps = 0
    # Preallocated sweep buffers (the masked sweep's reconstruction is
    # the big one — (N, N') — and used to be reallocated twice per
    # sweep); all updates below run in place.
    reconstruction = np.empty_like(data)
    numer_out = np.empty_like(outgoing)
    denom_out = np.empty_like(outgoing)
    numer_in = np.empty_like(incoming)
    denom_in = np.empty_like(incoming)
    for sweeps in range(1, max_iter + 1):
        np.matmul(outgoing, incoming.T, out=reconstruction)
        reconstruction *= weight
        np.matmul(data, incoming, out=numer_out)
        np.matmul(reconstruction, incoming, out=denom_out)
        denom_out += _EPSILON
        np.divide(numer_out, denom_out, out=numer_out)
        outgoing *= numer_out

        np.matmul(outgoing, incoming.T, out=reconstruction)
        reconstruction *= weight
        np.matmul(data.T, outgoing, out=numer_in)
        np.matmul(reconstruction.T, outgoing, out=denom_in)
        denom_in += _EPSILON
        np.divide(numer_in, denom_in, out=numer_in)
        incoming *= numer_in

        np.matmul(outgoing, incoming.T, out=reconstruction)
        np.subtract(data, reconstruction, out=reconstruction)
        reconstruction *= weight
        np.multiply(reconstruction, reconstruction, out=reconstruction)
        current = float(reconstruction.sum())
        history[sweeps - 1] = current
        if previous > 0 and (previous - current) <= tol * previous:
            converged = True
            break
        previous = current

    return NMFResult(
        outgoing=outgoing,
        incoming=incoming,
        objective=history[sweeps - 1] if sweeps else previous,
        iterations=sweeps,
        converged=converged,
        history=history[:sweeps].copy(),
    )
