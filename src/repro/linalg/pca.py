"""Principal component analysis implemented from scratch.

PCA is the dimensionality-reduction step of the Lipschitz-embedding
baselines the paper compares against (Virtual Landmarks, Tang & Crovella
IMC 2003; ICS, Lim et al. IMC 2003): hosts are first embedded in
``R^N`` by their distance vectors, then projected onto the ``d``
directions of maximum variance.

Implemented via eigendecomposition of the covariance matrix (rather
than delegating to a library) so the baseline is self-contained and the
relationship to SVD discussed in Section 4.1 of the paper is explicit
in code.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_matrix, check_dimension
from ..exceptions import NotFittedError

__all__ = ["PCA"]


class PCA:
    """Principal component analysis by covariance eigendecomposition.

    Args:
        dimension: number of components ``d`` to retain.

    Attributes (available after :meth:`fit`):
        mean: per-feature mean of the training data, shape ``(p,)``.
        components: ``(d, p)`` orthonormal rows, ordered by decreasing
            explained variance.
        explained_variance: eigenvalues of the covariance matrix for the
            retained components, shape ``(d,)``.
    """

    def __init__(self, dimension: int):
        self.dimension = check_dimension(dimension)
        self.mean: np.ndarray | None = None
        self.components: np.ndarray | None = None
        self.explained_variance: np.ndarray | None = None

    def fit(self, data: object) -> "PCA":
        """Learn the principal subspace of ``data`` (rows = samples)."""
        samples = as_matrix(data, name="data")
        count, features = samples.shape
        check_dimension(self.dimension, limit=features, name="dimension")

        self.mean = samples.mean(axis=0)
        centered = samples - self.mean
        covariance = (centered.T @ centered) / max(count - 1, 1)

        eigenvalues, eigenvectors = np.linalg.eigh(covariance)
        order = np.argsort(eigenvalues)[::-1][: self.dimension]
        self.components = eigenvectors[:, order].T
        self.explained_variance = np.clip(eigenvalues[order], 0.0, None)
        return self

    def transform(self, data: object) -> np.ndarray:
        """Project rows of ``data`` onto the fitted principal subspace."""
        if self.components is None or self.mean is None:
            raise NotFittedError("PCA.transform called before fit")
        samples = as_matrix(data, name="data")
        if samples.shape[1] != self.mean.shape[0]:
            raise NotFittedError(
                f"data has {samples.shape[1]} features, PCA was fitted on "
                f"{self.mean.shape[0]}"
            )
        return (samples - self.mean) @ self.components.T

    def fit_transform(self, data: object) -> np.ndarray:
        """Equivalent to ``fit(data).transform(data)`` with one pass."""
        return self.fit(data).transform(data)

    def inverse_transform(self, projected: object) -> np.ndarray:
        """Map projected coordinates back into the original space."""
        if self.components is None or self.mean is None:
            raise NotFittedError("PCA.inverse_transform called before fit")
        coordinates = as_matrix(projected, name="projected")
        return coordinates @ self.components + self.mean

    def explained_variance_ratio(self) -> np.ndarray:
        """Fraction of total variance captured by each retained component."""
        if self.explained_variance is None:
            raise NotFittedError("PCA.explained_variance_ratio called before fit")
        total = self.explained_variance.sum()
        if total == 0.0:
            return np.zeros_like(self.explained_variance)
        return self.explained_variance / total
