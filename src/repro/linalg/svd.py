"""Truncated singular value decomposition for distance-matrix factorization.

This module implements the SVD factorization of Section 4.1 of the
paper: an ``N x N'`` distance matrix ``D`` is decomposed as
``D = U @ diag(S) @ V.T`` and the rank-``d`` factors are

.. math::

    X_{ij} = U_{ij} \\sqrt{S_{jj}}, \\qquad Y_{ij} = V_{ij} \\sqrt{S_{jj}}

for ``j = 1..d`` (Eqs. 5-6), so that ``X @ Y.T`` is the best rank-``d``
approximation of ``D`` in squared error (Eq. 7). Row ``X[i]`` is the
*outgoing* vector of host ``i`` and row ``Y[j]`` the *incoming* vector
of host ``j``.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from .._validation import as_distance_matrix, as_matrix, check_dimension

__all__ = [
    "SVDFactors",
    "truncated_svd_factors",
    "low_rank_approximation",
    "singular_spectrum",
]


class SVDFactors(NamedTuple):
    """Result of a truncated SVD factorization.

    Attributes:
        outgoing: ``(N, d)`` matrix ``X`` of outgoing vectors.
        incoming: ``(N', d)`` matrix ``Y`` of incoming vectors.
        singular_values: the ``d`` retained singular values, descending.
        residual: Frobenius norm of ``D - X @ Y.T``.
    """

    outgoing: np.ndarray
    incoming: np.ndarray
    singular_values: np.ndarray
    residual: float


def truncated_svd_factors(matrix: object, dimension: int) -> SVDFactors:
    """Factor ``matrix ~= X @ Y.T`` with rank ``dimension`` via SVD.

    Args:
        matrix: an ``(N, N')`` matrix of non-negative finite distances.
            Rectangular matrices are supported (paper footnote 3).
        dimension: the model dimension ``d``; must satisfy
            ``1 <= d <= min(N, N')``.

    Returns:
        :class:`SVDFactors` with the split-singular-value convention of
        Eqs. (5)-(6): both factors absorb ``sqrt(S)``.

    The factorization is exact (zero residual) whenever ``matrix`` has
    rank at most ``dimension``, which the paper demonstrates on the
    four-host topology of Figure 1.
    """
    distances = as_distance_matrix(matrix, name="matrix")
    max_rank = min(distances.shape)
    rank = check_dimension(dimension, limit=max_rank)

    left, values, right_t = np.linalg.svd(distances, full_matrices=False)
    scale = np.sqrt(values[:rank])
    outgoing = left[:, :rank] * scale
    incoming = right_t[:rank, :].T * scale
    residual = float(np.linalg.norm(distances - outgoing @ incoming.T))
    return SVDFactors(outgoing, incoming, values[:rank].copy(), residual)


def low_rank_approximation(matrix: object, dimension: int) -> np.ndarray:
    """Return the best rank-``dimension`` approximation of ``matrix``."""
    factors = truncated_svd_factors(matrix, dimension)
    return factors.outgoing @ factors.incoming.T


def singular_spectrum(matrix: object) -> np.ndarray:
    """Return all singular values of ``matrix`` in descending order.

    The spectrum is the paper's justification for low-rank modeling:
    distance matrices of clustered networks have a few dominant singular
    values (see the ``ablate-rank`` experiment).
    """
    values = np.linalg.svd(as_matrix(matrix, name="matrix"), compute_uv=False)
    return values
