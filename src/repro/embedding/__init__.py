"""Euclidean-embedding baselines the paper compares against.

Lipschitz+PCA reconstruction (Virtual Landmarks), the landmark-based
ICS system, GNP with from-scratch simplex downhill, and the
decentralized Vivaldi spring algorithm — all behind the shared
:class:`NetworkEmbedding` / :class:`LatencyPredictionSystem`
interfaces, so experiments swap systems freely.
"""

from .base import LatencyPredictionSystem, NetworkEmbedding, euclidean_pairwise
from .gnp import GNPSystem
from .ics import ICSSystem
from .lipschitz import LipschitzPCAEmbedding, fit_distance_scale
from .vivaldi import VivaldiSystem

__all__ = [
    "GNPSystem",
    "ICSSystem",
    "LatencyPredictionSystem",
    "LipschitzPCAEmbedding",
    "NetworkEmbedding",
    "VivaldiSystem",
    "euclidean_pairwise",
    "fit_distance_scale",
]
