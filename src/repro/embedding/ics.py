"""ICS: Internet Coordinate System (Lim, Hou & Choi, IMC 2003).

ICS is the landmark-based deployment of the Lipschitz+PCA idea: the
``m x m`` landmark matrix defines a PCA projection from "distance
profile" space to ``R^d``; an ordinary host measures its distances to
the landmarks, projects the resulting vector with the same PCA basis,
and the calibrated Euclidean metric predicts distances between any two
placed hosts. It is the fastest system in the paper's Table 1 and the
least accurate in Figures 6(b)/(c).
"""

from __future__ import annotations

import numpy as np

from .._validation import as_distance_matrix, as_mask, as_matrix, check_dimension
from ..exceptions import ValidationError
from ..linalg import PCA
from .base import LatencyPredictionSystem, euclidean_pairwise
from .lipschitz import fit_distance_scale

__all__ = ["ICSSystem"]


class ICSSystem(LatencyPredictionSystem):
    """Landmark-based Lipschitz+PCA latency prediction.

    Args:
        dimension: embedding dimension ``d`` (must satisfy ``d <= m``).

    Missing measurements (masked landmarks, Figure 7) are imputed with
    the mean of the host's observed distances before projection — PCA
    has no native missing-data story, which is one of the robustness
    drawbacks IDES addresses.
    """

    def __init__(self, dimension: int = 8):
        self.dimension = check_dimension(dimension)
        self.name = "ICS"
        self._pca: PCA | None = None
        self._scale: float = 1.0
        self._landmark_coords: np.ndarray | None = None
        self._host_coords: np.ndarray | None = None

    def fit_landmarks(self, landmark_matrix: object, mask: object | None = None) -> None:
        """Fit the PCA basis and calibration from the landmark matrix.

        ICS cannot exploit partially observed landmark matrices; if a
        mask is supplied, missing entries are imputed with the column
        mean (the closest standard workaround).
        """
        matrix = as_distance_matrix(
            landmark_matrix, name="landmark_matrix", allow_missing=mask is not None,
            require_square=True,
        )
        m = matrix.shape[0]
        check_dimension(self.dimension, limit=m)

        working = matrix.copy()
        if mask is not None:
            observed = as_mask(mask, matrix.shape)
            working = _impute_column_mean(working, observed)

        self._pca = PCA(self.dimension).fit(working)
        raw_coords = self._pca.transform(working)
        raw_estimates = euclidean_pairwise(raw_coords)
        off_diagonal = ~np.eye(m, dtype=bool)
        self._scale = fit_distance_scale(
            raw_estimates[off_diagonal], working[off_diagonal]
        )
        self._landmark_coords = raw_coords * self._scale
        self._host_coords = None

    def place_hosts(
        self,
        out_distances: object,
        in_distances: object | None = None,
        observation_mask: object | None = None,
    ) -> None:
        """Project ordinary hosts' landmark-distance vectors.

        ICS's model is symmetric: when both directions are supplied the
        average is used. Unobserved landmarks are imputed with the
        host's mean observed distance.
        """
        self._require_fitted("_pca")
        assert self._pca is not None

        vectors = as_matrix(out_distances, name="out_distances")
        if in_distances is not None:
            reverse = as_matrix(in_distances, name="in_distances").T
            if reverse.shape != vectors.shape:
                raise ValidationError(
                    "in_distances must be the transpose-shape of out_distances"
                )
            vectors = 0.5 * (vectors + reverse)

        if observation_mask is not None:
            observed = as_mask(observation_mask, vectors.shape)
        else:
            observed = ~np.isnan(vectors)
        working = _impute_row_mean(vectors, observed)

        self._host_coords = self._pca.transform(working) * self._scale

    def predict_matrix(self) -> np.ndarray:
        """Euclidean distances among the placed ordinary hosts."""
        self._require_fitted("_host_coords")
        return euclidean_pairwise(self._host_coords)

    def landmark_coordinates(self) -> np.ndarray:
        """``(m, d)`` calibrated landmark coordinates."""
        self._require_fitted("_landmark_coords")
        assert self._landmark_coords is not None
        return self._landmark_coords

    def host_coordinates(self) -> np.ndarray:
        """``(n, d)`` placed host coordinates."""
        self._require_fitted("_host_coords")
        assert self._host_coords is not None
        return self._host_coords


def _impute_column_mean(matrix: np.ndarray, observed: np.ndarray) -> np.ndarray:
    """Replace unobserved entries with their column's observed mean."""
    working = np.where(observed, matrix, np.nan)
    column_means = np.nanmean(np.where(observed, matrix, np.nan), axis=0)
    column_means = np.nan_to_num(column_means, nan=float(np.nanmean(working)))
    missing = ~observed | np.isnan(working)
    return np.where(missing, column_means[None, :], matrix)


def _impute_row_mean(matrix: np.ndarray, observed: np.ndarray) -> np.ndarray:
    """Replace unobserved entries with their row's observed mean."""
    working = np.where(observed, matrix, np.nan)
    with np.errstate(invalid="ignore"):
        row_means = np.nanmean(working, axis=1)
    overall = np.nanmean(working)
    row_means = np.nan_to_num(row_means, nan=float(overall) if np.isfinite(overall) else 0.0)
    missing = ~observed | np.isnan(matrix)
    return np.where(missing, row_means[:, None], matrix)
