"""Vivaldi: decentralized spring-relaxation coordinates (Dabek et al.,
SIGCOMM 2004).

Vivaldi is the decentralized alternative in the paper's related work
(Section 2.1): every node holds a coordinate, and each new RTT sample
to a neighbor moves the node along the error gradient as if the pair
were connected by a spring whose rest length is the measured RTT. No
landmarks are required, and the adaptive timestep weights updates by
the relative confidence of the two nodes.

Implemented here as a round-based simulation over a distance matrix —
each round, every node processes a sample to one random neighbor —
including the optional *height* component that models the access-link
delay shared by all of a host's paths. Vivaldi is used by the
asymmetric-routing ablation and the overlay example as the
decentralized Euclidean point of comparison.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_distance_matrix, as_rng, check_dimension
from ..exceptions import NotFittedError
from .base import NetworkEmbedding, euclidean_pairwise

__all__ = ["VivaldiSystem"]


class VivaldiSystem(NetworkEmbedding):
    """Round-based Vivaldi simulation over a full distance matrix.

    Args:
        dimension: coordinate dimension (excluding the height).
        use_height: add the height component of the Vivaldi paper,
            modeling last-mile delay as a non-Euclidean additive term.
        rounds: sampling rounds; each round every node processes one
            neighbor sample.
        ce: confidence/timestep gain (the paper's recommended 0.25).
        seed: randomness source for initial coordinates and neighbor
            sampling.
    """

    def __init__(
        self,
        dimension: int = 3,
        use_height: bool = True,
        rounds: int = 200,
        ce: float = 0.25,
        seed: int | np.random.Generator | None = 0,
    ):
        self.dimension = check_dimension(dimension)
        self.use_height = bool(use_height)
        self.rounds = int(rounds)
        self.ce = float(ce)
        self._rng = as_rng(seed)
        self._coords: np.ndarray | None = None
        self._heights: np.ndarray | None = None
        self._errors: np.ndarray | None = None

    def fit(self, distances: object) -> "VivaldiSystem":
        """Run the spring simulation until the round budget is spent."""
        matrix = as_distance_matrix(distances, name="distances", require_square=True)
        n = matrix.shape[0]
        rng = self._rng

        scale = float(np.median(matrix[matrix > 0])) if (matrix > 0).any() else 1.0
        coords = rng.normal(0.0, scale * 0.01, size=(n, self.dimension))
        heights = np.full(n, scale * 0.05) if self.use_height else np.zeros(n)
        confidence_errors = np.ones(n)

        for _ in range(self.rounds):
            partners = rng.integers(0, n, size=n)
            for node in range(n):
                other = int(partners[node])
                if other == node:
                    continue
                rtt = matrix[node, other]
                if not np.isfinite(rtt) or rtt <= 0:
                    continue
                self._update(
                    node, other, rtt, coords, heights, confidence_errors, rng, scale
                )

        self._coords = coords
        self._heights = heights
        self._errors = confidence_errors
        return self

    def _update(
        self,
        node: int,
        other: int,
        rtt: float,
        coords: np.ndarray,
        heights: np.ndarray,
        confidence_errors: np.ndarray,
        rng: np.random.Generator,
        scale: float,
    ) -> None:
        """One Vivaldi sample update (Dabek et al., Figure 3)."""
        difference = coords[node] - coords[other]
        norm = float(np.linalg.norm(difference))
        predicted = norm + heights[node] + heights[other]

        # Relative error of this sample and confidence-weighted timestep.
        sample_error = abs(predicted - rtt) / rtt
        node_error = confidence_errors[node]
        other_error = confidence_errors[other]
        weight = node_error / max(node_error + other_error, 1e-12)

        # Exponentially blend the node's confidence toward the sample.
        alpha = self.ce * weight
        confidence_errors[node] = sample_error * alpha + node_error * (1 - alpha)

        timestep = self.ce * weight
        if norm > 1e-12:
            direction = difference / norm
        else:
            # Coincident coordinates: pick a random push direction.
            direction = rng.normal(size=self.dimension)
            direction /= max(float(np.linalg.norm(direction)), 1e-12)

        force = rtt - predicted  # positive = too close, push apart
        coords[node] += timestep * force * direction
        if self.use_height:
            heights[node] = max(
                heights[node] + timestep * force * 0.5, scale * 1e-3
            )

    def coordinates(self) -> np.ndarray:
        """``(n, d)`` fitted coordinates (without heights)."""
        if self._coords is None:
            raise NotFittedError("VivaldiSystem: call fit first")
        return self._coords

    def heights(self) -> np.ndarray:
        """Per-node height components (zeros when disabled)."""
        if self._heights is None:
            raise NotFittedError("VivaldiSystem: call fit first")
        return self._heights

    def estimate_matrix(self) -> np.ndarray:
        """Predicted RTT matrix: Euclidean part plus both heights."""
        coords = self.coordinates()
        heights = self.heights()
        estimates = euclidean_pairwise(coords)
        estimates = estimates + heights[:, None] + heights[None, :]
        np.fill_diagonal(estimates, 0.0)
        return estimates
