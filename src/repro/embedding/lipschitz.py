"""Lipschitz embedding + PCA (Virtual Landmarks / ICS reconstruction).

Lim et al. (IMC 2003) and Tang & Crovella (IMC 2003) independently
proposed: embed each host in ``R^N`` by its vector of distances to the
``N`` landmarks (a Lipschitz embedding — hosts with similar distance
profiles land close together), then project to ``R^d`` with PCA, and
apply "a linear normalization to further calibrate the results" (paper
Section 2.1).

The calibration here fits the single scale factor ``alpha`` minimizing
the squared error between ``alpha * ||c_i - c_j||`` and the observed
distances — the simplest linear calibration consistent with the
published descriptions (see DESIGN.md "Notable implementation
decisions"). This class is the reconstruction baseline of Figure 3;
:class:`repro.embedding.ICSSystem` reuses it for landmark-based
prediction (Figure 6).
"""

from __future__ import annotations

import numpy as np

from .._validation import as_distance_matrix, check_dimension
from ..exceptions import NotFittedError
from ..linalg import PCA
from .base import NetworkEmbedding, euclidean_pairwise

__all__ = ["LipschitzPCAEmbedding", "fit_distance_scale"]


def fit_distance_scale(
    raw_distances: np.ndarray, target_distances: np.ndarray
) -> float:
    """Least-squares scale ``alpha`` mapping raw to target distances.

    Minimizes ``sum (target - alpha * raw)^2`` over observed finite
    entries; returns 1.0 when degenerate (all-zero raw distances).
    """
    raw = np.asarray(raw_distances, dtype=float).ravel()
    target = np.asarray(target_distances, dtype=float).ravel()
    valid = np.isfinite(raw) & np.isfinite(target)
    raw, target = raw[valid], target[valid]
    denominator = float(np.dot(raw, raw))
    if denominator == 0.0:
        return 1.0
    return float(np.dot(raw, target) / denominator)


class LipschitzPCAEmbedding(NetworkEmbedding):
    """Reconstruction by Lipschitz embedding and PCA projection.

    Args:
        dimension: target dimension ``d``.

    After :meth:`fit`, host coordinates live in ``R^d`` and include the
    least-squares scale calibration, so :meth:`estimate_matrix` is a
    plain Euclidean distance computation.
    """

    def __init__(self, dimension: int = 10):
        self.dimension = check_dimension(dimension)
        self._coordinates: np.ndarray | None = None
        self._pca: PCA | None = None
        self._scale: float = 1.0

    def fit(self, distances: object) -> "LipschitzPCAEmbedding":
        """Embed every host of a complete square distance matrix.

        The Lipschitz coordinates of host ``i`` are row ``i`` of the
        matrix (its distances to all hosts, treating every host as a
        landmark), per the Virtual Landmark construction.
        """
        matrix = as_distance_matrix(distances, name="distances", require_square=True)
        check_dimension(self.dimension, limit=matrix.shape[0])

        self._pca = PCA(self.dimension).fit(matrix)
        raw_coordinates = self._pca.transform(matrix)

        raw_estimates = euclidean_pairwise(raw_coordinates)
        off_diagonal = ~np.eye(matrix.shape[0], dtype=bool)
        self._scale = fit_distance_scale(
            raw_estimates[off_diagonal], matrix[off_diagonal]
        )
        self._coordinates = raw_coordinates * self._scale
        return self

    def coordinates(self) -> np.ndarray:
        """``(n, d)`` calibrated host coordinates."""
        if self._coordinates is None:
            raise NotFittedError("LipschitzPCAEmbedding: call fit first")
        return self._coordinates

    def project(self, distance_vectors: object) -> np.ndarray:
        """Project new hosts' distance vectors into the fitted space.

        Args:
            distance_vectors: ``(k, n)`` rows of distances to the same
                ``n`` reference hosts the embedding was fitted on.

        Returns:
            ``(k, d)`` calibrated coordinates; the operation ICS applies
            to ordinary hosts.
        """
        if self._pca is None:
            raise NotFittedError("LipschitzPCAEmbedding: call fit first")
        return self._pca.transform(distance_vectors) * self._scale
