"""Common interfaces for Euclidean network embeddings.

The baselines the paper compares against (Section 2) all share one
shape: hosts get coordinates in ``R^d`` and distances are estimated by
the Euclidean metric — hence they are symmetric and satisfy the
triangle inequality, the limitations of Section 2.2.

Two usage modes mirror the paper's two evaluations:

* *reconstruction* (:class:`NetworkEmbedding`): embed all hosts from a
  complete matrix and score how well the matrix is reproduced
  (Figure 3);
* *prediction* (:class:`LatencyPredictionSystem`): fit landmark
  coordinates from the small landmark matrix, place ordinary hosts
  from their landmark measurements, and score predictions on pairs
  never measured (Figure 6). This interface is also implemented by
  IDES itself, so experiment code treats all four systems uniformly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..exceptions import NotFittedError

__all__ = ["euclidean_pairwise", "NetworkEmbedding", "LatencyPredictionSystem"]


def euclidean_pairwise(
    coords_a: np.ndarray, coords_b: np.ndarray | None = None
) -> np.ndarray:
    """Pairwise Euclidean distances between coordinate rows.

    Args:
        coords_a: ``(n, d)`` coordinates.
        coords_b: ``(m, d)`` coordinates; defaults to ``coords_a``.

    Returns:
        ``(n, m)`` non-negative distance matrix.
    """
    first = np.asarray(coords_a, dtype=float)
    second = first if coords_b is None else np.asarray(coords_b, dtype=float)
    differences = first[:, None, :] - second[None, :, :]
    return np.linalg.norm(differences, axis=2)


class NetworkEmbedding(ABC):
    """Embed a full host population from a complete distance matrix."""

    dimension: int

    @abstractmethod
    def fit(self, distances: object) -> "NetworkEmbedding":
        """Compute coordinates for every host of ``distances``."""

    @abstractmethod
    def coordinates(self) -> np.ndarray:
        """``(n, d)`` fitted host coordinates."""

    def estimate_matrix(self) -> np.ndarray:
        """Reconstructed distance matrix from the fitted coordinates."""
        return euclidean_pairwise(self.coordinates())


class LatencyPredictionSystem(ABC):
    """Landmark-based latency prediction (the Figure 6 protocol).

    Lifecycle: :meth:`fit_landmarks` once, :meth:`place_hosts` once (or
    per batch), then :meth:`predict_matrix` / :meth:`predict_between`
    for pairs that were never measured.
    """

    #: Short system name used in tables ("IDES/SVD", "GNP", "ICS", ...).
    name: str = "unnamed"

    @abstractmethod
    def fit_landmarks(self, landmark_matrix: object, mask: object | None = None) -> None:
        """Learn landmark positions/vectors from the ``m x m`` matrix."""

    @abstractmethod
    def place_hosts(
        self,
        out_distances: object,
        in_distances: object | None = None,
        observation_mask: object | None = None,
    ) -> None:
        """Place ordinary hosts from their landmark measurements.

        Args:
            out_distances: ``(n, m)`` distances host -> landmark.
            in_distances: ``(m, n)`` distances landmark -> host; systems
                with symmetric models may ignore it, and it defaults to
                ``out_distances.T`` (RTT symmetry) when omitted.
            observation_mask: optional ``(n, m)`` boolean matrix; False
                marks landmarks a host failed to measure (Figure 7).
        """

    @abstractmethod
    def predict_matrix(self) -> np.ndarray:
        """``(n, n)`` predicted distances among the placed hosts."""

    def predict_between(self, rows: object, cols: object) -> np.ndarray:
        """Predicted distances for subsets of the placed hosts."""
        matrix = self.predict_matrix()
        row_idx = np.asarray(rows, dtype=int)
        col_idx = np.asarray(cols, dtype=int)
        return matrix[np.ix_(row_idx, col_idx)]

    def _require_fitted(self, attribute: str) -> None:
        """Raise :class:`NotFittedError` unless ``attribute`` is set."""
        if getattr(self, attribute, None) is None:
            raise NotFittedError(
                f"{type(self).__name__}: call fit_landmarks/place_hosts first"
            )
