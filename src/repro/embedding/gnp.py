"""GNP: Global Network Positioning (Ng & Zhang, INFOCOM 2002).

GNP embeds a small landmark set in ``R^d`` by directly minimizing a
relative-error objective with the Simplex Downhill (Nelder-Mead)
method, then places each ordinary host by minimizing the same objective
against the fixed landmark coordinates. It is the most accurate of the
Euclidean baselines on its own data set (paper Figure 6a) and by far
the slowest (Table 1), because the landmark optimization runs a
high-dimensional simplex search with restarts.

The paper's Eq. 3 states the objective as the sum of relative errors
``|D - D_hat| / D``; the original GNP software minimized the *squared*
relative error. Both are provided; ``objective="squared"`` is the
default because the smooth variant behaves better under Nelder-Mead.
"""

from __future__ import annotations

import numpy as np

from .._validation import (
    as_distance_matrix,
    as_mask,
    as_matrix,
    as_rng,
    check_dimension,
)
from ..exceptions import ValidationError
from ..linalg import minimize_with_restarts
from .base import LatencyPredictionSystem, euclidean_pairwise

__all__ = ["GNPSystem"]

_OBJECTIVES = ("squared", "absolute")


def _relative_residuals(
    true_values: np.ndarray, estimates: np.ndarray, floor: float
) -> np.ndarray:
    """Per-entry relative residuals with a guarded denominator."""
    return (true_values - estimates) / np.maximum(true_values, floor)


class GNPSystem(LatencyPredictionSystem):
    """Landmark-based Euclidean embedding fitted by simplex downhill.

    Args:
        dimension: embedding dimension ``d``.
        objective: ``"squared"`` (original GNP) or ``"absolute"``
            (paper Eq. 3).
        landmark_restarts: simplex restarts for the landmark phase; the
            dominant cost (Table 1's minutes).
        host_restarts: simplex restarts per ordinary host.
        max_iter_scale: multiplier on the default Nelder-Mead iteration
            budget (``200 * n_variables``); lower it for quick tests.
        seed: randomness source for initialization and restarts.
    """

    def __init__(
        self,
        dimension: int = 8,
        objective: str = "squared",
        landmark_restarts: int = 3,
        host_restarts: int = 1,
        max_iter_scale: float = 1.0,
        seed: int | np.random.Generator | None = 0,
    ):
        self.dimension = check_dimension(dimension)
        if objective not in _OBJECTIVES:
            raise ValidationError(
                f"objective must be one of {_OBJECTIVES}, got {objective!r}"
            )
        self.objective = objective
        self.landmark_restarts = max(int(landmark_restarts), 1)
        self.host_restarts = max(int(host_restarts), 1)
        self.max_iter_scale = float(max_iter_scale)
        self._rng = as_rng(seed)
        self.name = "GNP"

        self._landmark_coords: np.ndarray | None = None
        self._host_coords: np.ndarray | None = None
        self._scale: float = 1.0

    # ----------------------------------------------------------------- #
    # objective helpers
    # ----------------------------------------------------------------- #

    def _loss(self, residuals: np.ndarray) -> float:
        """Aggregate relative residuals per the configured objective."""
        if self.objective == "squared":
            return float(np.sum(residuals * residuals))
        return float(np.sum(np.abs(residuals)))

    def _landmark_objective(
        self, flat_coords: np.ndarray, matrix: np.ndarray, mask: np.ndarray, floor: float
    ) -> float:
        coords = flat_coords.reshape(-1, self.dimension)
        estimates = euclidean_pairwise(coords)
        residuals = _relative_residuals(matrix, estimates, floor)[mask]
        return self._loss(residuals)

    def _host_objective(
        self,
        point: np.ndarray,
        landmark_coords: np.ndarray,
        measured: np.ndarray,
        floor: float,
    ) -> float:
        estimates = np.linalg.norm(landmark_coords - point[None, :], axis=1)
        residuals = _relative_residuals(measured, estimates, floor)
        return self._loss(residuals)

    # ----------------------------------------------------------------- #
    # LatencyPredictionSystem interface
    # ----------------------------------------------------------------- #

    def fit_landmarks(self, landmark_matrix: object, mask: object | None = None) -> None:
        """Embed the landmarks by simplex search over all coordinates.

        A random multi-start search over ``m * d`` variables — the cost
        center the paper's Table 1 measures in minutes. ``mask`` may
        exclude unmeasured landmark pairs from the objective.
        """
        matrix = as_distance_matrix(landmark_matrix, name="landmark_matrix", require_square=True)
        m = matrix.shape[0]
        pair_mask = ~np.eye(m, dtype=bool)
        if mask is not None:
            pair_mask &= as_mask(mask, matrix.shape)
        observed = matrix[pair_mask]
        if observed.size == 0:
            raise ValidationError("landmark matrix has no observed off-diagonal pairs")
        floor = max(float(observed[observed > 0].mean()) * 1e-6, 1e-12)
        self._scale = float(np.median(observed))

        # Random initial layout in a box matching the distance scale.
        start = self._rng.random(m * self.dimension) * self._scale

        result = minimize_with_restarts(
            lambda flat: self._landmark_objective(flat, matrix, pair_mask, floor),
            start,
            restarts=self.landmark_restarts,
            seed=self._rng,
            max_iter=int(200 * m * self.dimension * self.max_iter_scale),
        )
        self._landmark_coords = result.point.reshape(m, self.dimension)
        self._host_coords = None

    def place_hosts(
        self,
        out_distances: object,
        in_distances: object | None = None,
        observation_mask: object | None = None,
    ) -> None:
        """Place each ordinary host with a per-host simplex search.

        GNP's model is symmetric: when both directions are supplied the
        average is used as the measured distance.
        """
        self._require_fitted("_landmark_coords")
        landmark_coords = self._landmark_coords
        assert landmark_coords is not None

        measurements = as_matrix(out_distances, name="out_distances")
        if in_distances is not None:
            reverse = as_matrix(in_distances, name="in_distances").T
            if reverse.shape != measurements.shape:
                raise ValidationError(
                    "in_distances must be the transpose-shape of out_distances"
                )
            measurements = 0.5 * (measurements + reverse)
        n_hosts, m = measurements.shape
        if m != landmark_coords.shape[0]:
            raise ValidationError(
                f"measurements cover {m} landmarks, model has {landmark_coords.shape[0]}"
            )
        if observation_mask is not None:
            observed = as_mask(observation_mask, measurements.shape)
        else:
            observed = ~np.isnan(measurements)

        positive = measurements[observed & (measurements > 0)]
        floor = max(float(positive.mean()) * 1e-6, 1e-12) if positive.size else 1e-12

        coords = np.empty((n_hosts, self.dimension))
        centroid = landmark_coords.mean(axis=0)
        for host in range(n_hosts):
            row_mask = observed[host] & np.isfinite(measurements[host])
            if row_mask.sum() == 0:
                coords[host] = centroid
                continue
            anchors = landmark_coords[row_mask]
            measured = measurements[host, row_mask]
            result = minimize_with_restarts(
                lambda point: self._host_objective(point, anchors, measured, floor),
                centroid,
                restarts=self.host_restarts,
                seed=self._rng,
                max_iter=int(200 * self.dimension * self.max_iter_scale),
            )
            coords[host] = result.point
        self._host_coords = coords

    def predict_matrix(self) -> np.ndarray:
        """Euclidean distances among the placed ordinary hosts."""
        self._require_fitted("_host_coords")
        return euclidean_pairwise(self._host_coords)

    # ----------------------------------------------------------------- #
    # extras used by tests and examples
    # ----------------------------------------------------------------- #

    def landmark_coordinates(self) -> np.ndarray:
        """``(m, d)`` fitted landmark coordinates."""
        self._require_fitted("_landmark_coords")
        assert self._landmark_coords is not None
        return self._landmark_coords

    def host_coordinates(self) -> np.ndarray:
        """``(n, d)`` placed ordinary-host coordinates."""
        self._require_fitted("_host_coords")
        assert self._host_coords is not None
        return self._host_coords

    def landmark_fit_error(self, landmark_matrix: object) -> float:
        """The landmark objective value at the fitted coordinates."""
        matrix = as_distance_matrix(landmark_matrix, name="landmark_matrix", require_square=True)
        coords = self.landmark_coordinates()
        mask = ~np.eye(matrix.shape[0], dtype=bool)
        observed = matrix[mask]
        floor = max(float(observed[observed > 0].mean()) * 1e-6, 1e-12)
        estimates = euclidean_pairwise(coords)
        return self._loss(_relative_residuals(matrix, estimates, floor)[mask])
