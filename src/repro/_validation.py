"""Internal validation helpers shared across the package.

These functions normalize user input into canonical numpy forms and
raise :class:`repro.exceptions.ValidationError` with actionable messages
when the input is unusable. They are private to the library; the public
API never requires callers to import this module.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .exceptions import ValidationError

__all__ = [
    "as_rng",
    "as_matrix",
    "as_distance_matrix",
    "as_mask",
    "as_vector",
    "check_dimension",
    "check_fraction",
    "check_positive",
]


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` yields a fresh nondeterministic generator, an ``int`` seeds a
    new generator, and an existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise ValidationError(f"seed must be non-negative, got {seed}")
        return np.random.default_rng(int(seed))
    raise ValidationError(
        f"seed must be None, an int, or a numpy Generator, got {type(seed).__name__}"
    )


def as_matrix(value: object, name: str = "matrix") -> np.ndarray:
    """Coerce ``value`` to a 2-D float array, copying only if needed."""
    try:
        matrix = np.asarray(value, dtype=float)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} is not convertible to a float array: {exc}") from exc
    if matrix.ndim != 2:
        raise ValidationError(f"{name} must be 2-dimensional, got shape {matrix.shape}")
    if matrix.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    return matrix


def as_distance_matrix(
    value: object,
    name: str = "D",
    allow_missing: bool = False,
    require_square: bool = False,
) -> np.ndarray:
    """Validate a network distance matrix.

    Distances must be finite (unless ``allow_missing`` permits NaN for
    unmeasured pairs) and non-negative. The matrix may be rectangular:
    the paper's footnote 3 explicitly covers distances from one host set
    to another (for example the 869 x 19 AGNP data set).
    """
    matrix = as_matrix(value, name=name)
    if require_square and matrix.shape[0] != matrix.shape[1]:
        raise ValidationError(f"{name} must be square, got shape {matrix.shape}")
    if np.isinf(matrix).any():
        raise ValidationError(f"{name} contains infinite entries")
    nan_mask = np.isnan(matrix)
    if nan_mask.any() and not allow_missing:
        raise ValidationError(
            f"{name} contains {int(nan_mask.sum())} missing (NaN) entries; "
            "use the masked NMF path or filter the matrix first"
        )
    observed = matrix[~nan_mask]
    if observed.size and (observed < 0).any():
        worst = float(observed.min())
        raise ValidationError(f"{name} contains negative distances (min {worst:g})")
    return matrix


def as_mask(value: object, shape: tuple[int, int], name: str = "mask") -> np.ndarray:
    """Coerce ``value`` to a boolean observation mask of the given shape.

    ``True`` marks an observed entry, matching the paper's binary matrix
    ``M`` in Eqs. (8)-(9).
    """
    mask = np.asarray(value)
    if mask.shape != shape:
        raise ValidationError(f"{name} must have shape {shape}, got {mask.shape}")
    if mask.dtype != bool:
        unique = np.unique(mask)
        if not np.isin(unique, (0, 1)).all():
            raise ValidationError(f"{name} must be boolean or 0/1-valued")
        mask = mask.astype(bool)
    return mask


def as_vector(value: object, name: str = "vector") -> np.ndarray:
    """Coerce ``value`` to a 1-D float array."""
    vector = np.asarray(value, dtype=float)
    if vector.ndim != 1:
        raise ValidationError(f"{name} must be 1-dimensional, got shape {vector.shape}")
    if vector.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    return vector


def check_dimension(dimension: int, limit: int | None = None, name: str = "dimension") -> int:
    """Validate a model dimension ``d`` (and optionally ``d <= limit``)."""
    if not isinstance(dimension, (int, np.integer)):
        raise ValidationError(f"{name} must be an int, got {type(dimension).__name__}")
    if dimension < 1:
        raise ValidationError(f"{name} must be >= 1, got {dimension}")
    if limit is not None and dimension > limit:
        raise ValidationError(f"{name} must be <= {limit}, got {dimension}")
    return int(dimension)


def check_fraction(value: float, name: str = "fraction", inclusive: bool = True) -> float:
    """Validate a value in ``[0, 1]`` (or ``[0, 1)`` if not inclusive)."""
    value = float(value)
    upper_ok = value <= 1.0 if inclusive else value < 1.0
    if not (0.0 <= value and upper_ok):
        bound = "[0, 1]" if inclusive else "[0, 1)"
        raise ValidationError(f"{name} must be in {bound}, got {value}")
    return value


def check_positive(value: float, name: str = "value") -> float:
    """Validate a strictly positive scalar."""
    value = float(value)
    if not value > 0:
        raise ValidationError(f"{name} must be > 0, got {value}")
    return value


def check_indices(
    indices: Sequence[int], size: int, name: str = "indices", unique: bool = True
) -> np.ndarray:
    """Validate integer indices into an axis of length ``size``."""
    array = np.asarray(indices)
    if array.ndim != 1:
        raise ValidationError(f"{name} must be 1-dimensional")
    if array.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    if not np.issubdtype(array.dtype, np.integer):
        if np.issubdtype(array.dtype, np.floating) and np.all(array == array.astype(int)):
            array = array.astype(int)
        else:
            raise ValidationError(f"{name} must be integers")
    if array.min() < 0 or array.max() >= size:
        raise ValidationError(f"{name} must lie in [0, {size - 1}]")
    if unique and np.unique(array).size != array.size:
        raise ValidationError(f"{name} must not contain duplicates")
    return array.astype(int)
