"""The distance service facade: store + engine + cache in one object.

:class:`DistanceService` is the deployable form of a fitted IDES
model. It owns a :class:`~repro.serving.store.VectorStore` of host
vectors, answers every query shape through a vectorized
:class:`~repro.serving.engine.QueryEngine`, memoizes point queries in
a :class:`~repro.serving.cache.PredictionCache`, and — unlike the
fit-then-lookup :class:`~repro.ides.server.InformationServer` —
supports *incremental* operation: new hosts register at any time by
solving their vectors against already-registered references (the
relaxed architecture of Section 5.2), without ever refactoring the
landmark matrix.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Sequence

import numpy as np

from .._validation import check_dimension
from ..core.diagnostics import ServiceHealth, ShardHealth
from ..exceptions import (
    DeadlineExceededError,
    NotFittedError,
    ValidationError,
)
from ..ides.host import solve_host_vectors
from ..ides.vectors import HostVectors
from .cache import PredictionCache
from .engine import QueryEngine
from .snapshot import ServiceSnapshot, load_snapshot, save_snapshot
from .store import InMemoryVectorStore, ShardedVectorStore, VectorStore

__all__ = ["DistanceService"]


class DistanceService:
    """Online distance-query service over a fitted factored model.

    Args:
        dimension: model dimension ``d`` (ignored when ``store`` is
            given).
        store: a prebuilt vector store; by default an
            :class:`InMemoryVectorStore` (or a
            :class:`ShardedVectorStore` when ``n_shards`` > 0).
        n_shards: build a hash-sharded store with this many shards.
        cache_entries: LRU capacity of the point-query cache.
        cache_ttl: cache entry lifetime in seconds (None: no expiry).
        cache_admission: point-query cache admission policy —
            ``"none"`` (insert everything) or ``"doorkeeper"``
            (frequency-gated; see
            :class:`~repro.serving.cache.PredictionCache`).
        clock: monotonic time source shared by the cache's TTL logic
            and the staleness metrics; injectable so tests advance
            time instead of sleeping.
        ridge / nonnegative / strict: solver options forwarded to
            host registration (:func:`repro.ides.solve_host_vectors`).
        sink_retry_backoff: pause in seconds before the single in-line
            retry of a failed update-sink fan-out (0 retries
            immediately).
    """

    def __init__(
        self,
        dimension: int | None = None,
        store: VectorStore | None = None,
        n_shards: int = 0,
        cache_entries: int = 65536,
        cache_ttl: float | None = None,
        cache_admission: str = "none",
        clock=time.monotonic,
        ridge: float = 0.0,
        nonnegative: bool = False,
        strict: bool = True,
        sink_retry_backoff: float = 0.05,
    ):
        if store is None:
            if dimension is None:
                raise ValidationError("DistanceService needs a dimension or a store")
            dimension = check_dimension(dimension)
            if n_shards:
                store = ShardedVectorStore(dimension, n_shards=n_shards)
            else:
                store = InMemoryVectorStore(dimension)
        self.store = store
        self.engine = QueryEngine(store)
        self.clock = clock
        self.cache = PredictionCache(
            max_entries=cache_entries,
            ttl=cache_ttl,
            clock=clock,
            admission=cache_admission,
        )
        self.ridge = float(ridge)
        self.nonnegative = bool(nonnegative)
        self.strict = bool(strict)
        self._landmark_ids: list = []
        self._lock = threading.RLock()
        self._updated_at: dict[object, float] = {}
        self._vectors_refreshed = 0
        self._refresh_batches = 0
        self._last_refresh_at: float | None = None
        self._write_epoch = 0
        self._deadline_rejected = 0
        self._update_sinks: list = []  # [(name, sink), ...]
        self._update_sink_failures = 0
        self._sink_failures_by_name: dict[str, int] = {}
        self._sink_last_error: dict[str, str] = {}
        self._sinks_attached = 0
        #: Pause before the single in-line retry of a failed sink call
        #: (a transient blip — a reconnect, a brief election — often
        #: clears within tens of milliseconds).
        self._sink_retry_backoff = max(0.0, float(sink_retry_backoff))

    # ------------------------------------------------------------------ #
    # construction from fitted models
    # ------------------------------------------------------------------ #

    @classmethod
    def from_vectors(
        cls,
        host_ids: Sequence,
        outgoing: np.ndarray,
        incoming: np.ndarray,
        landmark_ids: Sequence = (),
        **options: object,
    ) -> "DistanceService":
        """Build a service from dense ``(n, d)`` vector matrices.

        ``landmark_ids`` marks the subset used as the default reference
        pool for later incremental registrations.
        """
        outgoing = np.asarray(outgoing, dtype=float)
        incoming = np.asarray(incoming, dtype=float)
        if outgoing.ndim != 2 or outgoing.shape != incoming.shape:
            raise ValidationError(
                f"expected matching (n, d) matrices, got {outgoing.shape} "
                f"and {incoming.shape}"
            )
        if len(host_ids) != outgoing.shape[0]:
            raise ValidationError(
                f"got {len(host_ids)} ids for {outgoing.shape[0]} vector rows"
            )
        if len(set(host_ids)) != len(host_ids):
            raise ValidationError("host_ids contains duplicates")
        service = cls(dimension=outgoing.shape[1], **options)
        service.store.put_many(list(host_ids), outgoing, incoming)
        service._stamp(host_ids)
        service._set_landmarks(landmark_ids)
        return service

    @classmethod
    def from_ides(
        cls,
        system,
        host_ids: Sequence | None = None,
        landmark_ids: Sequence | None = None,
        **options: object,
    ) -> "DistanceService":
        """Build a service from a fitted :class:`repro.ides.IDESSystem`.

        Imports the landmark vectors and, when the system has placed
        ordinary hosts, their vectors too.

        Args:
            system: fitted IDES system (landmarks required, placed
                hosts optional).
            host_ids: identifiers for the placed ordinary hosts;
                defaults to ``"host-0" .. "host-{n-1}"``.
            landmark_ids: identifiers for the landmarks; defaults to
                the server's directory ids (``0..m-1`` unless the
                server was fitted with explicit ids).
            **options: forwarded to the constructor (shards, cache,
                solver settings).
        """
        landmark_out, landmark_in = system.landmark_vectors()
        if landmark_ids is None:
            landmark_ids = system.server.landmark_ids
        landmark_ids = list(landmark_ids)
        if len(landmark_ids) != landmark_out.shape[0]:
            raise ValidationError(
                f"got {len(landmark_ids)} landmark ids for "
                f"{landmark_out.shape[0]} landmarks"
            )

        identifiers = landmark_ids
        outgoing, incoming = landmark_out, landmark_in
        try:
            host_out, host_in = system.host_vectors()
        except NotFittedError:
            host_out = None
        if host_out is not None:
            if host_ids is None:
                host_ids = [f"host-{i}" for i in range(host_out.shape[0])]
            host_ids = list(host_ids)
            if len(host_ids) != host_out.shape[0]:
                raise ValidationError(
                    f"got {len(host_ids)} host ids for {host_out.shape[0]} "
                    "placed hosts"
                )
            overlap = set(host_ids) & set(landmark_ids)
            if overlap:
                raise ValidationError(
                    f"host ids collide with landmark ids: {sorted(overlap)!r}"
                )
            identifiers = landmark_ids + host_ids
            outgoing = np.vstack([landmark_out, host_out])
            incoming = np.vstack([landmark_in, host_in])
        elif host_ids is not None:
            raise ValidationError(
                "host_ids given but the system has not placed hosts"
            )
        return cls.from_vectors(
            identifiers, outgoing, incoming, landmark_ids=landmark_ids, **options
        )

    @classmethod
    def from_server(cls, server, **options: object) -> "DistanceService":
        """Build a service from a fitted
        :class:`repro.ides.InformationServer` directory."""
        identifiers = server.known_hosts()
        if not identifiers:
            raise ValidationError("server has no registered hosts")
        outgoing = np.stack([server.get_vectors(i).outgoing for i in identifiers])
        incoming = np.stack([server.get_vectors(i).incoming for i in identifiers])
        return cls.from_vectors(
            identifiers,
            outgoing,
            incoming,
            landmark_ids=server.landmark_ids,
            **options,
        )

    def _set_landmarks(self, landmark_ids: Sequence) -> None:
        missing = [i for i in landmark_ids if i not in self.store]
        if missing:
            raise ValidationError(f"landmark ids not in store: {missing!r}")
        self._landmark_ids = list(landmark_ids)

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #

    @property
    def dimension(self) -> int:
        """Model dimension ``d``."""
        return self.store.dimension

    @property
    def n_hosts(self) -> int:
        """Hosts in the store, landmarks included."""
        return len(self.store)

    @property
    def landmark_ids(self) -> list:
        """The default reference pool for incremental registration."""
        return list(self._landmark_ids)

    def known_hosts(self) -> list:
        """All registered identifiers."""
        return self.store.ids()

    def __contains__(self, host_id: object) -> bool:
        return host_id in self.store

    def _stamp(self, host_ids: Sequence) -> None:
        """Record write times for staleness metrics."""
        now = self.clock()
        with self._lock:
            for host_id in host_ids:
                self._updated_at[host_id] = now

    def register_vectors(self, host_id: object, vectors: HostVectors) -> None:
        """Publish (or overwrite) a host's solved vectors directly."""
        with self._lock:
            self.store.put(host_id, vectors)
            self.cache.invalidate_host(host_id)
            self._stamp([host_id])
            self._write_epoch += 1

    @property
    def write_epoch(self) -> int:
        """Monotonic count of vector writes and evictions.

        Cache writers capture it *before* computing a prediction and
        hand it to :meth:`cache_put_if_current`, so a value computed
        from pre-refresh vectors can never be cached after the
        refresh's invalidation already ran.
        """
        return self._write_epoch

    def cache_put_if_current(
        self,
        epoch: int,
        source_id: object,
        destination_id: object,
        value: float,
    ) -> bool:
        """Cache a prediction only if no vector write intervened.

        Returns whether the entry was stored.
        """
        with self._lock:
            if epoch != self._write_epoch:
                return False
            self.cache.put(source_id, destination_id, value)
            return True

    def cache_put_many_if_current(
        self, epoch: int, entries: Sequence[tuple]
    ) -> int:
        """Bulk :meth:`cache_put_if_current`; returns entries stored."""
        with self._lock:
            if epoch != self._write_epoch:
                return 0
            for source_id, destination_id, value in entries:
                self.cache.put(source_id, destination_id, value)
            return len(entries)

    def apply_vector_updates(
        self,
        host_ids: Sequence,
        outgoing: np.ndarray,
        incoming: np.ndarray,
    ) -> int:
        """Bulk-publish refreshed vectors for already-known hosts.

        The refresh worker's flush path: one ``put_many`` into the
        store, one bulk cache invalidation, one staleness stamp — all
        under the service lock. The store's own locking guarantees any
        single gather sees either the old or the new vectors (no torn
        rows); queries composed of several gathers may span the update
        boundary. Unlike :meth:`register_vectors` this refuses unknown
        hosts (a refresh cannot invent members), checked under the
        same lock so a racing eviction cannot be resurrected.

        Returns:
            the number of hosts updated.
        """
        host_ids = list(host_ids)
        with self._lock:
            # Membership check under the lock: a concurrent eviction
            # must not let a refresh resurrect the evicted host.
            unknown = [i for i in host_ids if i not in self.store]
            if unknown:
                raise ValidationError(
                    f"cannot refresh unregistered hosts: {unknown[:5]!r}"
                )
            self.store.put_many(host_ids, outgoing, incoming)
            self.cache.invalidate_hosts(host_ids)
            self._stamp(host_ids)
            self._vectors_refreshed += len(host_ids)
            self._refresh_batches += 1
            self._last_refresh_at = self.clock()
            self._write_epoch += 1
            sinks = list(self._update_sinks)
        # Fan-out to attached replicas happens *outside* the service
        # lock: a slow or dark remote shard must not stall the local
        # query path. Sinks are best-effort — a failure gets one
        # bounded in-line retry after a short backoff (transient blips
        # should not show up as replication lag), then is counted with
        # its reason (surfaced via health) but never rolls back the
        # local update; flushes are idempotent overwrites, so the next
        # one converges the replica.
        for name, sink in sinks:
            error: BaseException | None = None
            for attempt in (0, 1):
                if attempt and self._sink_retry_backoff:
                    time.sleep(self._sink_retry_backoff)
                try:
                    sink(host_ids, outgoing, incoming)
                    error = None
                    break
                except Exception as failed:  # noqa: BLE001 - replication
                    # must not break local serving
                    error = failed
            if error is not None:
                with self._lock:
                    self._update_sink_failures += 1
                    self._sink_failures_by_name[name] = (
                        self._sink_failures_by_name.get(name, 0) + 1
                    )
                    self._sink_last_error[name] = (
                        f"{type(error).__name__}: {error}"
                    )
        return len(host_ids)

    def add_update_sink(self, sink, name: str | None = None) -> None:
        """Attach a replication sink to the bulk-refresh path.

        ``sink(host_ids, outgoing, incoming)`` is invoked after every
        successful :meth:`apply_vector_updates`, outside the service
        lock, in registration order — the hook
        :class:`~repro.serving.transport.ShardReplicator` uses to fan
        refreshed vectors out to cross-process shard servers so a
        :class:`~repro.serving.refresh.RefreshWorker` maintains a
        whole cluster. A sink exception gets one in-line retry after
        ``sink_retry_backoff`` seconds; if that also raises, the
        failure is swallowed but counted per sink under ``name`` with
        its last reason (``update_sink_failures`` /
        ``update_sink_failures_by_sink`` / ``update_sink_last_error``
        in :meth:`health`); the default name is ``sink-{attach_index}``
        so two anonymous replicas never alias each other's failures.
        """
        with self._lock:
            if name is None:
                name = getattr(sink, "sink_name", None) or (
                    f"sink-{self._sinks_attached}"
                )
            self._sinks_attached += 1
            self._update_sinks.append((str(name), sink))

    def remove_update_sink(self, sink) -> bool:
        """Detach a replication sink; returns whether it was attached."""
        with self._lock:
            for index, (_, attached) in enumerate(self._update_sinks):
                if attached is sink:
                    del self._update_sinks[index]
                    return True
            return False

    def register_host(
        self,
        host_id: object,
        out_distances: object,
        in_distances: object | None = None,
        reference_ids: Sequence | None = None,
    ) -> HostVectors:
        """Register a new host from its reference measurements.

        Solves the host's vectors against already-registered reference
        nodes (Eqs. 13-14) — landmarks by default, but any registered
        host works (the Section 5.2 relaxation) — so registration never
        refactors the landmark matrix.

        Args:
            host_id: identifier to register under.
            out_distances: length-``k`` distances host -> reference.
            in_distances: length-``k`` distances reference -> host;
                None assumes RTT symmetry.
            reference_ids: the ``k`` reference hosts measured; defaults
                to the landmark set.

        Returns:
            the solved :class:`HostVectors` (already published).
        """
        if reference_ids is None:
            if not self._landmark_ids:
                raise ValidationError(
                    "no landmark reference pool; pass reference_ids explicitly"
                )
            reference_ids = self._landmark_ids
        reference_ids = list(reference_ids)
        if host_id in reference_ids:
            raise ValidationError(
                f"host {host_id!r} cannot use itself as a reference"
            )
        ref_out, ref_in = self.store.gather(reference_ids)
        if in_distances is None:
            in_distances = out_distances
        vectors = solve_host_vectors(
            out_distances,
            in_distances,
            ref_out,
            ref_in,
            ridge=self.ridge,
            nonnegative=self.nonnegative,
            strict=self.strict,
        )
        self.register_vectors(host_id, vectors)
        return vectors

    def evict_host(self, host_id: object) -> bool:
        """Remove an ordinary host; landmarks cannot be evicted."""
        if host_id in self._landmark_ids:
            raise ValidationError(f"cannot evict landmark {host_id!r}")
        with self._lock:
            removed = self.store.delete(host_id)
            if removed:
                self.cache.invalidate_host(host_id)
                self._updated_at.pop(host_id, None)
                self._write_epoch += 1
            return removed

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def query(
        self, source_id: object, destination_id: object, deadline=None
    ) -> float:
        """Point query through the cache.

        ``deadline`` (a
        :class:`~repro.serving.transport.protocol.Deadline`) is the
        request's latency budget: an already-expired budget raises
        :class:`~repro.exceptions.DeadlineExceededError` *before* any
        engine work — answering a caller that has already given up is
        pure wasted compute. The cache probe still runs first: a free
        answer beats a shed.
        """
        cached = self.cache.get(source_id, destination_id)
        if cached is not None:
            return cached
        if deadline is not None and deadline.expired():
            self._deadline_rejected += 1
            raise DeadlineExceededError(
                "deadline expired before the query could be evaluated"
            )
        epoch = self._write_epoch
        value = self.engine.point(source_id, destination_id)
        # Epoch-guarded put: if a refresh invalidated this host while
        # we computed, the stale value must not re-enter the cache.
        self.cache_put_if_current(epoch, source_id, destination_id, value)
        return value

    def query_one_to_many(
        self,
        source_id: object,
        destination_ids: Sequence,
        populate_cache: bool = False,
    ) -> np.ndarray:
        """Vectorized distances from one source to many destinations.

        Batch reads bypass the cache lookup (a dense gather beats per
        -pair dict probes); ``populate_cache`` additionally writes the
        results back so follow-up point queries hit.
        """
        epoch = self._write_epoch
        values = self.engine.one_to_many(source_id, destination_ids)
        if populate_cache:
            self.cache_put_many_if_current(
                epoch,
                [
                    (source_id, destination_id, float(value))
                    for destination_id, value in zip(destination_ids, values)
                ],
            )
        return values

    def query_many_to_many(
        self, source_ids: Sequence, destination_ids: Sequence
    ) -> np.ndarray:
        """The ``(n_src, n_dst)`` prediction block, fully vectorized."""
        return self.engine.many_to_many(source_ids, destination_ids)

    def query_pairs(
        self, source_ids: Sequence, destination_ids: Sequence
    ) -> np.ndarray:
        """Aligned per-pair predictions in one dense batch.

        ``result[i]`` is ``source_ids[i] -> destination_ids[i]``; the
        same coalescing primitive the concurrent frontend uses, exposed
        synchronously. Bypasses the cache like the other batch reads.
        """
        return self.engine.pairs(source_ids, destination_ids)

    def k_nearest(
        self,
        source_id: object,
        k: int,
        candidate_ids: Sequence | None = None,
    ) -> list[tuple[object, float]]:
        """The ``k`` registered hosts predicted closest to the source."""
        return self.engine.k_nearest(source_id, k, candidate_ids=candidate_ids)

    # ------------------------------------------------------------------ #
    # snapshots and health
    # ------------------------------------------------------------------ #

    def snapshot(self) -> ServiceSnapshot:
        """Materialize the current directory as a snapshot object."""
        identifiers, outgoing, incoming = self.store.export()
        n_shards = getattr(self.store, "n_shards", 0)
        return ServiceSnapshot(
            ids=identifiers,
            outgoing=outgoing,
            incoming=incoming,
            landmark_ids=list(self._landmark_ids),
            n_shards=n_shards,
        )

    def save(self, path: str | Path) -> Path:
        """Write the service state to an ``.npz`` snapshot."""
        return save_snapshot(self.snapshot(), path)

    @classmethod
    def load(cls, path: str | Path, **options: object) -> "DistanceService":
        """Rebuild a service from a snapshot file.

        The shard layout is restored from the snapshot unless
        ``n_shards`` is overridden in ``options``.
        """
        snapshot = load_snapshot(path)
        options.setdefault("n_shards", snapshot.n_shards)
        return cls.from_vectors(
            snapshot.ids,
            snapshot.outgoing,
            snapshot.incoming,
            landmark_ids=snapshot.landmark_ids,
            **options,
        )

    def health(self) -> ServiceHealth:
        """Operational counters as a :class:`ServiceHealth` report.

        For a sharded store the report carries one
        :class:`~repro.core.diagnostics.ShardHealth` per shard. In a
        single process all shards share this service's engine, so the
        per-shard served-work counters are None; a cross-process
        :meth:`~repro.serving.transport.ShardedQueryRouter.health`
        fills them from each shard server's own engine.
        """
        cache_stats = self.cache.stats()
        if isinstance(self.store, ShardedVectorStore):
            n_shards = self.store.n_shards
            occupancy = tuple(self.store.occupancy())
            shards = tuple(
                ShardHealth(shard_index=index, n_hosts=count)
                for index, count in enumerate(occupancy)
            )
        else:
            n_shards = 0
            occupancy = ()
            shards = ()
        now = self.clock()
        with self._lock:
            stamps = list(self._updated_at.values())
            since_refresh = (
                None
                if self._last_refresh_at is None
                else now - self._last_refresh_at
            )
            vectors_refreshed = self._vectors_refreshed
            refresh_batches = self._refresh_batches
            sink_failures = self._update_sink_failures
            sink_failures_by_name = tuple(
                sorted(self._sink_failures_by_name.items())
            )
            sink_last_error = tuple(sorted(self._sink_last_error.items()))
        if stamps:
            ages = [now - stamp for stamp in stamps]
            max_age: float | None = max(ages)
            mean_age: float | None = sum(ages) / len(ages)
        else:
            max_age = mean_age = None
        return ServiceHealth(
            n_hosts=self.n_hosts,
            n_landmarks=len(self._landmark_ids),
            dimension=self.dimension,
            n_shards=n_shards,
            shard_occupancy=occupancy,
            queries_served=self.engine.queries_served,
            pairs_evaluated=self.engine.pairs_evaluated,
            cache_hits=cache_stats.hits,
            cache_misses=cache_stats.misses,
            cache_size=cache_stats.size,
            cache_max_entries=cache_stats.max_entries,
            cache_admitted=cache_stats.admitted,
            cache_rejected=cache_stats.rejected,
            vectors_refreshed=vectors_refreshed,
            refresh_batches=refresh_batches,
            seconds_since_refresh=since_refresh,
            max_vector_age_seconds=max_age,
            mean_vector_age_seconds=mean_age,
            shards=shards,
            update_sink_failures=sink_failures,
            update_sink_failures_by_sink=sink_failures_by_name,
            update_sink_last_error=sink_last_error,
            stale_served=cache_stats.stale_reads,
            deadline_rejected=self._deadline_rejected,
        )

    def bind_metrics(self, registry, component: str = "service") -> None:
        """Register this service's counters with a metrics registry.

        Binds the engine and cache collectors under ``component`` and
        adds a service-level collector (membership gauges, refresh
        counters, per-sink replication failures). Scrape-time reads of
        the existing counters — nothing is added to the query path.
        """
        from .observability.metrics import Sample

        self.engine.bind_metrics(registry, component=component)
        self.cache.bind_metrics(registry, component=component)

        def collect():
            with self._lock:
                refreshed = self._vectors_refreshed
                batches = self._refresh_batches
                epoch = self._write_epoch
                by_sink = dict(self._sink_failures_by_name)
            label = (("component", component),)
            samples = [
                Sample("ides_service_hosts", "gauge",
                       "Hosts registered in the vector store.",
                       label, self.n_hosts),
                Sample("ides_service_landmarks", "gauge",
                       "Hosts acting as the landmark reference set.",
                       label, len(self._landmark_ids)),
                Sample("ides_service_write_epoch", "counter",
                       "Vector writes and evictions applied.",
                       label, epoch),
                Sample("ides_service_vectors_refreshed_total", "counter",
                       "Host vectors updated through the refresh path.",
                       label, refreshed),
                Sample("ides_service_refresh_batches_total", "counter",
                       "Bulk refresh flushes applied.", label, batches),
            ]
            for name, count in sorted(by_sink.items()):
                samples.append(Sample(
                    "ides_service_update_sink_failures_total", "counter",
                    "Replication sink invocations that raised.",
                    (("component", component), ("sink", name)), count,
                ))
            return samples

        registry.register_collector(collect)
