"""Serving layer: the fitted model as an online query service.

The IDES architecture (paper Section 5) is a *service*: a server
factors the landmark matrix, hosts solve small least-squares problems,
and from then on any distance is one dot product. This package is the
layer the paper stops short of building — the part that actually
serves the traffic:

* :mod:`~repro.serving.store` — O(1) host-vector directories, in
  memory or hash-sharded, thread-safe under concurrent refresh;
* :mod:`~repro.serving.engine` — point / pairs / one-to-many /
  many-to-many / k-nearest queries as dense NumPy batch products;
* :mod:`~repro.serving.cache` — LRU + TTL memoization of point
  queries with per-host invalidation and an injectable clock;
* :mod:`~repro.serving.service` — the :class:`DistanceService` facade
  with incremental registration, bulk refresh updates, snapshots and
  health/staleness reporting;
* :mod:`~repro.serving.frontend` — the concurrent asyncio tier:
  :class:`AsyncDistanceFrontend` coalesces point queries from many
  clients into dense micro-batches;
* :mod:`~repro.serving.refresh` — :class:`RefreshWorker` streams RTT
  observations through online trackers back into the store while
  queries keep flowing;
* :mod:`~repro.serving.snapshot` — portable ``.npz`` serialization.
"""

from .cache import CacheStats, PredictionCache
from .engine import QueryEngine
from .frontend import (
    AsyncDistanceFrontend,
    ConcurrencyReport,
    FrontendStats,
    measure_concurrent_throughput,
    measure_per_query_throughput,
)
from .refresh import (
    RefreshStats,
    RefreshWorker,
    RttObservation,
    replay_observations,
    synthetic_drift_stream,
)
from .service import DistanceService
from .snapshot import ServiceSnapshot, load_snapshot, save_snapshot
from .store import InMemoryVectorStore, ShardedVectorStore, VectorStore, shard_of

__all__ = [
    "AsyncDistanceFrontend",
    "CacheStats",
    "ConcurrencyReport",
    "DistanceService",
    "FrontendStats",
    "InMemoryVectorStore",
    "PredictionCache",
    "QueryEngine",
    "RefreshStats",
    "RefreshWorker",
    "RttObservation",
    "ServiceSnapshot",
    "ShardedVectorStore",
    "VectorStore",
    "load_snapshot",
    "measure_concurrent_throughput",
    "measure_per_query_throughput",
    "replay_observations",
    "save_snapshot",
    "shard_of",
    "synthetic_drift_stream",
]
