"""Serving layer: the fitted model as an online query service.

The IDES architecture (paper Section 5) is a *service*: a server
factors the landmark matrix, hosts solve small least-squares problems,
and from then on any distance is one dot product. This package is the
layer the paper stops short of building — the part that actually
serves the traffic:

* :mod:`~repro.serving.store` — O(1) host-vector directories, in
  memory or hash-sharded, thread-safe under concurrent refresh;
* :mod:`~repro.serving.engine` — point / pairs / one-to-many /
  many-to-many / k-nearest queries as dense NumPy batch products;
* :mod:`~repro.serving.cache` — LRU + TTL memoization of point
  queries with per-host invalidation and an injectable clock;
* :mod:`~repro.serving.service` — the :class:`DistanceService` facade
  with incremental registration, bulk refresh updates, snapshots and
  health/staleness reporting;
* :mod:`~repro.serving.frontend` — the concurrent asyncio tier:
  :class:`AsyncDistanceFrontend` coalesces point queries from many
  clients into dense micro-batches;
* :mod:`~repro.serving.refresh` — :class:`RefreshWorker` streams RTT
  observations through online trackers back into the store while
  queries keep flowing;
* :mod:`~repro.serving.snapshot` — portable ``.npz`` serialization;
* :mod:`~repro.serving.journal` — the per-shard update journal:
  monotone seq numbers over every mutating op, a bounded in-memory
  ring plus optional on-disk segments, and :func:`store_digest` for
  order-independent content comparison between replicas;
* :mod:`~repro.serving.observability` — the telemetry plane: a
  process-wide :class:`MetricsRegistry` (Prometheus-text + JSON
  exposition), distributed :class:`Tracer` spans threaded through the
  wire protocol, and a tiny asyncio HTTP ``/metrics`` endpoint;
* :mod:`~repro.serving.transport` — the cross-process tier: a framed
  binary wire protocol (``docs/wire-protocol.md``), :class:`ShardServer`
  processes each owning one store shard, and
  :class:`ShardedQueryRouter` scatter-gathering batches over sockets
  behind the same frontend.

Thread-safety at a glance (details in each module): stores and the
cache serialize on internal locks, so refresh threads and query
threads interleave safely; ``DistanceService`` guards membership,
write stamps and the write epoch under one RLock and re-checks
membership inside it so refreshes cannot resurrect evicted hosts;
cache writers are epoch-guarded (capture ``write_epoch`` before
computing, publish through ``cache_put_*_if_current``) so a stale
prediction can never overwrite a refresh's invalidation; the asyncio
frontend and router are single-event-loop objects, with
:class:`~repro.serving.transport.ShardReplicator` as the documented
bridge from thread-world writers. Time is always an injectable
``clock`` so TTL and staleness tests advance it instead of sleeping.
"""

from .cache import CacheStats, PredictionCache, StalePrediction
from .engine import QueryEngine
from .journal import JournalEntry, ShardJournal, store_digest
from .observability import (
    MetricsRegistry,
    TelemetryServer,
    TraceContext,
    Tracer,
    build_trace_trees,
    configure_tracing,
    format_trace_tree,
    get_registry,
    get_tracer,
    load_spans,
    parse_prometheus_text,
    scrape,
    set_registry,
)
from .frontend import (
    AdaptiveBatchPolicy,
    AsyncDistanceFrontend,
    ConcurrencyReport,
    FixedWindowPolicy,
    FrontendStats,
    PolicyReport,
    SimulatedDispatchBackend,
    measure_batching_policy,
    measure_concurrent_throughput,
    measure_per_query_throughput,
)
from .refresh import (
    RefreshStats,
    RefreshWorker,
    RttObservation,
    replay_observations,
    synthetic_drift_stream,
)
from .service import DistanceService
from .snapshot import ServiceSnapshot, load_snapshot, save_snapshot
from .store import (
    InMemoryVectorStore,
    ShardedVectorStore,
    VectorStore,
    group_by_shard,
    shard_of,
)
from .transport import (
    ChaosClient,
    ChaosSchedule,
    PipelineReport,
    RemoteShardClient,
    ReplicaGroup,
    ShardReplicator,
    ShardServer,
    ShardedQueryRouter,
    connect_replica_router,
    connect_router,
    measure_pipelined_speedup,
    spawn_shard_process,
)

__all__ = [
    "AdaptiveBatchPolicy",
    "AsyncDistanceFrontend",
    "CacheStats",
    "ChaosClient",
    "ChaosSchedule",
    "ConcurrencyReport",
    "DistanceService",
    "FixedWindowPolicy",
    "FrontendStats",
    "InMemoryVectorStore",
    "JournalEntry",
    "MetricsRegistry",
    "PipelineReport",
    "PolicyReport",
    "PredictionCache",
    "StalePrediction",
    "QueryEngine",
    "RefreshStats",
    "RefreshWorker",
    "RemoteShardClient",
    "ReplicaGroup",
    "RttObservation",
    "ServiceSnapshot",
    "ShardJournal",
    "ShardReplicator",
    "ShardServer",
    "SimulatedDispatchBackend",
    "ShardedQueryRouter",
    "ShardedVectorStore",
    "TelemetryServer",
    "TraceContext",
    "Tracer",
    "VectorStore",
    "build_trace_trees",
    "configure_tracing",
    "connect_replica_router",
    "connect_router",
    "format_trace_tree",
    "get_registry",
    "get_tracer",
    "group_by_shard",
    "load_spans",
    "load_snapshot",
    "measure_batching_policy",
    "measure_concurrent_throughput",
    "measure_pipelined_speedup",
    "measure_per_query_throughput",
    "parse_prometheus_text",
    "replay_observations",
    "save_snapshot",
    "scrape",
    "set_registry",
    "shard_of",
    "spawn_shard_process",
    "store_digest",
    "synthetic_drift_stream",
]
