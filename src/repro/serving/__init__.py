"""Serving layer: the fitted model as an online query service.

The IDES architecture (paper Section 5) is a *service*: a server
factors the landmark matrix, hosts solve small least-squares problems,
and from then on any distance is one dot product. This package is the
layer the paper stops short of building — the part that actually
serves the traffic:

* :mod:`~repro.serving.store` — O(1) host-vector directories, in
  memory or hash-sharded;
* :mod:`~repro.serving.engine` — point / one-to-many / many-to-many /
  k-nearest queries as dense NumPy batch products;
* :mod:`~repro.serving.cache` — LRU + TTL memoization of point
  queries with per-host invalidation;
* :mod:`~repro.serving.service` — the :class:`DistanceService` facade
  with incremental registration, eviction, snapshots and health
  reporting;
* :mod:`~repro.serving.snapshot` — portable ``.npz`` serialization.
"""

from .cache import CacheStats, PredictionCache
from .engine import QueryEngine
from .service import DistanceService
from .snapshot import ServiceSnapshot, load_snapshot, save_snapshot
from .store import InMemoryVectorStore, ShardedVectorStore, VectorStore, shard_of

__all__ = [
    "CacheStats",
    "DistanceService",
    "InMemoryVectorStore",
    "PredictionCache",
    "QueryEngine",
    "ServiceSnapshot",
    "ShardedVectorStore",
    "VectorStore",
    "load_snapshot",
    "save_snapshot",
    "shard_of",
]
