"""Background vector refresh: streamed RTT samples into the store.

The serving loop the paper stops short of: coordinates rot as routes
change, so a deployed :class:`~repro.serving.DistanceService` needs a
maintenance path that never stops the query traffic.
:class:`RefreshWorker` consumes a stream of
:class:`RttObservation` samples (from a measurement campaign, a
replayed trace, or live probes), feeds each one through the host's
:class:`~repro.ides.updates.OnlineVectorTracker`, and periodically
flushes the drifted vectors back into the service in one bulk update —
store write, per-host cache invalidation and staleness stamp all under
the service lock. Any single store gather sees either the old or the
new vectors, never a torn row map; a multi-gather query (e.g. a
many-to-many block, which gathers sources and destinations
separately) may straddle an update boundary and mix epochs.

Observation streams are plain iterables; :func:`replay_observations`
builds one from any (possibly NaN-masked) RTT matrix, and
:func:`synthetic_drift_stream` fabricates a drifting world from the
service's own predictions for demos and tests.

The flush path composes with the service's invariants rather than
duplicating them: membership is re-checked *inside* the service lock
(an eviction racing a flush surfaces as ``ValidationError`` here, and
the worker drops the vanished hosts and retries with the survivors),
and the flush bumps the write epoch so concurrently-computed cache
entries are discarded. In a cross-process deployment the same flush
fans out to shard servers through any sinks attached with
:meth:`DistanceService.add_update_sink` — e.g.
:class:`~repro.serving.transport.ShardReplicator` — so one refresh
stream maintains both the local store and the remote cluster.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from .._validation import as_rng
from ..exceptions import ValidationError
from ..ides.updates import OnlineVectorTracker
from .service import DistanceService

__all__ = [
    "RttObservation",
    "RefreshStats",
    "RefreshWorker",
    "replay_observations",
    "synthetic_drift_stream",
]


@dataclass(frozen=True)
class RttObservation:
    """One streamed RTT sample between a host and a reference node.

    Attributes:
        host_id: the host whose vectors the sample refines.
        reference_id: the already-registered node measured against.
        rtt: the measured round-trip (or one-way) distance.
        outgoing: True for a host -> reference sample (updates the
            host's outgoing vector), False for reference -> host
            (updates the incoming vector).
    """

    host_id: object
    reference_id: object
    rtt: float
    outgoing: bool = True


@dataclass(frozen=True)
class RefreshStats:
    """Counters describing a refresh worker's progress.

    Attributes:
        samples_applied: observations that updated a tracker.
        samples_skipped: observations dropped (unknown host/reference,
            non-finite RTT, degenerate reference vector).
        flushes: bulk updates pushed into the service.
        vectors_flushed: host-vector updates applied across flushes.
        hosts_tracked: hosts with a live tracker.
        pending_hosts: hosts with unflushed tracker state.
        mean_abs_residual: EWMA of |measured - predicted| at observe
            time — the convergence signal (None before any sample).
    """

    samples_applied: int
    samples_skipped: int
    flushes: int
    vectors_flushed: int
    hosts_tracked: int
    pending_hosts: int
    mean_abs_residual: float | None

    def __str__(self) -> str:
        residual = (
            f"{self.mean_abs_residual:.3f}"
            if self.mean_abs_residual is not None
            else "n/a"
        )
        return (
            f"applied={self.samples_applied} skipped={self.samples_skipped} "
            f"flushes={self.flushes} flushed_vectors={self.vectors_flushed} "
            f"tracked={self.hosts_tracked} pending={self.pending_hosts} "
            f"ewma_residual={residual}"
        )


def _stack_samples(
    batch: list[RttObservation],
    references: dict,
    positions: Sequence[int],
    outgoing: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Stack one group's RTTs and reference-vector rows in stream order.

    Outgoing samples update against the reference's *incoming* vector
    and vice versa — both bulk paths resolve the direction here, once.
    """
    rtts = np.fromiter(
        (batch[p].rtt for p in positions), dtype=float, count=len(positions)
    )
    rows = np.stack(
        [
            references[batch[p].reference_id].incoming
            if outgoing
            else references[batch[p].reference_id].outgoing
            for p in positions
        ]
    )
    return rtts, rows


class RefreshWorker:
    """Streams RTT observations through per-host trackers into a service.

    Thread-safe: :meth:`observe` may run on a background thread while
    the event loop serves queries; every flush goes through
    :meth:`DistanceService.apply_vector_updates`, which invalidates the
    prediction cache for exactly the refreshed hosts.

    Args:
        service: the service whose vectors to maintain.
        learning_rate: tracker step size (see
            :class:`~repro.ides.updates.OnlineVectorTracker`).
        flush_every: push tracker state into the service after this
            many applied samples (plus a final flush on stream end).
        ewma_alpha: smoothing factor of the residual EWMA.
    """

    def __init__(
        self,
        service: DistanceService,
        learning_rate: float = 0.3,
        flush_every: int = 256,
        ewma_alpha: float = 0.05,
    ):
        if int(flush_every) < 1:
            raise ValidationError(f"flush_every must be >= 1, got {flush_every}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValidationError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.service = service
        self.learning_rate = float(learning_rate)
        self.flush_every = int(flush_every)
        self.ewma_alpha = float(ewma_alpha)
        self._trackers: dict[object, OnlineVectorTracker] = {}
        # Tracker state lives in pooled (capacity, d) matrices — each
        # tracker mutates its own row in place, so a flush gathers the
        # dirty hosts with one fancy index instead of re-stacking
        # per-tracker copies.
        self._row_of: dict[object, int] = {}
        self._free_rows: list[int] = []
        self._out_pool: np.ndarray | None = None
        self._in_pool: np.ndarray | None = None
        self._dirty: set = set()
        self._since_flush = 0
        self._samples_applied = 0
        self._samples_skipped = 0
        self._flushes = 0
        self._vectors_flushed = 0
        self._residual_ewma: float | None = None
        self._lock = threading.RLock()
        self._thread: threading.Thread | None = None
        self._stop_event = threading.Event()
        #: Optional flush-latency histogram, attached by
        #: :meth:`bind_metrics`; ``None`` keeps flushes uninstrumented.
        self._flush_seconds = None

    def bind_metrics(self, registry) -> None:
        """Expose the worker through a metrics registry.

        The :class:`RefreshStats` counters become scrape-time collector
        samples and non-empty flushes land their wall time in the
        ``ides_refresh_flush_seconds`` histogram; the per-observation
        hot path stays untouched.
        """
        from .observability.metrics import Sample

        self._flush_seconds = registry.histogram(
            "ides_refresh_flush_seconds",
            "Wall time of non-empty refresh flushes into the service.",
        )

        def collect():
            stats = self.stats()
            samples = [
                Sample("ides_refresh_samples_applied_total", "counter",
                       "RTT observations folded into trackers.",
                       (), stats.samples_applied),
                Sample("ides_refresh_samples_skipped_total", "counter",
                       "Observations skipped (unknown host, non-finite).",
                       (), stats.samples_skipped),
                Sample("ides_refresh_flushes_total", "counter",
                       "Flushes pushed into the service.", (), stats.flushes),
                Sample("ides_refresh_vectors_flushed_total", "counter",
                       "Host vectors written by flushes.",
                       (), stats.vectors_flushed),
                Sample("ides_refresh_hosts_tracked", "gauge",
                       "Hosts with live trackers.", (), stats.hosts_tracked),
                Sample("ides_refresh_pending_hosts", "gauge",
                       "Dirty hosts awaiting the next flush.",
                       (), stats.pending_hosts),
            ]
            if stats.mean_abs_residual is not None:
                samples.append(
                    Sample("ides_refresh_mean_abs_residual", "gauge",
                           "EWMA of pre-update absolute residuals.",
                           (), stats.mean_abs_residual)
                )
            return samples

        registry.register_collector(collect)

    # ------------------------------------------------------------------ #
    # observation path
    # ------------------------------------------------------------------ #

    def observe(self, observation: RttObservation) -> float | None:
        """Feed one sample; returns the pre-update residual, or None
        when the sample was skipped."""
        host_id = observation.host_id
        reference_id = observation.reference_id
        with self._lock:
            store = self.service.store
            if host_id not in store or reference_id not in store:
                self._samples_skipped += 1
                return None
            tracker = self._tracker_for(host_id, store)
            reference = store.get(reference_id)
            if observation.outgoing:
                residual = tracker.observe_out(observation.rtt, reference.incoming)
            else:
                residual = tracker.observe_in(observation.rtt, reference.outgoing)
            if not np.isfinite(residual):
                self._samples_skipped += 1
                return None
            self._samples_applied += 1
            self._dirty.add(host_id)
            self._since_flush += 1
            magnitude = abs(residual)
            if self._residual_ewma is None:
                self._residual_ewma = magnitude
            else:
                self._residual_ewma += self.ewma_alpha * (
                    magnitude - self._residual_ewma
                )
            if self._since_flush >= self.flush_every:
                self._flush_locked()
            return residual

    def observe_many(self, stream: Iterable[RttObservation]) -> int:
        """Feed a whole stream through the bulk path.

        The stream is drained in chunks sized to the flush cadence;
        each chunk takes the lock once, groups its samples by (host,
        direction), and applies every group as one stacked ndarray
        update through :meth:`OnlineVectorTracker.observe_many` — the
        result matches feeding the samples one at a time through
        :meth:`observe`, at a fraction of the per-sample cost. Returns
        how many samples were applied.
        """
        iterator = iter(stream)
        applied = 0
        while True:
            with self._lock:
                budget = max(self.flush_every - self._since_flush, 1)
            chunk = list(itertools.islice(iterator, budget))
            if not chunk:
                return applied
            applied += self.observe_batch(chunk)

    def observe_batch(self, observations: Sequence[RttObservation]) -> int:
        """Apply one batch of samples under a single lock acquisition.

        The bulk fast path: samples are grouped by (host, direction)
        preserving stream order, reference vectors are resolved once
        per distinct reference, and each group lands as one stacked
        tracker update. Returns the number of samples applied; the
        flush threshold is checked once, after the whole batch.
        """
        batch = list(observations)
        if not batch:
            return 0
        with self._lock:
            return self._observe_batch_locked(batch)

    #: A (host, direction) group at least this large is applied through
    #: the tracker's own stacked update (one triangular solve); smaller
    #: groups are merged into cross-host rounds instead, where the
    #: per-group overhead would dominate.
    _BULK_GROUP_THRESHOLD = 8

    def _observe_batch_locked(self, batch: list[RttObservation]) -> int:
        store = self.service.store
        groups: dict[tuple, list[int]] = {}
        references: dict[object, object] = {}
        skipped = 0
        for position, observation in enumerate(batch):
            host_id = observation.host_id
            reference_id = observation.reference_id
            if host_id not in store:
                skipped += 1
                continue
            if reference_id not in references:
                if reference_id not in store:
                    skipped += 1
                    continue
                references[reference_id] = store.get(reference_id)
            groups.setdefault((host_id, observation.outgoing), []).append(
                position
            )

        applied = 0
        magnitudes = np.full(len(batch), np.nan)
        rounds: dict[bool, list[tuple]] = {True: [], False: []}
        for (host_id, outgoing), positions in groups.items():
            tracker = self._tracker_for(host_id, store)
            if len(positions) < self._BULK_GROUP_THRESHOLD:
                rounds[outgoing].append((host_id, positions))
                continue
            # Concentrated group (a re-probe campaign on one host):
            # one stacked tracker update, one triangular solve.
            rtts, rows = _stack_samples(batch, references, positions, outgoing)
            residuals = tracker.observe_many(rtts, rows, outgoing=outgoing)
            valid = np.isfinite(residuals)
            group_applied = int(valid.sum())
            skipped += len(positions) - group_applied
            if group_applied:
                applied += group_applied
                self._dirty.add(host_id)
                magnitudes[np.asarray(positions)[valid]] = np.abs(
                    residuals[valid]
                )

        for outgoing, members in rounds.items():
            scattered_applied, scattered_skipped = self._apply_rounds(
                batch, references, members, outgoing, magnitudes
            )
            applied += scattered_applied
            skipped += scattered_skipped

        self._samples_applied += applied
        self._samples_skipped += skipped
        self._since_flush += applied
        self._fold_residual_ewma(magnitudes[np.isfinite(magnitudes)])
        if self._since_flush >= self.flush_every:
            self._flush_locked()
        return applied

    def _apply_rounds(
        self,
        batch: list[RttObservation],
        references: dict,
        members: list[tuple],
        outgoing: bool,
        magnitudes: np.ndarray,
    ) -> tuple[int, int]:
        """Apply many hosts' small sample groups as cross-host rounds.

        Round ``r`` applies the ``r``-th surviving sample of *every*
        host in one gather / einsum / scatter triple against the pooled
        state matrix — each round touches distinct pool rows, so the
        scatter is exact, and within a host the samples keep their
        stream order, so the result matches the per-sample path bit for
        bit.
        """
        if not members:
            return 0, 0
        positions: list[int] = []
        pool_rows: list[int] = []
        dirty_hosts: list[object] = []
        for host_id, host_positions in members:
            positions.extend(host_positions)
            pool_rows.extend([self._row_of[host_id]] * len(host_positions))
            dirty_hosts.append(host_id)
        position_array = np.asarray(positions, dtype=np.intp)
        row_array = np.asarray(pool_rows, dtype=np.intp)
        rtts, refs = _stack_samples(batch, references, positions, outgoing)
        norms_sq = np.einsum("ij,ij->i", refs, refs)
        valid = np.isfinite(rtts) & (norms_sq > 0)
        invalid_count = int((~valid).sum())
        if invalid_count:
            position_array = position_array[valid]
            row_array = row_array[valid]
            rtts = rtts[valid]
            refs = refs[valid]
            norms_sq = norms_sq[valid]
        count = rtts.shape[0]
        if count == 0:
            return 0, invalid_count

        # Rank of each sample within its host's surviving subsequence:
        # samples sharing a rank touch distinct rows and form one round.
        order = np.argsort(row_array, kind="stable")
        sorted_rows = row_array[order]
        run_start = np.empty(count, dtype=bool)
        run_start[0] = True
        np.not_equal(sorted_rows[1:], sorted_rows[:-1], out=run_start[1:])
        indices = np.arange(count)
        rank_sorted = indices - np.maximum.accumulate(
            np.where(run_start, indices, 0)
        )
        ranks = np.empty(count, dtype=np.intp)
        ranks[order] = rank_sorted

        pool = self._out_pool if outgoing else self._in_pool
        rate = self.learning_rate
        residuals = np.empty(count)
        for round_index in range(int(ranks.max()) + 1):
            in_round = ranks == round_index
            rows_r = row_array[in_round]
            refs_r = refs[in_round]
            state = pool[rows_r]
            residual = rtts[in_round] - np.einsum("ij,ij->i", state, refs_r)
            pool[rows_r] = state + (
                rate * residual / norms_sq[in_round]
            )[:, None] * refs_r
            residuals[in_round] = residual

        magnitudes[position_array] = np.abs(residuals)
        # Per-tracker bookkeeping: counts per pool row, mapped back.
        counts = {row: 0 for row in pool_rows}
        for row in row_array.tolist():
            counts[row] += 1
        for host_id in dirty_hosts:
            row_count = counts.get(self._row_of[host_id], 0)
            if row_count:
                self._trackers[host_id].samples_seen += row_count
                self._dirty.add(host_id)
        return count, invalid_count

    def _fold_residual_ewma(self, magnitudes: np.ndarray) -> None:
        """Fold a stream-ordered run of residual magnitudes into the EWMA.

        Closed form of ``m`` sequential updates
        ``e <- e + alpha * (x_i - e)``, so the bulk path lands on the
        same value the per-sample path would.
        """
        if magnitudes.size == 0:
            return
        if self._residual_ewma is None:
            self._residual_ewma = float(magnitudes[0])
            magnitudes = magnitudes[1:]
            if magnitudes.size == 0:
                return
        alpha = self.ewma_alpha
        decay = (1.0 - alpha) ** np.arange(magnitudes.size - 1, -1, -1)
        self._residual_ewma = float(
            (1.0 - alpha) ** magnitudes.size * self._residual_ewma
            + alpha * np.dot(decay, magnitudes)
        )

    # ------------------------------------------------------------------ #
    # pooled tracker storage
    # ------------------------------------------------------------------ #

    def _tracker_for(self, host_id: object, store) -> OnlineVectorTracker:
        tracker = self._trackers.get(host_id)
        if tracker is None:
            initial = store.get(host_id)
            row = self._allocate_row(initial.outgoing.shape[0])
            tracker = OnlineVectorTracker(
                initial,
                learning_rate=self.learning_rate,
                storage=(self._out_pool[row], self._in_pool[row]),
            )
            self._trackers[host_id] = tracker
            self._row_of[host_id] = row
        return tracker

    def _allocate_row(self, dimension: int) -> int:
        if self._out_pool is None:
            capacity = 64
            self._out_pool = np.empty((capacity, dimension))
            self._in_pool = np.empty((capacity, dimension))
            self._free_rows = list(range(capacity - 1, -1, -1))
        if not self._free_rows:
            previous = self._out_pool.shape[0]
            capacity = previous * 2
            self._out_pool = np.resize(self._out_pool, (capacity, dimension))
            self._in_pool = np.resize(self._in_pool, (capacity, dimension))
            # The old rows were realloc-copied; rebind every live
            # tracker's views onto the new backing matrices.
            for host_id, row in self._row_of.items():
                self._trackers[host_id].bind_storage(
                    self._out_pool[row], self._in_pool[row]
                )
            self._free_rows = list(range(capacity - 1, previous - 1, -1))
        return self._free_rows.pop()

    def _release_row(self, host_id: object) -> None:
        row = self._row_of.pop(host_id, None)
        if row is not None:
            self._free_rows.append(row)

    # ------------------------------------------------------------------ #
    # flush path
    # ------------------------------------------------------------------ #

    def flush(self) -> int:
        """Push all unflushed tracker state into the service now.

        Returns the number of hosts updated.
        """
        with self._lock:
            return self._flush_locked()

    def _flush_locked(self) -> int:
        self._since_flush = 0
        if not self._dirty:
            return 0
        started = (
            time.perf_counter() if self._flush_seconds is not None else 0.0
        )
        store = self.service.store
        pending = list(self._dirty)
        self._dirty.clear()
        # The service re-checks membership under its own lock, so an
        # eviction racing this flush surfaces as ValidationError; drop
        # the vanished hosts and retry with the survivors.
        for _ in range(3):
            host_ids, gone = [], []
            for host_id in pending:
                (host_ids if host_id in store else gone).append(host_id)
            for host_id in gone:  # evicted mid-stream: drop the tracker
                self._trackers.pop(host_id, None)
                self._release_row(host_id)
            if not host_ids:
                return 0
            # Tracker state lives in the pooled matrices, so the flush
            # payload is two fancy-index gathers — no per-tracker
            # copies, no re-stacking.
            rows = np.fromiter(
                (self._row_of[i] for i in host_ids),
                dtype=np.intp,
                count=len(host_ids),
            )
            outgoing = self._out_pool[rows]
            incoming = self._in_pool[rows]
            try:
                updated = self.service.apply_vector_updates(
                    host_ids, outgoing, incoming
                )
            except ValidationError:
                pending = host_ids
                continue
            self._flushes += 1
            self._vectors_flushed += updated
            if self._flush_seconds is not None:
                self._flush_seconds.observe(time.perf_counter() - started)
            return updated
        return 0  # pragma: no cover - pathological eviction churn

    def forget(self, host_id: object) -> bool:
        """Drop a host's tracker (e.g. after eviction)."""
        with self._lock:
            self._dirty.discard(host_id)
            self._release_row(host_id)
            return self._trackers.pop(host_id, None) is not None

    # ------------------------------------------------------------------ #
    # drive modes
    # ------------------------------------------------------------------ #

    def run(
        self,
        stream: Iterable[RttObservation],
        stop_event: threading.Event | None = None,
    ) -> int:
        """Drain a stream synchronously (with a final flush).

        Returns the number of samples applied. ``stop_event`` aborts
        between observations — the handle the background mode uses.
        """
        applied = 0
        try:
            for observation in stream:
                if stop_event is not None and stop_event.is_set():
                    break
                if self.observe(observation) is not None:
                    applied += 1
        finally:
            self.flush()
        return applied

    @property
    def running(self) -> bool:
        """Whether a background thread is draining a stream."""
        return self._thread is not None and self._thread.is_alive()

    def start(self, stream: Iterable[RttObservation]) -> None:
        """Drain ``stream`` on a daemon thread until exhausted/stopped."""
        if self.running:
            raise ValidationError("refresh worker is already running")
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self.run,
            args=(stream, self._stop_event),
            name="distance-refresh-worker",
            daemon=True,
        )
        self._thread.start()

    def stop(self, timeout: float | None = 5.0) -> bool:
        """Signal the background thread and wait for its final flush.

        Returns True when the thread terminated within ``timeout``.
        On False the worker keeps the handle — ``running`` stays
        truthful and a later :meth:`stop` can finish the join —
        because the stream only notices the stop signal between
        observations (a blocked generator can hold the thread up).
        """
        if self._thread is None:
            return True
        self._stop_event.set()
        self._thread.join(timeout)
        if self._thread.is_alive():
            return False
        self._thread = None
        return True

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def stats(self) -> RefreshStats:
        """Snapshot of the worker counters."""
        with self._lock:
            return RefreshStats(
                samples_applied=self._samples_applied,
                samples_skipped=self._samples_skipped,
                flushes=self._flushes,
                vectors_flushed=self._vectors_flushed,
                hosts_tracked=len(self._trackers),
                pending_hosts=len(self._dirty),
                mean_abs_residual=self._residual_ewma,
            )


# ---------------------------------------------------------------------- #
# observation streams
# ---------------------------------------------------------------------- #


def replay_observations(
    distances: object,
    ids: Sequence,
    host_ids: Sequence | None = None,
    reference_ids: Sequence | None = None,
    samples: int = 1000,
    seed: int | np.random.Generator | None = None,
    both_directions: bool = True,
) -> Iterator[RttObservation]:
    """Replay random samples of an RTT matrix as an observation stream.

    Args:
        distances: ``(n, n)`` matrix over ``ids`` (row -> column);
            NaN entries (e.g. from a masked
            :class:`~repro.measurement.CampaignResult`) are skipped.
        ids: identifier of each matrix row/column.
        host_ids: hosts to refresh; defaults to every id.
        reference_ids: measurement targets; defaults to every id.
        samples: number of (host, reference) draws.
        seed: randomness source.
        both_directions: emit the reference -> host sample too.

    Yields:
        :class:`RttObservation` samples in random order.
    """
    matrix = np.asarray(distances, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValidationError(f"expected a square matrix, got {matrix.shape}")
    if len(ids) != matrix.shape[0]:
        raise ValidationError(
            f"got {len(ids)} ids for a {matrix.shape[0]}-row matrix"
        )
    index_of = {host_id: row for row, host_id in enumerate(ids)}
    hosts = list(host_ids) if host_ids is not None else list(ids)
    references = list(reference_ids) if reference_ids is not None else list(ids)
    missing = [i for i in hosts + references if i not in index_of]
    if missing:
        raise ValidationError(f"ids not present in the matrix: {missing[:5]!r}")
    rng = as_rng(seed)
    host_draws = rng.integers(0, len(hosts), int(samples))
    reference_draws = rng.integers(0, len(references), int(samples))
    for host_pick, reference_pick in zip(host_draws, reference_draws):
        host = hosts[int(host_pick)]
        reference = references[int(reference_pick)]
        if host == reference:
            continue
        row, column = index_of[host], index_of[reference]
        out_rtt = matrix[row, column]
        if np.isfinite(out_rtt):
            yield RttObservation(host, reference, float(out_rtt), outgoing=True)
        if both_directions:
            in_rtt = matrix[column, row]
            if np.isfinite(in_rtt):
                yield RttObservation(host, reference, float(in_rtt), outgoing=False)


def synthetic_drift_stream(
    service: DistanceService,
    host_ids: Sequence | None = None,
    reference_ids: Sequence | None = None,
    samples: int = 1000,
    drift: float = 0.2,
    noise: float = 0.0,
    seed: int | np.random.Generator | None = None,
) -> Iterator[RttObservation]:
    """A drifting world derived from the service's own predictions.

    Each host gets a persistent multiplicative drift factor drawn from
    ``1 +- drift``; every emitted sample is the service's predicted
    distance scaled by that factor (plus optional lognormal-ish jitter)
    — so a tracker that converges drives its residuals toward zero
    against a world that genuinely moved away from the stored vectors.

    Args:
        service: the service whose predictions seed the drifted truth.
        host_ids: hosts to drift; defaults to non-landmark hosts.
        reference_ids: references; defaults to the landmark set.
        samples: (host, reference) draws.
        drift: half-width of the uniform per-host drift factor.
        noise: per-sample relative Gaussian jitter (0 disables).
        seed: randomness source.
    """
    rng = as_rng(seed)
    if reference_ids is None:
        reference_ids = service.landmark_ids or service.known_hosts()
    references = list(reference_ids)
    if host_ids is None:
        landmark_set = set(references)
        host_ids = [i for i in service.known_hosts() if i not in landmark_set]
    hosts = list(host_ids)
    if not hosts or not references:
        raise ValidationError("need at least one host and one reference")
    # Snapshot the base predictions up front: the drifted "truth" must
    # stand still while the worker refreshes vectors underneath it,
    # otherwise the target would chase its own updates.
    host_to_reference = service.engine.many_to_many(hosts, references)
    reference_to_host = service.engine.many_to_many(references, hosts)
    factors = 1.0 + rng.uniform(-drift, drift, len(hosts))
    host_draws = rng.integers(0, len(hosts), int(samples))
    reference_draws = rng.integers(0, len(references), int(samples))
    for host_pick, reference_pick in zip(host_draws, reference_draws):
        row, column = int(host_pick), int(reference_pick)
        host = hosts[row]
        reference = references[column]
        if host == reference:
            continue
        factor = float(factors[row])
        out_rtt = float(host_to_reference[row, column]) * factor
        in_rtt = float(reference_to_host[column, row]) * factor
        if noise > 0:
            out_rtt *= 1.0 + float(rng.normal(0.0, noise))
            in_rtt *= 1.0 + float(rng.normal(0.0, noise))
        yield RttObservation(host, reference, out_rtt, outgoing=True)
        yield RttObservation(host, reference, in_rtt, outgoing=False)
