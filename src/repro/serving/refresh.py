"""Background vector refresh: streamed RTT samples into the store.

The serving loop the paper stops short of: coordinates rot as routes
change, so a deployed :class:`~repro.serving.DistanceService` needs a
maintenance path that never stops the query traffic.
:class:`RefreshWorker` consumes a stream of
:class:`RttObservation` samples (from a measurement campaign, a
replayed trace, or live probes), feeds each one through the host's
:class:`~repro.ides.updates.OnlineVectorTracker`, and periodically
flushes the drifted vectors back into the service in one bulk update —
store write, per-host cache invalidation and staleness stamp all under
the service lock. Any single store gather sees either the old or the
new vectors, never a torn row map; a multi-gather query (e.g. a
many-to-many block, which gathers sources and destinations
separately) may straddle an update boundary and mix epochs.

Observation streams are plain iterables; :func:`replay_observations`
builds one from any (possibly NaN-masked) RTT matrix, and
:func:`synthetic_drift_stream` fabricates a drifting world from the
service's own predictions for demos and tests.

The flush path composes with the service's invariants rather than
duplicating them: membership is re-checked *inside* the service lock
(an eviction racing a flush surfaces as ``ValidationError`` here, and
the worker drops the vanished hosts and retries with the survivors),
and the flush bumps the write epoch so concurrently-computed cache
entries are discarded. In a cross-process deployment the same flush
fans out to shard servers through any sinks attached with
:meth:`DistanceService.add_update_sink` — e.g.
:class:`~repro.serving.transport.ShardReplicator` — so one refresh
stream maintains both the local store and the remote cluster.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from .._validation import as_rng
from ..exceptions import ValidationError
from ..ides.updates import OnlineVectorTracker
from .service import DistanceService

__all__ = [
    "RttObservation",
    "RefreshStats",
    "RefreshWorker",
    "replay_observations",
    "synthetic_drift_stream",
]


@dataclass(frozen=True)
class RttObservation:
    """One streamed RTT sample between a host and a reference node.

    Attributes:
        host_id: the host whose vectors the sample refines.
        reference_id: the already-registered node measured against.
        rtt: the measured round-trip (or one-way) distance.
        outgoing: True for a host -> reference sample (updates the
            host's outgoing vector), False for reference -> host
            (updates the incoming vector).
    """

    host_id: object
    reference_id: object
    rtt: float
    outgoing: bool = True


@dataclass(frozen=True)
class RefreshStats:
    """Counters describing a refresh worker's progress.

    Attributes:
        samples_applied: observations that updated a tracker.
        samples_skipped: observations dropped (unknown host/reference,
            non-finite RTT, degenerate reference vector).
        flushes: bulk updates pushed into the service.
        vectors_flushed: host-vector updates applied across flushes.
        hosts_tracked: hosts with a live tracker.
        pending_hosts: hosts with unflushed tracker state.
        mean_abs_residual: EWMA of |measured - predicted| at observe
            time — the convergence signal (None before any sample).
    """

    samples_applied: int
    samples_skipped: int
    flushes: int
    vectors_flushed: int
    hosts_tracked: int
    pending_hosts: int
    mean_abs_residual: float | None

    def __str__(self) -> str:
        residual = (
            f"{self.mean_abs_residual:.3f}"
            if self.mean_abs_residual is not None
            else "n/a"
        )
        return (
            f"applied={self.samples_applied} skipped={self.samples_skipped} "
            f"flushes={self.flushes} flushed_vectors={self.vectors_flushed} "
            f"tracked={self.hosts_tracked} pending={self.pending_hosts} "
            f"ewma_residual={residual}"
        )


class RefreshWorker:
    """Streams RTT observations through per-host trackers into a service.

    Thread-safe: :meth:`observe` may run on a background thread while
    the event loop serves queries; every flush goes through
    :meth:`DistanceService.apply_vector_updates`, which invalidates the
    prediction cache for exactly the refreshed hosts.

    Args:
        service: the service whose vectors to maintain.
        learning_rate: tracker step size (see
            :class:`~repro.ides.updates.OnlineVectorTracker`).
        flush_every: push tracker state into the service after this
            many applied samples (plus a final flush on stream end).
        ewma_alpha: smoothing factor of the residual EWMA.
    """

    def __init__(
        self,
        service: DistanceService,
        learning_rate: float = 0.3,
        flush_every: int = 256,
        ewma_alpha: float = 0.05,
    ):
        if int(flush_every) < 1:
            raise ValidationError(f"flush_every must be >= 1, got {flush_every}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValidationError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.service = service
        self.learning_rate = float(learning_rate)
        self.flush_every = int(flush_every)
        self.ewma_alpha = float(ewma_alpha)
        self._trackers: dict[object, OnlineVectorTracker] = {}
        self._dirty: set = set()
        self._since_flush = 0
        self._samples_applied = 0
        self._samples_skipped = 0
        self._flushes = 0
        self._vectors_flushed = 0
        self._residual_ewma: float | None = None
        self._lock = threading.RLock()
        self._thread: threading.Thread | None = None
        self._stop_event = threading.Event()

    # ------------------------------------------------------------------ #
    # observation path
    # ------------------------------------------------------------------ #

    def observe(self, observation: RttObservation) -> float | None:
        """Feed one sample; returns the pre-update residual, or None
        when the sample was skipped."""
        host_id = observation.host_id
        reference_id = observation.reference_id
        with self._lock:
            store = self.service.store
            if host_id not in store or reference_id not in store:
                self._samples_skipped += 1
                return None
            tracker = self._trackers.get(host_id)
            if tracker is None:
                tracker = OnlineVectorTracker(
                    store.get(host_id), learning_rate=self.learning_rate
                )
                self._trackers[host_id] = tracker
            reference = store.get(reference_id)
            if observation.outgoing:
                residual = tracker.observe_out(observation.rtt, reference.incoming)
            else:
                residual = tracker.observe_in(observation.rtt, reference.outgoing)
            if not np.isfinite(residual):
                self._samples_skipped += 1
                return None
            self._samples_applied += 1
            self._dirty.add(host_id)
            self._since_flush += 1
            magnitude = abs(residual)
            if self._residual_ewma is None:
                self._residual_ewma = magnitude
            else:
                self._residual_ewma += self.ewma_alpha * (
                    magnitude - self._residual_ewma
                )
            if self._since_flush >= self.flush_every:
                self._flush_locked()
            return residual

    def observe_many(self, stream: Iterable[RttObservation]) -> int:
        """Feed a whole stream; returns how many samples were applied."""
        applied = 0
        for observation in stream:
            if self.observe(observation) is not None:
                applied += 1
        return applied

    # ------------------------------------------------------------------ #
    # flush path
    # ------------------------------------------------------------------ #

    def flush(self) -> int:
        """Push all unflushed tracker state into the service now.

        Returns the number of hosts updated.
        """
        with self._lock:
            return self._flush_locked()

    def _flush_locked(self) -> int:
        self._since_flush = 0
        if not self._dirty:
            return 0
        store = self.service.store
        pending = list(self._dirty)
        self._dirty.clear()
        # The service re-checks membership under its own lock, so an
        # eviction racing this flush surfaces as ValidationError; drop
        # the vanished hosts and retry with the survivors.
        for _ in range(3):
            host_ids, gone = [], []
            for host_id in pending:
                (host_ids if host_id in store else gone).append(host_id)
            for host_id in gone:  # evicted mid-stream: drop the tracker
                self._trackers.pop(host_id, None)
            if not host_ids:
                return 0
            outgoing = np.stack(
                [self._trackers[i].vectors.outgoing for i in host_ids]
            )
            incoming = np.stack(
                [self._trackers[i].vectors.incoming for i in host_ids]
            )
            try:
                updated = self.service.apply_vector_updates(
                    host_ids, outgoing, incoming
                )
            except ValidationError:
                pending = host_ids
                continue
            self._flushes += 1
            self._vectors_flushed += updated
            return updated
        return 0  # pragma: no cover - pathological eviction churn

    def forget(self, host_id: object) -> bool:
        """Drop a host's tracker (e.g. after eviction)."""
        with self._lock:
            self._dirty.discard(host_id)
            return self._trackers.pop(host_id, None) is not None

    # ------------------------------------------------------------------ #
    # drive modes
    # ------------------------------------------------------------------ #

    def run(
        self,
        stream: Iterable[RttObservation],
        stop_event: threading.Event | None = None,
    ) -> int:
        """Drain a stream synchronously (with a final flush).

        Returns the number of samples applied. ``stop_event`` aborts
        between observations — the handle the background mode uses.
        """
        applied = 0
        try:
            for observation in stream:
                if stop_event is not None and stop_event.is_set():
                    break
                if self.observe(observation) is not None:
                    applied += 1
        finally:
            self.flush()
        return applied

    @property
    def running(self) -> bool:
        """Whether a background thread is draining a stream."""
        return self._thread is not None and self._thread.is_alive()

    def start(self, stream: Iterable[RttObservation]) -> None:
        """Drain ``stream`` on a daemon thread until exhausted/stopped."""
        if self.running:
            raise ValidationError("refresh worker is already running")
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self.run,
            args=(stream, self._stop_event),
            name="distance-refresh-worker",
            daemon=True,
        )
        self._thread.start()

    def stop(self, timeout: float | None = 5.0) -> bool:
        """Signal the background thread and wait for its final flush.

        Returns True when the thread terminated within ``timeout``.
        On False the worker keeps the handle — ``running`` stays
        truthful and a later :meth:`stop` can finish the join —
        because the stream only notices the stop signal between
        observations (a blocked generator can hold the thread up).
        """
        if self._thread is None:
            return True
        self._stop_event.set()
        self._thread.join(timeout)
        if self._thread.is_alive():
            return False
        self._thread = None
        return True

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def stats(self) -> RefreshStats:
        """Snapshot of the worker counters."""
        with self._lock:
            return RefreshStats(
                samples_applied=self._samples_applied,
                samples_skipped=self._samples_skipped,
                flushes=self._flushes,
                vectors_flushed=self._vectors_flushed,
                hosts_tracked=len(self._trackers),
                pending_hosts=len(self._dirty),
                mean_abs_residual=self._residual_ewma,
            )


# ---------------------------------------------------------------------- #
# observation streams
# ---------------------------------------------------------------------- #


def replay_observations(
    distances: object,
    ids: Sequence,
    host_ids: Sequence | None = None,
    reference_ids: Sequence | None = None,
    samples: int = 1000,
    seed: int | np.random.Generator | None = None,
    both_directions: bool = True,
) -> Iterator[RttObservation]:
    """Replay random samples of an RTT matrix as an observation stream.

    Args:
        distances: ``(n, n)`` matrix over ``ids`` (row -> column);
            NaN entries (e.g. from a masked
            :class:`~repro.measurement.CampaignResult`) are skipped.
        ids: identifier of each matrix row/column.
        host_ids: hosts to refresh; defaults to every id.
        reference_ids: measurement targets; defaults to every id.
        samples: number of (host, reference) draws.
        seed: randomness source.
        both_directions: emit the reference -> host sample too.

    Yields:
        :class:`RttObservation` samples in random order.
    """
    matrix = np.asarray(distances, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValidationError(f"expected a square matrix, got {matrix.shape}")
    if len(ids) != matrix.shape[0]:
        raise ValidationError(
            f"got {len(ids)} ids for a {matrix.shape[0]}-row matrix"
        )
    index_of = {host_id: row for row, host_id in enumerate(ids)}
    hosts = list(host_ids) if host_ids is not None else list(ids)
    references = list(reference_ids) if reference_ids is not None else list(ids)
    missing = [i for i in hosts + references if i not in index_of]
    if missing:
        raise ValidationError(f"ids not present in the matrix: {missing[:5]!r}")
    rng = as_rng(seed)
    host_draws = rng.integers(0, len(hosts), int(samples))
    reference_draws = rng.integers(0, len(references), int(samples))
    for host_pick, reference_pick in zip(host_draws, reference_draws):
        host = hosts[int(host_pick)]
        reference = references[int(reference_pick)]
        if host == reference:
            continue
        row, column = index_of[host], index_of[reference]
        out_rtt = matrix[row, column]
        if np.isfinite(out_rtt):
            yield RttObservation(host, reference, float(out_rtt), outgoing=True)
        if both_directions:
            in_rtt = matrix[column, row]
            if np.isfinite(in_rtt):
                yield RttObservation(host, reference, float(in_rtt), outgoing=False)


def synthetic_drift_stream(
    service: DistanceService,
    host_ids: Sequence | None = None,
    reference_ids: Sequence | None = None,
    samples: int = 1000,
    drift: float = 0.2,
    noise: float = 0.0,
    seed: int | np.random.Generator | None = None,
) -> Iterator[RttObservation]:
    """A drifting world derived from the service's own predictions.

    Each host gets a persistent multiplicative drift factor drawn from
    ``1 +- drift``; every emitted sample is the service's predicted
    distance scaled by that factor (plus optional lognormal-ish jitter)
    — so a tracker that converges drives its residuals toward zero
    against a world that genuinely moved away from the stored vectors.

    Args:
        service: the service whose predictions seed the drifted truth.
        host_ids: hosts to drift; defaults to non-landmark hosts.
        reference_ids: references; defaults to the landmark set.
        samples: (host, reference) draws.
        drift: half-width of the uniform per-host drift factor.
        noise: per-sample relative Gaussian jitter (0 disables).
        seed: randomness source.
    """
    rng = as_rng(seed)
    if reference_ids is None:
        reference_ids = service.landmark_ids or service.known_hosts()
    references = list(reference_ids)
    if host_ids is None:
        landmark_set = set(references)
        host_ids = [i for i in service.known_hosts() if i not in landmark_set]
    hosts = list(host_ids)
    if not hosts or not references:
        raise ValidationError("need at least one host and one reference")
    # Snapshot the base predictions up front: the drifted "truth" must
    # stand still while the worker refreshes vectors underneath it,
    # otherwise the target would chase its own updates.
    host_to_reference = service.engine.many_to_many(hosts, references)
    reference_to_host = service.engine.many_to_many(references, hosts)
    factors = 1.0 + rng.uniform(-drift, drift, len(hosts))
    host_draws = rng.integers(0, len(hosts), int(samples))
    reference_draws = rng.integers(0, len(references), int(samples))
    for host_pick, reference_pick in zip(host_draws, reference_draws):
        row, column = int(host_pick), int(reference_pick)
        host = hosts[row]
        reference = references[column]
        if host == reference:
            continue
        factor = float(factors[row])
        out_rtt = float(host_to_reference[row, column]) * factor
        in_rtt = float(reference_to_host[column, row]) * factor
        if noise > 0:
            out_rtt *= 1.0 + float(rng.normal(0.0, noise))
            in_rtt *= 1.0 + float(rng.normal(0.0, noise))
        yield RttObservation(host, reference, out_rtt, outgoing=True)
        yield RttObservation(host, reference, in_rtt, outgoing=False)
