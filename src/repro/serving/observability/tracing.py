"""Distributed tracing: spans, context propagation, JSONL export.

One traced query produces a *connected span tree* across process
boundaries::

    frontend:k_nearest                (frontend process, root)
      router:k_nearest                (same process, scatter-gather)
        rpc:nearest  shard=0          (one per _ShardConnection RPC)
          server:nearest              (shard process 0)
            engine:nearest            (store/engine time)
        rpc:nearest  shard=1
          server:nearest              (shard process 1)
            engine:nearest

Propagation inside a process rides a ``contextvars.ContextVar``, which
asyncio tasks inherit naturally; across the wire the active span is
carried as an optional ``"trace"`` object in the request JSON header
(see ``docs/wire-protocol.md``) — peers that predate tracing simply
ignore the extra key, so the field can never break framing.

Each process keeps its finished spans in a bounded in-memory buffer
(:meth:`Tracer.tail`) and, when an export path is configured, appends
every span as one JSON line.  Single-line ``O_APPEND`` writes are
atomic on Linux for these sizes, so the frontend, router and all shard
processes can safely share one export file; readers reassemble the tree
by ``trace_id``/``parent_id`` (see :func:`load_spans` /
:func:`build_trace_trees`).

Spans slower than ``slow_ms`` additionally land in a slow-query log
(:meth:`Tracer.slow_queries`) so "why was that one query slow" is
answerable without replaying traffic.

The disabled tracer (the default) costs one attribute check per
instrumentation site: :meth:`Tracer.span` returns a shared no-op
context manager, which is what keeps the ≤5%% instrumentation-overhead
budget honest.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import NamedTuple

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "build_trace_trees",
    "configure_tracing",
    "current_context",
    "format_trace_tree",
    "get_tracer",
    "load_spans",
]

#: Wire header key carrying the trace context (optional, v1 and v2).
TRACE_FIELD = "trace"

_current_span: contextvars.ContextVar[TraceContext | None] = contextvars.ContextVar(
    "repro_current_span", default=None
)


# Span ids are a random per-process prefix plus a counter: unique
# across the processes of one deployment without paying an os.urandom
# syscall per span (ids are minted on the query hot path). The prefix
# is re-seeded when the pid changes so forked shard processes do not
# inherit the parent's id sequence. Trace ids are minted once per
# root, so full entropy is affordable there.
_id_pid: int | None = None
_id_prefix = ""
_id_counter = itertools.count(1)


def _new_trace_id() -> str:
    return os.urandom(16).hex()


def _new_span_id() -> str:
    global _id_pid, _id_prefix, _id_counter
    pid = os.getpid()
    if pid != _id_pid:
        _id_prefix = os.urandom(8).hex()
        _id_counter = itertools.count(1)
        _id_pid = pid
    return f"{_id_prefix}{next(_id_counter):08x}"


class TraceContext(NamedTuple):
    """The propagated identity of an active span: trace id + span id.

    A ``NamedTuple`` rather than a dataclass: one context is minted per
    span on the query hot path, and tuple construction is the cheapest
    immutable record Python offers.
    """

    trace_id: str
    span_id: str

    def header(self) -> dict[str, str]:
        """The wire-header representation (the ``"trace"`` field value)."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_fields(cls, fields: dict) -> TraceContext | None:
        """Extract a context from a decoded request header, if present.

        Tolerant by design: a missing, malformed or partial ``trace``
        field yields ``None`` — tracing is best-effort and must never
        fail a request.
        """
        raw = fields.get(TRACE_FIELD)
        if not isinstance(raw, dict):
            return None
        trace_id, span_id = raw.get("trace_id"), raw.get("span_id")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            return None
        return cls(trace_id=trace_id, span_id=span_id)


#: Wall-clock minus monotonic time, sampled once per process: spans
#: derive their wall-clock ``start_time`` from one ``perf_counter``
#: reading instead of paying two clock calls each.
_WALL_OFFSET = time.time() - time.perf_counter()


class Span:
    """One timed operation in a trace, and its own context manager.

    ``start_time`` is wall-clock (``time.time`` epoch) so spans from
    different processes on one machine order sensibly; ``duration`` is
    measured with ``time.perf_counter`` for resolution.

    The record and the context manager are one ``__slots__`` object:
    spans are minted on the query hot path, and a separate "active
    span" wrapper would double the per-span allocations.
    """

    __slots__ = (
        "name",
        "context",
        "parent_id",
        "service",
        "start_time",
        "duration",
        "status",
        "attributes",
        "_tracer",
        "_token",
        "_started",
    )

    def __init__(
        self,
        name: str,
        context: TraceContext,
        parent_id: str | None = None,
        service: str = "",
        attributes: dict | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.name = name
        self.context = context
        self.parent_id = parent_id
        self.service = service
        self.start_time = 0.0
        self.duration = 0.0
        self.status = "ok"
        self.attributes = dict(attributes) if attributes else {}
        self._tracer = tracer
        self._token = None
        self._started = 0.0

    def set_attribute(self, key: str, value) -> None:
        self.attributes[key] = value

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.context.trace_id,
            "span_id": self.context.span_id,
            "parent_id": self.parent_id,
            "service": self.service,
            "start_time": self.start_time,
            "duration": self.duration,
            "status": self.status,
            "attributes": self.attributes,
        }

    def __enter__(self) -> Span:
        self._token = _current_span.set(self.context)
        self._started = time.perf_counter()
        # One clock read per span: wall time is derived from the
        # monotonic reading via a process-wide offset (NTP slew within
        # a process lifetime is far below span granularity).
        self.start_time = _WALL_OFFSET + self._started
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self._started
        if exc_type is not None:
            self.status = "error"
            self.attributes.setdefault("error", exc_type.__name__)
        _current_span.reset(self._token)
        if self._tracer is not None:
            self._tracer._record(self)
        return False


class _NoopSpan:
    """Shared do-nothing span/context-manager for the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set_attribute(self, key: str, value) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Creates spans, buffers them, exports JSONL, keeps a slow-query log."""

    def __init__(
        self,
        service: str = "",
        enabled: bool = True,
        max_spans: int = 2048,
        export_path: str | os.PathLike | None = None,
        slow_ms: float | None = None,
    ) -> None:
        self.service = service
        self.enabled = enabled
        self.slow_ms = slow_ms
        self._spans: deque[Span] = deque(maxlen=max_spans)
        self._slow: deque[dict] = deque(maxlen=256)
        self._lock = threading.Lock()
        self._export_path = Path(export_path) if export_path else None
        self._export_file = None
        #: Whether recording has sinks that need the lock (slow-query
        #: log, export file); without them ``_record`` stays lock-free.
        self._locked_sinks = slow_ms is not None or export_path is not None
        self.spans_recorded = 0
        self.spans_dropped = 0
        self.slow_queries = 0

    # -- span creation -----------------------------------------------------

    def span(
        self,
        name: str,
        parent: TraceContext | None = None,
        attributes: dict | None = None,
    ):
        """Start a span as a context manager.

        ``parent`` overrides the ambient context (used when a request
        carried a remote parent or when a queued request re-activates
        its submitter's context); otherwise the current context-variable
        value is the parent.  Disabled tracers return a shared no-op.
        """
        if not self.enabled:
            return _NOOP_SPAN
        if parent is None:
            parent = _current_span.get()
        if parent is None:
            context = TraceContext(_new_trace_id(), _new_span_id())
            parent_id = None
        else:
            context = TraceContext(parent.trace_id, _new_span_id())
            parent_id = parent.span_id
        return Span(name, context, parent_id, self.service, attributes, self)

    def current(self) -> TraceContext | None:
        """The ambient trace context, if tracing is enabled and active."""
        if not self.enabled:
            return None
        return _current_span.get()

    # -- recording / export ------------------------------------------------

    def _record(self, span: Span) -> None:
        # Fast path: deque appends (and maxlen eviction) are atomic
        # under the GIL, and the stat counters are best-effort, so a
        # tracer with neither slow-query log nor export file never
        # takes the lock on the hot path.
        spans = self._spans
        if len(spans) == spans.maxlen:
            self.spans_dropped += 1
        spans.append(span)
        self.spans_recorded += 1
        if not self._locked_sinks:
            return
        with self._lock:
            if self.slow_ms is not None and span.duration * 1000.0 >= self.slow_ms:
                self.slow_queries += 1
                self._slow.append(span.to_dict())
            if self._export_path is not None:
                if self._export_file is None:
                    self._export_file = open(
                        self._export_path, "a", encoding="utf-8"
                    )
                # One write() call per span: O_APPEND keeps concurrent
                # processes' lines whole in a shared export file.
                self._export_file.write(
                    json.dumps(span.to_dict(), sort_keys=True) + "\n"
                )
                self._export_file.flush()

    def tail(self, limit: int = 50) -> list[dict]:
        """The most recent finished spans, oldest first."""
        with self._lock:
            spans = list(self._spans)[-limit:]
        return [span.to_dict() for span in spans]

    def slow_tail(self, limit: int = 50) -> list[dict]:
        """The most recent slow-query records, oldest first."""
        with self._lock:
            return list(self._slow)[-limit:]

    def export_jsonl(self, path: str | os.PathLike) -> int:
        """Dump the buffered spans to ``path`` as JSONL; returns the count."""
        spans = self.tail(limit=self._spans.maxlen or 0)
        with open(path, "a", encoding="utf-8") as handle:
            for span in spans:
                handle.write(json.dumps(span, sort_keys=True) + "\n")
        return len(spans)

    def close(self) -> None:
        with self._lock:
            if self._export_file is not None:
                self._export_file.close()
                self._export_file = None

    def stats_samples(self):
        """Registry-collector samples for the tracer's own counters."""
        from .metrics import Sample

        labels = (("service", self.service),) if self.service else ()
        return [
            Sample(
                "ides_tracer_spans_recorded_total",
                "counter",
                "Finished spans recorded by this tracer.",
                labels,
                self.spans_recorded,
            ),
            Sample(
                "ides_tracer_spans_dropped_total",
                "counter",
                "Spans evicted from the bounded in-memory buffer.",
                labels,
                self.spans_dropped,
            ),
            Sample(
                "ides_tracer_slow_queries_total",
                "counter",
                "Spans at or above the slow-query threshold.",
                labels,
                self.slow_queries,
            ),
        ]


_default_tracer = Tracer(enabled=False)
_tracer_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The process-wide tracer (disabled until configured)."""
    return _default_tracer


def current_context() -> TraceContext | None:
    """The ambient trace context of the process-wide tracer, or None.

    Flat fast path for per-query capture sites (the frontend reads
    this once per submitted query): one global read, one attribute
    check, and — only when tracing is on — one context-variable get.
    """
    if not _default_tracer.enabled:
        return None
    return _current_span.get()


def configure_tracing(
    enabled: bool = True,
    service: str = "",
    max_spans: int = 2048,
    export_path: str | os.PathLike | None = None,
    slow_ms: float | None = None,
) -> Tracer:
    """Install (and return) a new process-wide tracer."""
    global _default_tracer
    tracer = Tracer(
        service=service,
        enabled=enabled,
        max_spans=max_spans,
        export_path=export_path,
        slow_ms=slow_ms,
    )
    with _tracer_lock:
        previous = _default_tracer
        _default_tracer = tracer
    previous.close()
    return tracer


# -- offline span-tree tooling (trace-tail CLI, e2e tests) -----------------


def load_spans(path: str | os.PathLike) -> list[dict]:
    """Read a JSONL span export, skipping torn/blank lines."""
    spans = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                spans.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return spans


def build_trace_trees(spans: list[dict]) -> dict[str, list[dict]]:
    """Group spans by trace id and nest children under parents.

    Returns ``{trace_id: [root, ...]}`` where every span dict gains a
    ``"children"`` list (sorted by start time).  Spans whose parent is
    absent from the export (e.g. buffer-evicted) surface as roots so no
    data is silently dropped.
    """
    by_trace: dict[str, list[dict]] = {}
    for span in spans:
        by_trace.setdefault(span.get("trace_id", "?"), []).append(span)

    trees: dict[str, list[dict]] = {}
    for trace_id, members in by_trace.items():
        by_id = {}
        for span in members:
            node = dict(span)
            node["children"] = []
            by_id[span.get("span_id")] = node
        roots = []
        for node in by_id.values():
            parent = by_id.get(node.get("parent_id"))
            if parent is None:
                roots.append(node)
            else:
                parent["children"].append(node)
        for node in by_id.values():
            node["children"].sort(key=lambda child: child.get("start_time", 0.0))
        roots.sort(key=lambda root: root.get("start_time", 0.0))
        trees[trace_id] = roots
    return trees


def format_trace_tree(roots: list[dict], indent: str = "  ") -> str:
    """Human-readable rendering of one trace's span tree."""
    lines: list[str] = []

    def visit(node: dict, depth: int) -> None:
        duration_ms = node.get("duration", 0.0) * 1000.0
        service = node.get("service") or "-"
        status = node.get("status", "ok")
        flag = "" if status == "ok" else f" [{status}]"
        lines.append(
            f"{indent * depth}{node.get('name', '?')}  "
            f"{duration_ms:.3f} ms  ({service}){flag}"
        )
        for child in node.get("children", ()):
            visit(child, depth + 1)

    for root in roots:
        visit(root, 0)
    return "\n".join(lines)
