"""Thread-safe metrics registry with Prometheus-text and JSON exposition.

The registry is the single sensor substrate for the serving stack: every
component (engine, cache, frontend, router, shard client/server, refresh
worker) either *owns* first-class instruments here — counters, gauges and
log-bucketed histograms created via :meth:`MetricsRegistry.counter` /
:meth:`MetricsRegistry.gauge` / :meth:`MetricsRegistry.histogram` — or
exposes its existing cheap in-object counters lazily through
:meth:`MetricsRegistry.register_collector`, which is only invoked at
scrape time and therefore adds **zero** hot-path overhead.

Design notes:

* Instruments are *families* keyed by name; a family with label names
  hands out per-label-value children via ``family.labels(op="gather")``.
  An unlabeled family proxies ``inc``/``set``/``observe`` straight to its
  single anonymous child so call sites stay terse.
* Histograms use geometric ("log") bucket bounds so one instrument
  covers microsecond RPCs and multi-second flushes with bounded memory;
  p50/p90/p99 are interpolated from the bucket counts at snapshot time.
* Exposition: :meth:`MetricsRegistry.render_prometheus` emits the
  Prometheus text format (``# HELP`` / ``# TYPE`` + samples, histogram
  ``_bucket``/``_sum``/``_count`` series); :meth:`MetricsRegistry.render_json`
  emits the same data as a JSON document with quantile snapshots
  included, for scrapers that prefer structure over text.

Everything is stdlib-only; there is no dependency on a Prometheus client
library.
"""

from __future__ import annotations

import json
import math
import threading
from bisect import bisect_left
from dataclasses import dataclass, field

__all__ = [
    "MetricsRegistry",
    "Sample",
    "default_buckets",
    "get_registry",
    "parse_prometheus_text",
    "set_registry",
]

_KINDS = ("counter", "gauge", "histogram")


def default_buckets(
    start: float = 1e-5, factor: float = 2.0, count: int = 28
) -> tuple[float, ...]:
    """Geometric bucket upper bounds: ``start * factor**k``.

    The defaults span 10 microseconds to ~22 minutes, which covers
    every latency this stack produces (codec work, RPCs, batch
    dispatches, refresh flushes) with 28 buckets per child.
    """
    if start <= 0 or factor <= 1.0 or count < 1:
        raise ValueError("buckets need start > 0, factor > 1, count >= 1")
    return tuple(start * factor**k for k in range(count))


@dataclass(frozen=True)
class Sample:
    """One exposition sample emitted by a lazy collector.

    Collectors return iterables of these; ``kind`` must be ``counter``
    or ``gauge`` (histograms are only available as first-class
    instruments, where the registry owns the bucket state).
    """

    name: str
    kind: str
    help: str
    labels: tuple[tuple[str, str], ...] = ()
    value: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("counter", "gauge"):
            raise ValueError(f"collector samples must be counter/gauge, not {self.kind}")


def _label_items(labelnames: tuple[str, ...], labelvalues: dict) -> tuple:
    if set(labelvalues) != set(labelnames):
        raise ValueError(
            f"expected labels {labelnames}, got {tuple(sorted(labelvalues))}"
        )
    return tuple((name, str(labelvalues[name])) for name in labelnames)


class _Counter:
    """Monotonic counter child."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class _Gauge:
    """Gauge child: settable, inc/dec-able."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class _Histogram:
    """Log-bucketed histogram child with interpolated quantiles."""

    __slots__ = ("_bounds", "_counts", "_lock", "_sum", "_count")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 for the +Inf bucket
        self._lock = threading.Lock()
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Interpolated quantile estimate from the bucket counts."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                upper = (
                    self._bounds[index]
                    if index < len(self._bounds)
                    else self._bounds[-1] * 2
                )
                lower = self._bounds[index - 1] if index > 0 else 0.0
                inside = rank - cumulative
                fraction = inside / bucket_count
                return lower + (upper - lower) * fraction
            cumulative += bucket_count
        return self._bounds[-1] * 2

    def snapshot(self) -> dict:
        """Count/sum plus p50/p90/p99 — the shape the JSON exposition uses."""
        return {
            "count": self._count,
            "sum": self._sum,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative (upper_bound, count) pairs, ending with +Inf."""
        with self._lock:
            counts = list(self._counts)
        cumulative, pairs = 0, []
        for index, bound in enumerate(self._bounds):
            cumulative += counts[index]
            pairs.append((bound, cumulative))
        pairs.append((math.inf, cumulative + counts[-1]))
        return pairs


_CHILD_TYPES = {"counter": _Counter, "gauge": _Gauge, "histogram": _Histogram}


class _Family:
    """A named instrument family handing out per-label-value children."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...] | None = None,
        callback=None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = labelnames
        self.buckets = buckets
        self.callback = callback
        self._children: dict[tuple, object] = {}
        self._lock = threading.Lock()
        if not labelnames and callback is None:
            self._default = self._make_child()
            self._children[()] = self._default
        else:
            self._default = None

    def _make_child(self):
        if self.kind == "histogram":
            return _Histogram(self.buckets or default_buckets())
        return _CHILD_TYPES[self.kind]()

    def labels(self, **labelvalues):
        key = _label_items(self.labelnames, labelvalues)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make_child())
        return child

    # Unlabeled families proxy straight to their single child.
    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default.dec(amount)

    def set(self, value: float) -> None:
        self._default.set(value)

    def observe(self, value: float) -> None:
        self._default.observe(value)

    @property
    def value(self) -> float:
        return self._default.value

    def children(self) -> list[tuple[tuple, object]]:
        with self._lock:
            return sorted(self._children.items())


@dataclass
class _CollectedFamily:
    """Scrape-time view of one family (first-class or collector-built)."""

    name: str
    kind: str
    help: str
    samples: list = field(default_factory=list)


def _render_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{key}="{_escape(value)}"' for key, value in labels)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class MetricsRegistry:
    """Thread-safe home for labeled counters, gauges and histograms.

    One registry per process is the normal arrangement (see
    :func:`get_registry`), but components accept an explicit registry so
    tests and multi-tenant setups can isolate their series.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}
        self._collectors: list = []

    # -- instrument constructors ------------------------------------------

    def counter(
        self, name: str, help: str = "", labels: tuple[str, ...] = ()
    ) -> _Family:
        return self._family(name, "counter", help, tuple(labels))

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: tuple[str, ...] = (),
        callback=None,
    ) -> _Family:
        """A gauge; with ``callback`` its value is computed at scrape time."""
        return self._family(name, "gauge", help, tuple(labels), callback=callback)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: tuple[str, ...] = (),
        buckets: tuple[float, ...] | None = None,
    ) -> _Family:
        return self._family(name, "histogram", help, tuple(labels), buckets=buckets)

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...] | None = None,
        callback=None,
    ) -> _Family:
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.kind != kind or existing.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}{existing.labelnames}"
                    )
                return existing
            family = _Family(name, kind, help, labelnames, buckets, callback)
            self._families[name] = family
            return family

    def register_collector(self, collector) -> None:
        """Register a zero-arg callable returning an iterable of Samples.

        Collectors run only at scrape time: they are how the existing
        stats dataclasses (``ServiceHealth``, ``FrontendStats``,
        ``CacheStats``, ...) are re-backed by the registry without
        adding a single instruction to the hot paths that feed them.
        """
        with self._lock:
            self._collectors.append(collector)

    def unregister_collector(self, collector) -> None:
        with self._lock:
            try:
                self._collectors.remove(collector)
            except ValueError:
                pass

    # -- scraping ----------------------------------------------------------

    def collect(self) -> list[_CollectedFamily]:
        """Snapshot every family, merging collector output by name."""
        with self._lock:
            families = list(self._families.values())
            collectors = list(self._collectors)

        out: dict[str, _CollectedFamily] = {}
        for family in families:
            collected = _CollectedFamily(family.name, family.kind, family.help)
            if family.callback is not None:
                collected.samples.append(((), float(family.callback())))
            else:
                for labelkey, child in family.children():
                    if family.kind == "histogram":
                        collected.samples.append(
                            (labelkey, child.snapshot(), child.bucket_counts())
                        )
                    else:
                        collected.samples.append((labelkey, child.value))
            out[family.name] = collected

        for collector in collectors:
            for sample in collector():
                collected = out.get(sample.name)
                if collected is None:
                    collected = _CollectedFamily(sample.name, sample.kind, sample.help)
                    out[sample.name] = collected
                collected.samples.append((tuple(sample.labels), float(sample.value)))
        return [out[name] for name in sorted(out)]

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for family in self.collect():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            if family.kind == "histogram":
                for labelkey, snapshot, buckets in family.samples:
                    for bound, cumulative in buckets:
                        bucket_labels = labelkey + (("le", _format_value(bound)),)
                        lines.append(
                            f"{family.name}_bucket{_render_labels(bucket_labels)} "
                            f"{cumulative}"
                        )
                    rendered = _render_labels(labelkey)
                    lines.append(
                        f"{family.name}_sum{rendered} {_format_value(snapshot['sum'])}"
                    )
                    lines.append(f"{family.name}_count{rendered} {snapshot['count']}")
            else:
                for labelkey, value in family.samples:
                    lines.append(
                        f"{family.name}{_render_labels(labelkey)} "
                        f"{_format_value(value)}"
                    )
        return "\n".join(lines) + "\n"

    def render_json(self) -> str:
        """JSON exposition: same families, quantile snapshots included."""
        document = []
        for family in self.collect():
            entry: dict = {
                "name": family.name,
                "kind": family.kind,
                "help": family.help,
                "samples": [],
            }
            if family.kind == "histogram":
                for labelkey, snapshot, _buckets in family.samples:
                    entry["samples"].append(
                        {"labels": dict(labelkey), **snapshot}
                    )
            else:
                for labelkey, value in family.samples:
                    entry["samples"].append({"labels": dict(labelkey), "value": value})
            document.append(entry)
        return json.dumps({"metrics": document}, indent=2, sort_keys=True)


def parse_prometheus_text(text: str) -> dict[str, dict[tuple, float]]:
    """Parse Prometheus text exposition into ``{name: {labels: value}}``.

    A deliberately small parser used by the smoke tooling and tests to
    assert that the stack's own exposition is well-formed; it handles
    exactly the subset :meth:`MetricsRegistry.render_prometheus` emits
    (and what real Prometheus servers scrape).
    """
    series: dict[str, dict[tuple, float]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError(f"unparseable sample line: {raw!r}")
        if "{" in name_part:
            name, _, label_body = name_part.partition("{")
            label_body = label_body.rstrip("}")
            labels = []
            for item in _split_labels(label_body):
                key, _, quoted = item.partition("=")
                if not quoted.startswith('"') or not quoted.endswith('"'):
                    raise ValueError(f"bad label in line: {raw!r}")
                labels.append((key, quoted[1:-1]))
            labelkey = tuple(labels)
        else:
            name, labelkey = name_part, ()
        value = math.inf if value_part == "+Inf" else float(value_part)
        series.setdefault(name, {})[labelkey] = value
    return series


def _split_labels(body: str) -> list[str]:
    """Split ``a="x",b="y"`` on commas outside quotes."""
    items, current, in_quotes = [], [], False
    for char in body:
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
        elif char == "," and not in_quotes:
            items.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        items.append("".join(current))
    return [item for item in items if item]


_default_registry = MetricsRegistry()
_default_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide default registry (returns the previous one)."""
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
    return previous
