"""A tiny asyncio HTTP endpoint serving ``/metrics`` and ``/health``.

Just enough HTTP/1.1 for a Prometheus scraper or a load balancer's
health check — stdlib-only, one short-lived connection per request:

* ``GET /metrics``       → Prometheus text exposition of the registry
* ``GET /metrics.json``  → JSON exposition (quantile snapshots included)
* ``GET /health``        → JSON health document from the owner's callback
* ``GET /trace``         → JSON tail of the tracer's recent spans

The :class:`TelemetryServer` is attached to a shard server process (via
``run_shard_server(..., metrics_port=...)``) and to the router (via the
smoke tooling and ``serve router --metrics-port``); it deliberately does
not touch the binary wire protocol's port.
"""

from __future__ import annotations

import asyncio
import json
import urllib.request

from .metrics import MetricsRegistry, get_registry
from .tracing import Tracer, get_tracer

__all__ = ["TelemetryServer", "scrape"]

_MAX_REQUEST_BYTES = 16384


class TelemetryServer:
    """Serve a registry (and optionally health/trace views) over HTTP."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        health=None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._registry = registry
        self._tracer = tracer
        self._health = health
        self._host = host
        self._port = port
        self._server: asyncio.AbstractServer | None = None
        self._bound: tuple[str, int] | None = None

    @property
    def address(self) -> tuple[str, int]:
        if self._bound is None:
            raise RuntimeError("telemetry server is not running")
        return self._bound

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle, host=self._host, port=self._port
        )
        sockname = self._server.sockets[0].getsockname()
        self._bound = (sockname[0], sockname[1])
        return self._bound

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
            self._bound = None

    # -- request handling --------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            if not request_line:
                return
            # Drain (and bound) the headers; we never need their content.
            consumed = len(request_line)
            while True:
                header = await asyncio.wait_for(reader.readline(), timeout=5.0)
                consumed += len(header)
                if header in (b"\r\n", b"\n", b""):
                    break
                if consumed > _MAX_REQUEST_BYTES:
                    await self._respond(writer, 431, "text/plain", b"headers too large")
                    return
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                await self._respond(writer, 400, "text/plain", b"bad request")
                return
            method, target = parts[0], parts[1]
            if method != "GET":
                await self._respond(writer, 405, "text/plain", b"method not allowed")
                return
            await self._route(writer, target.split("?", 1)[0])
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(self, writer: asyncio.StreamWriter, path: str) -> None:
        registry = self._registry or get_registry()
        if path == "/metrics":
            body = registry.render_prometheus().encode("utf-8")
            await self._respond(
                writer, 200, "text/plain; version=0.0.4; charset=utf-8", body
            )
        elif path == "/metrics.json":
            body = registry.render_json().encode("utf-8")
            await self._respond(writer, 200, "application/json", body)
        elif path == "/health":
            document = {"status": "ok"}
            if self._health is not None:
                try:
                    document = self._health()
                except Exception as broken:  # health must answer, not raise
                    document = {"status": "error", "error": repr(broken)}
            body = json.dumps(document, indent=2, sort_keys=True).encode("utf-8")
            await self._respond(writer, 200, "application/json", body)
        elif path == "/trace":
            tracer = self._tracer or get_tracer()
            body = json.dumps(
                {"spans": tracer.tail(), "slow": tracer.slow_tail()},
                indent=2,
                sort_keys=True,
            ).encode("utf-8")
            await self._respond(writer, 200, "application/json", body)
        else:
            await self._respond(writer, 404, "text/plain", b"not found")

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        body: bytes,
    ) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 431: "Request Header Fields Too Large"}
        head = (
            f"HTTP/1.1 {status} {reason.get(status, 'Error')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()


def scrape(target: str, path: str = "/metrics", timeout: float = 5.0) -> str:
    """Fetch a telemetry endpoint synchronously (CLI / smoke tooling).

    ``target`` may be a full URL (``http://host:port/metrics``) or a
    bare ``host:port``, in which case ``path`` is appended.
    """
    url = target if "://" in target else f"http://{target}{path}"
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode("utf-8")
