"""Telemetry substrate for the serving stack: metrics, tracing, HTTP plane.

Three stdlib-only pieces (see ``docs/observability.md``):

* :mod:`~repro.serving.observability.metrics` — a thread-safe
  :class:`MetricsRegistry` of labeled counters, gauges and log-bucketed
  histograms (p50/p90/p99 snapshots) with Prometheus-text and JSON
  exposition, plus scrape-time *collectors* that re-back the existing
  stats dataclasses without touching their hot paths;
* :mod:`~repro.serving.observability.tracing` — ``TraceContext`` /
  ``Span`` / ``Tracer``: a connected span tree per query across
  frontend → router → per-connection RPC → shard server → engine,
  propagated in-process via ``contextvars`` and across the wire in the
  optional ``"trace"`` JSON-header field, with a bounded span buffer, a
  JSONL exporter and a threshold-driven slow-query log;
* :mod:`~repro.serving.observability.httpd` — a tiny asyncio HTTP
  endpoint serving ``/metrics``, ``/metrics.json``, ``/health`` and
  ``/trace`` for scrapers and load balancers.
"""

from .httpd import TelemetryServer, scrape
from .metrics import (
    MetricsRegistry,
    Sample,
    default_buckets,
    get_registry,
    parse_prometheus_text,
    set_registry,
)
from .tracing import (
    Span,
    TraceContext,
    Tracer,
    build_trace_trees,
    configure_tracing,
    current_context,
    format_trace_tree,
    get_tracer,
    load_spans,
)

__all__ = [
    "MetricsRegistry",
    "Sample",
    "Span",
    "TelemetryServer",
    "TraceContext",
    "Tracer",
    "build_trace_trees",
    "configure_tracing",
    "current_context",
    "default_buckets",
    "format_trace_tree",
    "get_registry",
    "get_tracer",
    "load_spans",
    "parse_prometheus_text",
    "scrape",
    "set_registry",
]
