"""The shard server: one vector-store partition behind a socket.

A :class:`ShardServer` is the process-level unit of a distributed
deployment: it owns exactly one
:class:`~repro.serving.store.InMemoryVectorStore` (the hosts whose
``shard_of(host_id, n_shards)`` equals its ``shard_index``) plus a
local :class:`~repro.serving.engine.QueryEngine`, and answers the RPC
vocabulary of ``docs/wire-protocol.md`` over length-prefixed frames.

Request handling is version-aware. A protocol v1 frame keeps the
legacy discipline — single-frame-in / single-frame-out, strictly in
order — so old clients see exactly the old conversation. A protocol v2
frame carries a request id, and the connection loop spawns one task
per request: requests **pipeline** (their ``work_delay``/service time
overlaps) and responses may return out of order, each echoing its
request id. Frame writes are serialized (one frame's buffers always
hit the transport contiguously) — under ``zero_copy`` by one
server-wide lock shared across connections, which doubles as the
store mutation barrier described below — and per-request isolation
holds in both modes: a failing handler produces an error frame for
its own request id and nothing else. Handler bodies run
synchronously between awaits on one event loop, so per-request store
mutations are atomic without extra locking (the store's own lock
still guards against a co-located refresh thread when a server is
embedded in a bigger process).

Zero-copy read path: with ``zero_copy=True`` (the default) the
vector-carrying handlers gather row *views* out of the store
(``InMemoryVectorStore.gather(copy=False)``) and the codec
scatter-writes those views straight to the transport — no
intermediate stacking or ``tobytes()`` on the hot path. Three
disciplines make this safe: the server mutates its store only from
its own event loop; ``write_message`` returns only after the
transport has *fully flushed* the payload views (under backpressure a
transport retains unsent buffers by reference, and ``drain()`` alone
resolves at the low-water mark); and every handler+write runs under
one **server-wide** write lock, so no handler on any connection can
mutate store rows while another connection's frame still aliases
them. Embedding a server over a store that other *threads* write
requires ``zero_copy=False``.

Error discipline: a request that fails validation gets an error frame
naming the exception type and message, and the connection stays up; a
frame that violates the protocol poisons only its own connection; the
listener itself survives both.

Host identifiers must be wire-representable — ``str`` or ``int`` —
exactly like snapshot identifiers (:mod:`repro.serving.snapshot`).

:func:`run_shard_server` is the blocking entry point used by the
``ides-experiment serve shard`` CLI and by
:func:`spawn_shard_process`, which forks a shard into a child process
and reports the bound address back — the building block of the
end-to-end tests and ``benchmarks/bench_transport.py``.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import queue
import time
from dataclasses import dataclass

import numpy as np

from ..observability.httpd import TelemetryServer
from ..observability.metrics import Sample, get_registry
from ..observability.tracing import TraceContext, configure_tracing, get_tracer
from ..._validation import check_dimension
from ...exceptions import (
    DeadlineExceededError,
    OverloadedError,
    ProtocolError,
    ReproError,
    TransportError,
    ValidationError,
)
from ..engine import QueryEngine, top_k_ascending
from ..journal import REPLAY_CHUNK, ShardJournal, store_digest
from ..snapshot import load_snapshot
from ..store import InMemoryVectorStore, shard_of
from .protocol import (
    PROTOCOL_V1,
    PROTOCOL_VERSION,
    Deadline,
    Message,
    check_codec_mode,
    read_message,
    set_codec_mode,
    write_message,
)

__all__ = ["ShardServer", "ShardProcess", "run_shard_server", "spawn_shard_process"]


def _check_wire_ids(host_ids: list) -> list:
    for host_id in host_ids:
        if not isinstance(host_id, (str, int)):
            raise ValidationError(
                f"host id {host_id!r} is not wire-representable; the "
                "transport supports only str or int identifiers"
            )
    return host_ids


class ShardServer:
    """Asyncio server for one shard of the distance directory.

    Args:
        dimension: model dimension ``d`` (ignored when ``store`` is
            given).
        shard_index: which partition of the ``shard_of`` hash space
            this server owns.
        n_shards: total partitions in the deployment; the router
            cross-checks both values during its handshake.
        host / port: bind address (port 0 picks a free port; the bound
            address is available as :attr:`address` after
            :meth:`start`).
        store: a prebuilt store to serve (defaults to an empty
            :class:`InMemoryVectorStore` that the router seeds over
            ``put`` RPCs).
        work_delay: artificial seconds of service time added to every
            request — a test/benchmark hook modeling network and
            compute latency deterministically, never set in real
            deployments. Pipelined (v2) requests overlap their delays.
        zero_copy: gather row views out of the store and scatter-write
            them to the socket (no intermediate stacking). Safe for
            the standard deployment where only this event loop writes
            the store; pass False when embedding the server over a
            store that other threads mutate.
        max_pipeline: outstanding v2 requests allowed per connection
            before the read loop stops accepting more (backpressure
            against a peer that writes faster than it reads).
        max_inflight: **server-wide** admission bound: requests queued
            plus in flight across every connection. A request beyond
            it is *rejected* — an :class:`OverloadedError` error frame
            carrying a ``retry_after`` hint — instead of queued, so a
            saturated shard sheds excess load explicitly rather than
            letting every caller wait out its timeout. None (the
            default) keeps the legacy queue-everything behaviour.
        flush_timeout: seconds a response write may wait for a
            backpressured peer to drain before the connection is
            aborted. Bounds how long the zero-copy write lock (shared
            across connections) can be held by one stalled peer, so a
            client that stops reading cannot freeze the shard; None
            waits forever.
        journal: a prebuilt :class:`~repro.serving.journal.ShardJournal`
            to record mutations into. When the journal carries entries
            loaded from its on-disk segments, they are replayed into
            the store here — a restarted shard resumes at its old
            high-water mark. Defaults to a fresh in-memory ring sized
            ``journal_capacity``.
        journal_capacity: ring size of the default journal.
    """

    def __init__(
        self,
        dimension: int | None = None,
        shard_index: int = 0,
        n_shards: int = 1,
        host: str = "127.0.0.1",
        port: int = 0,
        store: InMemoryVectorStore | None = None,
        work_delay: float = 0.0,
        zero_copy: bool = True,
        max_pipeline: int = 256,
        max_inflight: int | None = None,
        flush_timeout: float | None = 2.0,
        journal: ShardJournal | None = None,
        journal_capacity: int = 4096,
    ):
        if store is None:
            if dimension is None:
                raise ValidationError("ShardServer needs a dimension or a store")
            store = InMemoryVectorStore(check_dimension(dimension))
        if not 0 <= int(shard_index) < int(n_shards):
            raise ValidationError(
                f"shard_index must be in [0, {n_shards}), got {shard_index}"
            )
        if work_delay < 0:
            raise ValidationError(f"work_delay must be >= 0, got {work_delay}")
        if int(max_pipeline) < 1:
            raise ValidationError(
                f"max_pipeline must be >= 1, got {max_pipeline}"
            )
        if max_inflight is not None and int(max_inflight) < 1:
            raise ValidationError(
                f"max_inflight must be >= 1 or None, got {max_inflight}"
            )
        if flush_timeout is not None and not flush_timeout > 0:
            raise ValidationError(
                f"flush_timeout must be > 0 or None, got {flush_timeout}"
            )
        self.max_pipeline = int(max_pipeline)
        self.max_inflight = None if max_inflight is None else int(max_inflight)
        self.flush_timeout = (
            None if flush_timeout is None else float(flush_timeout)
        )
        self.store = store
        self.journal = (
            journal
            if journal is not None
            else ShardJournal(capacity=journal_capacity)
        )
        # A journal reloaded from disk segments carries the mutations
        # applied after the snapshot this store was seeded from: replay
        # them so a restarted replica resumes where it died instead of
        # where it last snapshotted (puts are idempotent overwrites, so
        # entries the snapshot already contains re-apply harmlessly).
        self.journal.replay_into(store)
        self.zero_copy = bool(zero_copy)
        self.engine = QueryEngine(store, zero_copy=self.zero_copy)
        self.shard_index = int(shard_index)
        self.n_shards = int(n_shards)
        self.work_delay = float(work_delay)
        self._host = host
        self._port = int(port)
        self._server: asyncio.base_events.Server | None = None
        self._stopped: asyncio.Event | None = None
        self._write_lock: asyncio.Lock | None = None
        self.connections_rejected = 0
        self.pipelined_requests = 0
        #: Admitted requests currently queued or in flight, server-wide.
        self.inflight_requests = 0
        #: Requests rejected at admission (max_inflight exceeded).
        self.overload_rejections = 0
        #: Requests shed because their propagated deadline expired
        #: while they sat in the pipeline queue.
        self.deadline_shed = 0
        #: Deadline-remaining histogram attached by :meth:`bind_metrics`.
        self._deadline_remaining = None
        #: First-class instruments attached by :meth:`bind_metrics`;
        #: ``None`` keeps request handling on the uninstrumented path.
        self._request_seconds = None
        self._requests_total = None
        self._errors_total = None
        self._op_instruments: dict[str, tuple] = {}  # op -> children
        self._span_attributes = {"shard": self.shard_index}
        self._server_span_names: dict[str, str] = {}  # op -> "server:{op}"
        self._engine_span_names: dict[str, str] = {}  # op -> "engine:{op}"

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``; raises before :meth:`start`."""
        if self._server is None:
            raise TransportError("shard server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting connections; returns the address."""
        if self._server is not None:
            return self.address
        self._stopped = asyncio.Event()
        # With zero_copy, response frames hold *views* of store rows
        # until fully flushed, so one lock must serialize every
        # handler+write+flush across ALL connections — otherwise a
        # mutating handler on connection B could rewrite rows that
        # connection A's backpressured frame still aliases. Handlers
        # are synchronous and writes normally flush instantly, so the
        # shared lock costs nothing until a peer actually backpressures
        # (then its flush briefly stalls other connections' responses —
        # the price of zero-copy, bounded by flush_timeout, which
        # aborts a peer that stops reading mid-flush; zero_copy=False
        # restores fully independent per-connection writes).
        self._write_lock = asyncio.Lock() if self.zero_copy else None
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        return self.address

    async def stop(self) -> None:
        """Stop accepting and release the listening socket."""
        if self._server is None:
            return
        server, self._server = self._server, None
        server.close()
        try:
            # 3.12's wait_closed also drains live client connections; a
            # router pool keeping idle sockets open must not wedge the
            # shutdown, so the wait is bounded and best-effort.
            await asyncio.wait_for(server.wait_closed(), timeout=1.0)
        except asyncio.TimeoutError:
            pass
        if self._stopped is not None:
            self._stopped.set()

    async def wait_stopped(self) -> None:
        """Block until :meth:`stop` runs (e.g. via a ``shutdown`` RPC)."""
        if self._stopped is None:
            raise TransportError("shard server is not started")
        await self._stopped.wait()

    async def __aenter__(self) -> "ShardServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # telemetry
    # ------------------------------------------------------------------ #

    def bind_metrics(self, registry) -> None:
        """Expose this server through a metrics registry.

        Request handling gains an ``ides_server_request_seconds``
        histogram and per-op request/error counters; the existing
        cheap counters (engine, pipeline, rejections) and the store
        size become scrape-time collector samples. Unbound servers pay
        nothing on the request path.
        """
        self._request_seconds = registry.histogram(
            "ides_server_request_seconds",
            "Server-side request handling latency (work_delay included).",
            labels=("op",),
        )
        self._requests_total = registry.counter(
            "ides_server_requests_total",
            "Requests handled, by wire operation.",
            labels=("op",),
        )
        self._errors_total = registry.counter(
            "ides_server_errors_total",
            "Requests answered with an error frame, by wire operation.",
            labels=("op",),
        )
        self._deadline_remaining = registry.histogram(
            "ides_server_deadline_remaining_seconds",
            "Budget left on deadline-carrying requests at dispatch time.",
        )
        shard = (("shard", str(self.shard_index)),)

        def collect():
            return [
                Sample("ides_server_shed_total", "counter",
                       "Requests shed on an expired propagated deadline.",
                       (*shard, ("reason", "deadline")), self.deadline_shed),
                Sample("ides_server_shed_total", "counter",
                       "Requests rejected at admission (max_inflight).",
                       (*shard, ("reason", "overload")),
                       self.overload_rejections),
                Sample("ides_server_inflight_requests", "gauge",
                       "Requests queued or in flight, server-wide.",
                       shard, self.inflight_requests),
                Sample("ides_server_pipelined_requests_total", "counter",
                       "v2 requests dispatched to pipelined handler tasks.",
                       shard, self.pipelined_requests),
                Sample("ides_server_connections_rejected_total", "counter",
                       "Connections dropped for protocol violations.",
                       shard, self.connections_rejected),
                Sample("ides_engine_queries_served_total", "counter",
                       "Queries answered by the local engine.",
                       shard, self.engine.queries_served),
                Sample("ides_engine_pairs_evaluated_total", "counter",
                       "Host pairs evaluated by the local engine.",
                       shard, self.engine.pairs_evaluated),
                Sample("ides_store_hosts", "gauge",
                       "Hosts resident in this shard's vector store.",
                       shard, len(self.store)),
                Sample("ides_journal_seq", "gauge",
                       "Journal high-water mark: last applied write seq.",
                       shard, self.journal.high_water),
                Sample("ides_journal_entries", "gauge",
                       "Entries retained in the journal ring.",
                       shard, len(self.journal)),
                Sample("ides_journal_appended_total", "counter",
                       "Mutations recorded in the journal.",
                       shard, self.journal.appended),
                Sample("ides_journal_evicted_total", "counter",
                       "Entries evicted from the journal ring.",
                       shard, self.journal.evicted),
            ]

        registry.register_collector(collect)

    def health_fields(self) -> dict:
        """The health document served over RPC and HTTP ``/health``."""
        return {
            "shard_index": self.shard_index,
            "n_shards": self.n_shards,
            "dimension": self.store.dimension,
            "n_hosts": len(self.store),
            "queries_served": self.engine.queries_served,
            "pairs_evaluated": self.engine.pairs_evaluated,
            "connections_rejected": self.connections_rejected,
            "pipelined_requests": self.pipelined_requests,
            "inflight_requests": self.inflight_requests,
            "max_inflight": self.max_inflight,
            "overload_rejections": self.overload_rejections,
            "deadline_shed": self.deadline_shed,
            "journal_seq": self.journal.high_water,
            "journal_entries": len(self.journal),
            "journal_first_seq": self.journal.first_seq,
        }

    # ------------------------------------------------------------------ #
    # connection loop
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # The write lock keeps response frames contiguous on the
        # transport when v2 tasks answer concurrently. With zero_copy
        # it is the server-wide lock created in start() (the store
        # mutation barrier — see there); without, a per-connection lock
        # suffices because frames own their payload copies. One task
        # set so a dying connection cancels its outstanding work; one
        # semaphore bounds outstanding pipelined requests — when a
        # client writes faster than it reads answers, the read loop
        # stalls here and TCP backpressure does the rest (v1's
        # one-at-a-time discipline gave this for free).
        write_lock = self._write_lock or asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        in_flight = asyncio.Semaphore(self.max_pipeline)
        try:
            while True:
                try:
                    request = await read_message(reader)
                except ProtocolError as broken:
                    # Poisoned connection: best-effort error frame, then
                    # hang up. The listener and every other connection
                    # keep serving.
                    self.connections_rejected += 1
                    await self._try_error(writer, write_lock, broken)
                    return
                if request is None:  # clean EOF
                    return
                # Admission: reject-don't-queue. The check runs before
                # any slot wait, so a saturated shard answers the
                # excess request *immediately* with an overload frame
                # instead of letting it wait out the caller's timeout
                # in a queue it will never clear.
                if (
                    self.max_inflight is not None
                    and self.inflight_requests >= self.max_inflight
                ):
                    self.overload_rejections += 1
                    await self._try_error(
                        writer,
                        write_lock,
                        OverloadedError(
                            f"shard {self.shard_index} is saturated "
                            f"({self.inflight_requests} requests in "
                            f"flight, max_inflight={self.max_inflight})"
                        ),
                        request=request,
                        extra_fields={"retry_after": self._retry_after()},
                    )
                    continue
                if request.version == PROTOCOL_V1:
                    # Legacy conversation: strictly one at a time, in
                    # order, exactly as a v1 client expects.
                    self.inflight_requests += 1
                    try:
                        stop_after = await self._answer(
                            writer, write_lock, request
                        )
                    finally:
                        self.inflight_requests -= 1
                    if stop_after:
                        return
                else:
                    # Pipelined: keep reading; this request's service
                    # time overlaps every other in-flight request's,
                    # and its response frame carries its request id.
                    await in_flight.acquire()
                    self.pipelined_requests += 1
                    self.inflight_requests += 1
                    task = asyncio.create_task(
                        self._answer_pipelined(
                            writer, write_lock, request, in_flight
                        )
                    )
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
        except (ConnectionError, asyncio.CancelledError):
            return
        finally:
            for task in tasks:
                task.cancel()
            writer.close()
            try:
                # close() flushes buffered data first, so a peer that
                # stopped reading could wedge this teardown forever:
                # bound the wait and abort as the backstop.
                await asyncio.wait_for(writer.wait_closed(), timeout=1.0)
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass
            except asyncio.TimeoutError:  # pragma: no cover - stuck peer
                writer.transport.abort()

    def _retry_after(self) -> float:
        """The overload rejection's backoff hint, in seconds.

        A saturated shard expects to clear one slot per service time,
        so the hint scales with the simulated (or observed-at-config)
        per-request cost; the floor keeps clients from busy-spinning
        against a shard whose service time is effectively zero.
        """
        return max(0.05, self.work_delay)

    async def _try_error(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        error: Exception,
        request: Message | None = None,
        extra_fields: dict | None = None,
    ) -> None:
        request_id = request.request_id if request is not None else 0
        version = request.version if request is not None else PROTOCOL_V1
        try:
            async with write_lock:
                await write_message(
                    writer,
                    {
                        "ok": False,
                        "error": type(error).__name__,
                        "message": str(error),
                        **(extra_fields or {}),
                    },
                    request_id=request_id,
                    version=version,
                    flush_timeout=self.flush_timeout,
                )
        except (ConnectionError, OSError):  # pragma: no cover - peer is gone
            pass

    async def _answer_pipelined(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        request: Message,
        in_flight: asyncio.Semaphore,
    ) -> None:
        """One spawned v2 request: answer, then release the pipeline
        slot. The peer hanging up mid-answer is normal connection churn
        (the v1 serial loop swallows it too), never an unretrieved
        task exception."""
        try:
            await self._answer(writer, write_lock, request)
        except (ConnectionError, OSError):
            pass
        finally:
            self.inflight_requests -= 1
            in_flight.release()

    async def _answer(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        request: Message,
    ) -> bool:
        """Handle one request inside its telemetry envelope.

        With tracing enabled the request runs in a ``server:{op}``
        span parented on the client's span when the header carried the
        optional ``trace`` field (a remote parent); with metrics bound
        the handling latency lands in ``ides_server_request_seconds``.
        Neither configured: exactly the uninstrumented path.
        """
        tracer = get_tracer()
        if not tracer.enabled and self._request_seconds is None:
            return await self._answer_inner(writer, write_lock, request)
        op = str(request.op)
        name = self._server_span_names.get(op)
        if name is None:
            name = self._server_span_names[op] = f"server:{op}"
        parent = TraceContext.from_fields(request.fields)
        started = time.perf_counter()
        with tracer.span(
            name,
            parent=parent,
            attributes=self._span_attributes,
        ):
            try:
                return await self._answer_inner(writer, write_lock, request)
            finally:
                if self._request_seconds is not None:
                    children = self._op_instruments.get(op)
                    if children is None:
                        children = self._op_instruments[op] = (
                            self._request_seconds.labels(op=op),
                            self._requests_total.labels(op=op),
                        )
                    children[0].observe(time.perf_counter() - started)
                    children[1].inc()

    async def _answer_inner(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        request: Message,
    ) -> bool:
        """Handle one request; returns True when the server should stop.

        Per-request isolation: any failure becomes an error frame for
        *this* request id; concurrent pipelined requests never see it.

        The handler body and the response write happen under the write
        lock — server-wide under ``zero_copy`` — so any store views
        the handler returns (the zero-copy gather path) are fully
        flushed to the socket — ``write_message`` waits out transport
        backpressure rather than trusting ``drain()``'s low-water
        mark — before the lock is released and another task *on any
        connection* — say a ``put_many`` refresh — can run and mutate
        the rows they alias. Handlers are synchronous, so holding the
        lock across them costs nothing in concurrency.
        """
        deadline = Deadline.from_fields(request.fields)
        if deadline is not None and self._deadline_remaining is not None:
            self._deadline_remaining.observe(deadline.remaining())
        if self.work_delay:
            await asyncio.sleep(self.work_delay)
        handler = self._HANDLERS.get(request.op)
        async with write_lock:
            try:
                # Shed, don't serve: a request whose propagated budget
                # ran out while it waited (pipeline queue, work_delay,
                # the write lock) has no caller left to care — doing
                # the work now would only delay the requests that still
                # have one. The error frame is cheap and explicit.
                if deadline is not None and deadline.expired():
                    self.deadline_shed += 1
                    raise DeadlineExceededError(
                        f"deadline expired while queued at shard "
                        f"{self.shard_index}"
                    )
                if handler is None:
                    raise ValidationError(f"unknown operation {request.op!r}")
                name = self._engine_span_names.get(request.op)
                if name is None:
                    name = self._engine_span_names[request.op] = (
                        f"engine:{request.op}"
                    )
                with get_tracer().span(name):
                    fields, arrays = handler(self, request)
            except ReproError as error:
                await self._write_error_locked(writer, error, request)
                return False
            except asyncio.CancelledError:  # connection teardown
                raise
            except Exception as error:  # noqa: BLE001 - a handler bug must
                # surface at the caller as an error frame, not kill the
                # shard
                await self._write_error_locked(writer, error, request)
                return False
            await write_message(
                writer,
                {"ok": True, **fields},
                arrays,
                request_id=request.request_id,
                version=request.version,
                flush_timeout=self.flush_timeout,
            )
        if request.op == "shutdown":
            asyncio.get_running_loop().call_soon(
                lambda: asyncio.ensure_future(self.stop())
            )
            if request.version != PROTOCOL_V1:
                # The pipelined path has no serial loop to break out
                # of: close the connection so the read loop unblocks.
                writer.close()
            return True
        return False

    async def _write_error_locked(
        self, writer: asyncio.StreamWriter, error: Exception, request: Message
    ) -> None:
        """Send an error frame for one request (write lock held)."""
        if self._errors_total is not None:
            self._errors_total.labels(op=str(request.op)).inc()
        await write_message(
            writer,
            {"ok": False, "error": type(error).__name__, "message": str(error)},
            request_id=request.request_id,
            version=request.version,
            flush_timeout=self.flush_timeout,
        )

    # ------------------------------------------------------------------ #
    # handlers — one per wire operation (docs/wire-protocol.md)
    # ------------------------------------------------------------------ #

    def _local_ids(self, message: Message, key: str = "ids") -> list:
        ids = message.fields.get(key)
        if not isinstance(ids, list):
            raise ValidationError(f"operation needs a list field {key!r}")
        return _check_wire_ids(ids)

    def _scalar_id(self, message: Message, key: str) -> object:
        host_id = message.fields.get(key)
        if not isinstance(host_id, (str, int)):
            raise ValidationError(
                f"operation needs a str/int field {key!r}, got {host_id!r}"
            )
        return host_id

    def _op_ping(self, message: Message) -> tuple[dict, dict]:
        return (
            {
                "version": PROTOCOL_VERSION,
                "shard_index": self.shard_index,
                "n_shards": self.n_shards,
                "dimension": self.store.dimension,
                "n_hosts": len(self.store),
            },
            {},
        )

    def _op_put_many(self, message: Message) -> tuple[dict, dict]:
        ids = self._local_ids(message)
        outgoing = message.array("outgoing")
        incoming = message.array("incoming")
        misrouted = [
            i for i in ids if shard_of(i, self.n_shards) != self.shard_index
        ]
        if misrouted:
            raise ValidationError(
                f"hosts {misrouted[:5]!r} do not belong to shard "
                f"{self.shard_index}/{self.n_shards}"
            )
        self.store.put_many(ids, outgoing, incoming)
        seq = self._journal_append(message, "put_many", ids, outgoing, incoming)
        return {"stored": len(ids), "seq": seq}, {}

    def _op_update_many(self, message: Message) -> tuple[dict, dict]:
        ids = self._local_ids(message)
        unknown = [i for i in ids if i not in self.store]
        if unknown:
            raise ValidationError(
                f"cannot refresh unregistered hosts: {unknown[:5]!r}"
            )
        outgoing = message.array("outgoing")
        incoming = message.array("incoming")
        self.store.put_many(ids, outgoing, incoming)
        seq = self._journal_append(
            message, "update_many", ids, outgoing, incoming
        )
        return {"updated": len(ids), "seq": seq}, {}

    def _op_delete(self, message: Message) -> tuple[dict, dict]:
        host_id = self._scalar_id(message, "id")
        deleted = self.store.delete(host_id)
        # Journaled even when the host was absent: siblings receive the
        # same fanned-out delete, so recording it unconditionally keeps
        # their sequence numbers aligned.
        seq = self._journal_append(message, "delete", [host_id])
        return {"deleted": deleted, "seq": seq}, {}

    def _journal_append(
        self, message: Message, op: str, ids, outgoing=None, incoming=None
    ) -> int:
        """Record an applied mutation; honours the optional replay stamp.

        A repairer replaying a sibling's journal passes the sibling's
        seq in the request's ``seq`` field so both replicas land on the
        same high-water mark (``docs/wire-protocol.md``).
        """
        stamp = message.fields.get("seq")
        if stamp is not None and not isinstance(stamp, int):
            raise ValidationError(f"seq stamp must be an int, got {stamp!r}")
        return self.journal.append(
            op, ids, outgoing, incoming, seq=stamp
        )

    def _op_gather(self, message: Message) -> tuple[dict, dict]:
        ids = self._local_ids(message)
        which = message.fields.get("which", "both")
        # copy=False: contiguous row slabs leave the store as views and
        # the codec scatter-writes them — no intermediate stacking.
        outgoing, incoming = self.store.gather(ids, copy=not self.zero_copy)
        # A gather is the shard's share of a routed batch (the einsum
        # runs at the router), so it must register as served work or
        # the dominant pairs path would leave every counter at zero.
        self.engine.count_served(0)
        if which == "out":
            return {}, {"outgoing": outgoing}
        if which == "in":
            return {}, {"incoming": incoming}
        if which != "both":
            raise ValidationError(f"gather 'which' must be out/in/both, got {which!r}")
        return {}, {"outgoing": outgoing, "incoming": incoming}

    def _op_ids(self, message: Message) -> tuple[dict, dict]:
        return {"ids": self.store.ids()}, {}

    def _op_point(self, message: Message) -> tuple[dict, dict]:
        source_id = self._scalar_id(message, "source")
        destination_id = self._scalar_id(message, "dest")
        return {"value": self.engine.point(source_id, destination_id)}, {}

    def _op_pairs(self, message: Message) -> tuple[dict, dict]:
        sources = self._local_ids(message, "sources")
        destinations = self._local_ids(message, "dests")
        return {}, {"values": self.engine.pairs(sources, destinations)}

    def _op_fanout(self, message: Message) -> tuple[dict, dict]:
        """One-to-many with the source vector shipped in the request —
        the cross-shard form: the router fetched the source's outgoing
        vector from its home shard and scatters it to every shard
        holding destinations."""
        destinations = self._local_ids(message, "dests")
        source_out = message.array("source_out")
        if source_out.shape != (self.store.dimension,):
            raise ValidationError(
                f"source_out must have shape ({self.store.dimension},), "
                f"got {source_out.shape}"
            )
        _, incoming = self.store.gather(destinations, copy=not self.zero_copy)
        self.engine.count_served(len(destinations))
        return {}, {"values": incoming @ source_out}

    def _op_nearest(self, message: Message) -> tuple[dict, dict]:
        """Local top-k among this shard's hosts; the router merges the
        per-shard candidate lists into the global answer."""
        k = int(message.fields.get("k", 0))
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        source_out = message.array("source_out")
        if source_out.shape != (self.store.dimension,):
            raise ValidationError(
                f"source_out must have shape ({self.store.dimension},), "
                f"got {source_out.shape}"
            )
        candidates = message.fields.get("candidates")
        if candidates is None:
            candidates = self.store.ids()
        else:
            candidates = _check_wire_ids(list(candidates))
        exclude = message.fields.get("exclude")
        if exclude is not None:
            candidates = [c for c in candidates if c != exclude]
        if not candidates:
            return {"ids": []}, {"values": np.zeros(0)}
        _, incoming = self.store.gather(candidates, copy=not self.zero_copy)
        distances = incoming @ source_out
        self.engine.count_served(len(candidates))
        top = top_k_ascending(distances, k)
        return (
            {"ids": [candidates[int(i)] for i in top]},
            {"values": distances[top]},
        )

    def _op_export(self, message: Message) -> tuple[dict, dict]:
        ids, outgoing, incoming = self.store.export()
        _check_wire_ids(ids)
        return {"ids": ids}, {"outgoing": outgoing, "incoming": incoming}

    def _op_health(self, message: Message) -> tuple[dict, dict]:
        return self.health_fields(), {}

    def _op_journal_since(self, message: Message) -> tuple[dict, dict]:
        """Chunked replay of the mutations after a given seq.

        The response is bounded (``limit``, capped at the journal's
        replay chunk) — a caller closes a large gap by advancing
        ``since`` to the last seq it received and calling again.
        Per-entry metadata rides the JSON header; put vectors ride the
        binary array channel as ``out_{k}`` / ``in_{k}``.
        """
        since = message.fields.get("since", 0)
        if not isinstance(since, int) or since < 0:
            raise ValidationError(
                f"journal_since needs an int field 'since' >= 0, got {since!r}"
            )
        limit = message.fields.get("limit", REPLAY_CHUNK)
        if not isinstance(limit, int) or limit < 1:
            raise ValidationError(
                f"journal_since 'limit' must be an int >= 1, got {limit!r}"
            )
        entries, truncated = self.journal.entries_since(
            since, min(limit, REPLAY_CHUNK)
        )
        meta = []
        arrays: dict = {}
        for index, entry in enumerate(entries):
            meta.append({"seq": entry.seq, "op": entry.op, "ids": entry.ids})
            if entry.outgoing is not None:
                arrays[f"out_{index}"] = entry.outgoing
                arrays[f"in_{index}"] = entry.incoming
        return (
            {
                "entries": meta,
                "seq": self.journal.high_water,
                "truncated": truncated,
            },
            arrays,
        )

    def _op_digest(self, message: Message) -> tuple[dict, dict]:
        """Content hash + high-water seq: the convergence check."""
        return (
            {
                "digest": store_digest(self.store),
                "seq": self.journal.high_water,
                "n_hosts": len(self.store),
            },
            {},
        )

    def _op_shutdown(self, message: Message) -> tuple[dict, dict]:
        return {"stopping": True}, {}

    _HANDLERS = {
        "ping": _op_ping,
        "put_many": _op_put_many,
        "update_many": _op_update_many,
        "delete": _op_delete,
        "gather": _op_gather,
        "ids": _op_ids,
        "point": _op_point,
        "pairs": _op_pairs,
        "fanout": _op_fanout,
        "nearest": _op_nearest,
        "export": _op_export,
        "health": _op_health,
        "journal_since": _op_journal_since,
        "digest": _op_digest,
        "shutdown": _op_shutdown,
    }


# ---------------------------------------------------------------------- #
# process entry points
# ---------------------------------------------------------------------- #


def _shard_store_from_snapshot(
    snapshot_path: str, shard_index: int, n_shards: int
) -> InMemoryVectorStore:
    """This shard's slice of a snapshot: the hosts ``shard_of`` maps here."""
    snapshot = load_snapshot(snapshot_path)
    store = InMemoryVectorStore(snapshot.dimension)
    keep = [
        row
        for row, host_id in enumerate(snapshot.ids)
        if shard_of(host_id, n_shards) == shard_index
    ]
    if keep:
        store.put_many(
            [snapshot.ids[row] for row in keep],
            snapshot.outgoing[keep],
            snapshot.incoming[keep],
        )
    return store


def run_shard_server(
    dimension: int | None = None,
    shard_index: int = 0,
    n_shards: int = 1,
    host: str = "127.0.0.1",
    port: int = 0,
    snapshot_path: str | None = None,
    work_delay: float = 0.0,
    max_inflight: int | None = None,
    codec_mode: str = "scatter",
    ready=None,
    announce=None,
    telemetry: bool = False,
    metrics_port: int | None = None,
    trace_export: str | None = None,
    slow_ms: float | None = None,
    journal_dir: str | None = None,
    journal_capacity: int = 4096,
) -> None:
    """Run one shard server until a ``shutdown`` RPC (blocking).

    Args:
        dimension: model dimension for an empty shard (ignored with a
            snapshot).
        shard_index / n_shards: this server's slot in the hash space.
        host / port: bind address (port 0 picks a free port).
        snapshot_path: seed the shard with its slice of a service
            snapshot (only hosts hashing to ``shard_index`` are kept).
        work_delay: per-request artificial service time (benchmarks).
        max_inflight: server-wide admission bound (queued + in-flight
            requests); excess requests are rejected with an overload
            error frame instead of queued. None: queue everything.
        codec_mode: send-side codec for this server process ("scatter"
            or "join") — the knob the transport benchmark flips; the
            server encodes the payload-heavy direction, so the mode
            must be set *here*, in the serving process, to matter.
        ready: optional queue-like object; a ``(host, port, extras)``
            triple is ``put()`` once the server listens (``extras``
            carries e.g. the bound metrics address) — how
            :func:`spawn_shard_process` learns the OS-assigned ports.
        announce: optional callable for a human-readable startup line
            (the CLI passes ``print``).
        telemetry: bind the server to this process's default metrics
            registry and enable tracing (implied by ``metrics_port``
            or ``trace_export``).
        metrics_port: serve HTTP ``/metrics`` + ``/health`` on this
            port (0 picks a free port; None disables the endpoint).
        trace_export: append every finished span to this JSONL file —
            shard processes can share one file with the frontend.
        slow_ms: spans at or above this duration land in the tracer's
            slow-query log.
        journal_dir: directory for the on-disk segment journal. The
            journal reloads existing segments at boot and replays them
            over the snapshot seed, so a restarted replica resumes at
            its pre-crash high-water mark instead of the snapshot's.
        journal_capacity: in-memory journal ring size.
    """
    set_codec_mode(codec_mode)
    telemetry = telemetry or metrics_port is not None or trace_export is not None
    store = None
    if snapshot_path is not None:
        store = _shard_store_from_snapshot(snapshot_path, shard_index, n_shards)
    journal = ShardJournal(capacity=journal_capacity, directory=journal_dir)

    async def serve() -> None:
        server = ShardServer(
            dimension=dimension,
            shard_index=shard_index,
            n_shards=n_shards,
            host=host,
            port=port,
            store=store,
            work_delay=work_delay,
            max_inflight=max_inflight,
            journal=journal,
        )
        extras: dict = {}
        telemetry_server = None
        if telemetry:
            registry = get_registry()
            server.bind_metrics(registry)
            tracer = configure_tracing(
                enabled=True,
                service=f"shard-{shard_index}",
                export_path=trace_export,
                slow_ms=slow_ms,
            )
            registry.register_collector(tracer.stats_samples)
            if metrics_port is not None:
                telemetry_server = TelemetryServer(
                    registry=registry,
                    tracer=tracer,
                    health=server.health_fields,
                    host=host,
                    port=metrics_port,
                )
                extras["metrics"] = await telemetry_server.start()
        bound_host, bound_port = await server.start()
        if ready is not None:
            ready.put((bound_host, bound_port, extras))
        if announce is not None:
            announce(
                f"shard {shard_index}/{n_shards} listening on "
                f"{bound_host}:{bound_port} ({len(server.store)} hosts, "
                f"d={server.store.dimension})"
                + (
                    "; metrics on http://{}:{}".format(*extras["metrics"])
                    if "metrics" in extras
                    else ""
                )
            )
        await server.wait_stopped()
        if telemetry_server is not None:
            await telemetry_server.stop()

    asyncio.run(serve())


@dataclass
class ShardProcess:
    """Handle on a shard server running in a child process.

    Attributes:
        process: the :class:`multiprocessing.Process`.
        host / port: the bound address reported back by the child.
        shard_index: the shard slot the child owns.
        metrics_host / metrics_port: the child's HTTP telemetry
            endpoint, when it was spawned with one (else ``None``).
    """

    process: multiprocessing.Process
    host: str
    port: int
    shard_index: int
    metrics_host: str | None = None
    metrics_port: int | None = None

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` of the child's listener."""
        return self.host, self.port

    @property
    def metrics_address(self) -> tuple[str, int]:
        """``(host, port)`` of the child's ``/metrics`` endpoint."""
        if self.metrics_host is None or self.metrics_port is None:
            raise TransportError(
                f"shard {self.shard_index} was spawned without a "
                "metrics endpoint"
            )
        return self.metrics_host, self.metrics_port

    def kill(self) -> None:
        """SIGKILL the child (failure-injection hook).

        Deliberately the harshest exit — no signal handler, no flush,
        no goodbye on the sockets — because that is the crash the
        failover machinery must absorb; the chaos gate
        (``tools/smoke_failover.py``) relies on it.
        """
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=5.0)

    def stop(self, timeout: float = 5.0) -> None:
        """Graceful shutdown: ``shutdown`` RPC first, terminate as a
        fallback, then reap the child."""
        if self.process.is_alive():
            try:
                asyncio.run(_send_shutdown(self.host, self.port, timeout))
            except Exception:  # noqa: BLE001 - the child may already be
                pass  # gone; terminate below is the backstop
            self.process.join(timeout=timeout)
        if self.process.is_alive():  # pragma: no cover - stuck child
            self.process.terminate()
            self.process.join(timeout=timeout)


async def _send_shutdown(host: str, port: int, timeout: float) -> None:
    from .client import RemoteShardClient

    client = RemoteShardClient(host, port, timeout=timeout, retries=0)
    try:
        await client.call("shutdown")
    finally:
        await client.close()


def spawn_shard_process(
    shard_index: int,
    n_shards: int,
    dimension: int | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    snapshot_path: str | None = None,
    work_delay: float = 0.0,
    max_inflight: int | None = None,
    codec_mode: str = "scatter",
    startup_timeout: float = 30.0,
    telemetry: bool = False,
    metrics_port: int | None = None,
    trace_export: str | None = None,
    slow_ms: float | None = None,
    journal_dir: str | None = None,
) -> ShardProcess:
    """Fork a shard server into a child process and wait for its port.

    ``telemetry`` / ``metrics_port`` / ``trace_export`` / ``slow_ms``
    plumb straight through to :func:`run_shard_server`: the child binds
    its own registry and tracer (registries are per-process — the
    parent scrapes the child over HTTP, it cannot share its object),
    and the bound metrics address is reported back on the handle.
    ``port`` defaults to 0 (OS-assigned); an explicit port is how the
    chaos tests restart a killed replica at its old address.
    ``journal_dir`` must be private to this replica — two processes
    appending to one segment chain would interleave their seqs.
    """
    # Fail in the parent, not as an opaque child startup death.
    check_codec_mode(codec_mode)
    ready: multiprocessing.Queue = multiprocessing.Queue()
    process = multiprocessing.Process(
        target=run_shard_server,
        kwargs={
            "dimension": dimension,
            "shard_index": shard_index,
            "n_shards": n_shards,
            "host": host,
            "port": port,
            "snapshot_path": snapshot_path,
            "work_delay": work_delay,
            "max_inflight": max_inflight,
            "codec_mode": codec_mode,
            "ready": ready,
            "telemetry": telemetry,
            "metrics_port": metrics_port,
            "trace_export": trace_export,
            "slow_ms": slow_ms,
            "journal_dir": journal_dir,
        },
        daemon=True,
        name=f"ides-shard-{shard_index}",
    )
    process.start()

    waited = 0.0
    while True:
        try:
            payload = ready.get(timeout=0.2)
            break
        except queue.Empty:
            waited += 0.2
            if not process.is_alive():
                raise TransportError(
                    f"shard {shard_index} process died during startup"
                ) from None
            if waited >= startup_timeout:
                process.terminate()
                raise TransportError(
                    f"shard {shard_index} did not report a port within "
                    f"{startup_timeout}s"
                ) from None
    bound_host, bound_port = payload[0], payload[1]
    extras = payload[2] if len(payload) > 2 else {}
    metrics_address = extras.get("metrics")
    return ShardProcess(
        process=process,
        host=bound_host,
        port=bound_port,
        shard_index=shard_index,
        metrics_host=metrics_address[0] if metrics_address else None,
        metrics_port=metrics_address[1] if metrics_address else None,
    )
