"""The query router: scatter-gather over a cluster of shard servers.

:class:`ShardedQueryRouter` is the cross-process counterpart of
:class:`~repro.serving.store.ShardedVectorStore`: it splits every
batch by ``shard_of``, turns each group into one RPC, launches the
RPCs *concurrently* with ``asyncio.gather``, and scatters the answers
back into request order. The wall-clock cost of a batch is therefore
the slowest single shard, not the sum over shards —
``benchmarks/bench_transport.py`` gates that the concurrent form beats
sequential per-shard dispatch by >= 2x.

Query plans (each line is one concurrent round):

* ``pairs``   — gather outgoing rows per source shard + incoming rows
  per destination shard, then one local einsum. One round.
* ``one_to_many`` — fetch the source's outgoing vector from its home
  shard, then scatter a ``fanout`` RPC (vector inline) to every shard
  holding destinations; each shard answers with its local dot
  products. Two rounds.
* ``k_nearest``   — fetch the source vector, then scatter a
  ``nearest`` RPC to every candidate-holding shard; each shard returns
  its local top-k and the router merges. Two rounds.

The router also carries the surface
:class:`~repro.serving.frontend.AsyncDistanceFrontend` dispatches into
(`point`/`pairs`/`one_to_many`/`k_nearest` plus a local
:class:`~repro.serving.cache.PredictionCache` with the same
epoch-guarded write discipline as
:class:`~repro.serving.service.DistanceService`), so a frontend can sit
on a remote cluster without its callers changing a line.

Failure isolation: a dark shard surfaces as
:class:`~repro.exceptions.ShardUnavailableError` on exactly the
queries that need it; traffic confined to live shards keeps flowing,
and :meth:`ShardedQueryRouter.health` reports the dark shard with
``reachable=False`` instead of failing outright.

Everything here runs on one event loop and is **not** thread-safe;
:class:`ShardReplicator` is the bridge for synchronous writers (a
:class:`~repro.serving.refresh.RefreshWorker` thread) that need to fan
vector updates out to the cluster.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time
from typing import Sequence

import numpy as np

from ...core.diagnostics import ServiceHealth, ShardHealth
from ...exceptions import OverloadedError, TransportError, ValidationError
from ..cache import PredictionCache
from ..observability.metrics import Sample
from ..observability.tracing import get_tracer
from ..store import group_by_shard, shard_of
from .client import RemoteShardClient

__all__ = ["ShardedQueryRouter", "ShardReplicator", "connect_router"]


async def _dispatch(client, op, fields=None, arrays=None, deadline=None):
    """One client RPC, forwarding ``deadline`` only when one is set —
    duck-typed backends (test fakes, pre-deadline clients) keep their
    three-argument ``call`` signature."""
    if deadline is None:
        return await client.call(op, fields, arrays)
    return await client.call(op, fields, arrays, deadline=deadline)


def _parse_address(address) -> tuple[str, int]:
    if isinstance(address, (tuple, list)) and len(address) == 2:
        return str(address[0]), int(address[1])
    host, separator, port = str(address).rpartition(":")
    if not separator or not host:
        raise ValidationError(
            f"shard address {address!r} is not host:port or (host, port)"
        )
    return host, int(port)


class ShardedQueryRouter:
    """Routes distance queries across one client per shard.

    The client list is positional: ``clients[i]`` must be the server
    owning shard ``i`` of ``len(clients)`` — :meth:`handshake`
    verifies exactly that (plus dimension agreement) before any
    traffic flows.

    Args:
        clients: one :class:`RemoteShardClient` per shard, in shard
            order.
        cache_entries: capacity of the router-local point-query cache.
        cache_ttl: cache entry lifetime. Unlike
            :class:`DistanceService` the default is *finite* (30 s):
            writes published by another process — a
            :class:`ShardReplicator` fanning out a refresh — cannot
            invalidate this router's cache (there is no cross-process
            invalidation channel), so the TTL is what bounds staleness.
            Only routers that are their cluster's sole writer should
            pass None.
        cache_admission: router cache admission policy (``"none"`` or
            the frequency-gated ``"doorkeeper"``; see
            :class:`~repro.serving.cache.PredictionCache`).
        clock: injectable time source for the cache's TTL logic.
    """

    def __init__(
        self,
        clients: Sequence[RemoteShardClient],
        cache_entries: int = 65536,
        cache_ttl: float | None = 30.0,
        cache_admission: str = "none",
        clock=time.monotonic,
    ):
        if not clients:
            raise ValidationError("router needs at least one shard client")
        self.clients = list(clients)
        for shard_index, client in enumerate(self.clients):
            client.shard_index = shard_index
        self.cache = PredictionCache(
            max_entries=cache_entries,
            ttl=cache_ttl,
            clock=clock,
            admission=cache_admission,
        )
        self.dimension: int | None = None
        self._write_epoch = 0
        # Routed-workload counters: the einsum for a pairs batch runs
        # here, not on any shard, so cluster-level served work is
        # accounted at the router (shards report their own RPC-level
        # engine counters in ShardHealth).
        self._queries_served = 0
        self._pairs_evaluated = 0
        #: Brownout degradations: point queries answered from a
        #: TTL-expired cache entry because the owning shard refused
        #: admission (see :meth:`point`).
        self._stale_served = 0
        #: Optional routed-query latency histogram, attached by
        #: :meth:`bind_metrics`; ``None`` keeps the hot path untouched.
        self._query_seconds = None

    def _count(self, pairs: int) -> None:
        self._queries_served += 1
        self._pairs_evaluated += int(pairs)

    # ------------------------------------------------------------------ #
    # telemetry
    # ------------------------------------------------------------------ #

    def bind_metrics(self, registry) -> None:
        """Expose the router, its cache and every shard client.

        Routed-query latency lands in ``ides_router_query_seconds``
        (labeled by plan kind); the existing counters, the cache stats
        and each :class:`RemoteShardClient`'s telemetry become
        scrape-time collector samples.
        """
        self._query_seconds = registry.histogram(
            "ides_router_query_seconds",
            "Routed query latency by plan kind (scatter-gather included).",
            labels=("kind",),
        )
        self.cache.bind_metrics(registry, component="router")
        for client in self.clients:
            client.bind_metrics(registry)

        def collect():
            return [
                Sample("ides_router_queries_total", "counter",
                       "Queries routed (batches count once).",
                       (), self._queries_served),
                Sample("ides_router_pairs_total", "counter",
                       "Host pairs evaluated across routed queries.",
                       (), self._pairs_evaluated),
                Sample("ides_router_write_epoch", "counter",
                       "Routed writes (the cache guard epoch).",
                       (), self._write_epoch),
                Sample("ides_router_shards", "gauge",
                       "Shard clients owned by this router.",
                       (), self.n_shards),
                Sample("ides_router_stale_served_total", "counter",
                       "Point queries served from a TTL-expired cache "
                       "entry during shard overload (brownout).",
                       (), self._stale_served),
            ]

        registry.register_collector(collect)

    @contextlib.contextmanager
    def _observe(self, kind: str):
        """Span + latency envelope for one routed query (no-op unless
        tracing is enabled or metrics are bound)."""
        tracer = get_tracer()
        histogram = self._query_seconds
        if not tracer.enabled and histogram is None:
            yield
            return
        started = time.perf_counter()
        with tracer.span(f"router:{kind}"):
            try:
                yield
            finally:
                if histogram is not None:
                    histogram.labels(kind=kind).observe(
                        time.perf_counter() - started
                    )

    @property
    def n_shards(self) -> int:
        """Number of shards (and shard clients)."""
        return len(self.clients)

    def client_for(self, host_id: object) -> RemoteShardClient:
        """The client owning ``host_id``'s shard."""
        return self.clients[shard_of(host_id, self.n_shards)]

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def handshake(self) -> None:
        """Ping every shard and verify the cluster topology.

        Each server must agree on ``n_shards``, sit at the position
        its ``shard_index`` claims, and share one model dimension.
        Raises :class:`ShardUnavailableError` for a dark shard and
        :class:`ValidationError` for a topology mismatch.
        """
        responses = await asyncio.gather(
            *(client.call("ping") for client in self.clients)
        )
        dimensions = set()
        for position, (client, response) in enumerate(
            zip(self.clients, responses)
        ):
            reported_index = response.fields.get("shard_index")
            reported_total = response.fields.get("n_shards")
            if reported_index != position or reported_total != self.n_shards:
                raise ValidationError(
                    f"server at {client.address} is shard "
                    f"{reported_index}/{reported_total}, expected "
                    f"{position}/{self.n_shards}"
                )
            dimensions.add(int(response.fields["dimension"]))
        if len(dimensions) != 1:
            raise ValidationError(
                f"shards disagree on model dimension: {sorted(dimensions)}"
            )
        self.dimension = dimensions.pop()

    async def close(self) -> None:
        """Close every shard client's connection pool."""
        await asyncio.gather(*(client.close() for client in self.clients))

    async def __aenter__(self) -> "ShardedQueryRouter":
        await self.handshake()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #

    async def put_many(
        self, host_ids: Sequence, outgoing: np.ndarray, incoming: np.ndarray
    ) -> int:
        """Scatter vectors to their home shards (seed / registration).

        Returns the number of hosts stored.
        """
        outgoing = np.asarray(outgoing, dtype=float)
        incoming = np.asarray(incoming, dtype=float)
        host_ids = list(host_ids)
        groups = group_by_shard(host_ids, self.n_shards)

        async def put(shard_index: int, positions: np.ndarray) -> int:
            response = await self.clients[shard_index].call(
                "put_many",
                {"ids": [host_ids[p] for p in positions]},
                {"outgoing": outgoing[positions], "incoming": incoming[positions]},
            )
            return int(response.fields["stored"])

        stored = await asyncio.gather(
            *(put(shard, positions) for shard, positions in groups.items())
        )
        self._note_write(host_ids)
        return sum(stored)

    async def apply_vector_updates(
        self, host_ids: Sequence, outgoing: np.ndarray, incoming: np.ndarray
    ) -> int:
        """Fan a bulk refresh out to the owning shards.

        Mirrors :meth:`DistanceService.apply_vector_updates`: a shard
        refuses hosts it does not know (ValidationError). The fan-out
        is not atomic across shards — on a partial failure the
        exception propagates and the caller retries; updates are
        idempotent overwrites, so a replayed flush converges.
        """
        outgoing = np.asarray(outgoing, dtype=float)
        incoming = np.asarray(incoming, dtype=float)
        host_ids = list(host_ids)
        groups = group_by_shard(host_ids, self.n_shards)

        async def update(shard_index: int, positions: np.ndarray) -> int:
            response = await self.clients[shard_index].call(
                "update_many",
                {"ids": [host_ids[p] for p in positions]},
                {"outgoing": outgoing[positions], "incoming": incoming[positions]},
            )
            return int(response.fields["updated"])

        updated = await asyncio.gather(
            *(update(shard, positions) for shard, positions in groups.items())
        )
        self._note_write(host_ids)
        return sum(updated)

    async def delete(self, host_id: object) -> bool:
        """Remove one host from its shard; returns whether it existed."""
        response = await self.client_for(host_id).call("delete", {"id": host_id})
        self._note_write([host_id])
        return bool(response.fields["deleted"])

    def _note_write(self, host_ids: Sequence) -> None:
        self.cache.invalidate_hosts(host_ids)
        self._write_epoch += 1

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    async def gather(
        self, host_ids: Sequence, which: str = "both", deadline=None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stack hosts' vectors into ``(n, d)`` matrices, request order.

        ``which`` limits the wire payload: ``"out"`` fills only the
        outgoing matrix (incoming rows are zero), ``"in"`` the
        reverse. One concurrent RPC per involved shard. ``deadline``
        (a :class:`~repro.serving.transport.protocol.Deadline`) rides
        into every sub-RPC: each shard client derives its attempt
        timeout from the remaining budget and the servers shed the
        request if it expires in their queues.
        """
        host_ids = list(host_ids)
        dimension = await self._require_dimension()
        count = len(host_ids)
        outgoing = np.zeros((count, dimension))
        incoming = np.zeros((count, dimension))
        groups = group_by_shard(host_ids, self.n_shards)

        async def fetch(shard_index: int, positions: np.ndarray):
            response = await _dispatch(
                self.clients[shard_index],
                "gather",
                {"ids": [host_ids[p] for p in positions], "which": which},
                deadline=deadline,
            )
            return positions, response

        for positions, response in await asyncio.gather(
            *(fetch(shard, positions) for shard, positions in groups.items())
        ):
            if which in ("both", "out"):
                outgoing[positions] = response.array("outgoing")
            if which in ("both", "in"):
                incoming[positions] = response.array("incoming")
        return outgoing, incoming

    async def point(
        self, source_id: object, destination_id: object, deadline=None
    ) -> float:
        """One predicted distance; single-RPC when co-located.

        Brownout degradation: when the owning shard refuses admission
        (:class:`~repro.exceptions.OverloadedError`) and the router
        still holds a cache entry for the pair — even a TTL-expired
        one — that entry is served instead of failing. A stale answer
        comes back as :class:`~repro.serving.cache.StalePrediction`
        (``value.stale`` is True) so callers can tell bounded-stale
        from fresh; a pair never cached re-raises the overload.
        """
        try:
            source_client = self.client_for(source_id)
            if source_client is self.client_for(destination_id):
                with self._observe("point"):
                    response = await _dispatch(
                        source_client,
                        "point",
                        {"source": source_id, "dest": destination_id},
                        deadline=deadline,
                    )
                self._count(1)
                return float(response.fields["value"])
            values = await self.pairs(
                [source_id], [destination_id], deadline=deadline
            )
            return float(values[0])
        except OverloadedError:
            stale = self.cache.get_stale(source_id, destination_id)
            if stale is None:
                raise
            self._stale_served += 1
            self._count(1)
            return stale

    async def pairs(
        self, source_ids: Sequence, destination_ids: Sequence, deadline=None
    ) -> np.ndarray:
        """Aligned per-pair distances — the frontend's coalescing
        primitive, served in one concurrent scatter round."""
        if len(source_ids) != len(destination_ids):
            raise ValidationError(
                f"pairs needs aligned sequences, got {len(source_ids)} "
                f"sources and {len(destination_ids)} destinations"
            )
        with self._observe("pairs"):
            (outgoing, _), (_, incoming) = await asyncio.gather(
                self.gather(source_ids, which="out", deadline=deadline),
                self.gather(destination_ids, which="in", deadline=deadline),
            )
            self._count(len(source_ids))
            return np.einsum("ij,ij->i", outgoing, incoming)

    async def one_to_many(
        self, source_id: object, destination_ids: Sequence
    ) -> np.ndarray:
        """1:N fan-out: ship the source vector, dot on the shards."""
        destination_ids = list(destination_ids)
        with self._observe("one_to_many"):
            source_out = await self._source_vector(source_id)
            values = np.zeros(len(destination_ids))
            groups = group_by_shard(destination_ids, self.n_shards)

            async def fanout(shard_index: int, positions: np.ndarray):
                response = await self.clients[shard_index].call(
                    "fanout",
                    {"dests": [destination_ids[p] for p in positions]},
                    {"source_out": source_out},
                )
                return positions, response.array("values")

            for positions, shard_values in await asyncio.gather(
                *(fanout(shard, positions) for shard, positions in groups.items())
            ):
                values[positions] = shard_values
            self._count(len(destination_ids))
            return values

    async def many_to_many(
        self, source_ids: Sequence, destination_ids: Sequence
    ) -> np.ndarray:
        """The ``(n_src, n_dst)`` block: gather both sides, one product."""
        with self._observe("many_to_many"):
            (outgoing, _), (_, incoming) = await asyncio.gather(
                self.gather(source_ids, which="out"),
                self.gather(destination_ids, which="in"),
            )
            self._count(len(source_ids) * len(destination_ids))
            return outgoing @ incoming.T

    async def k_nearest(
        self,
        source_id: object,
        k: int,
        candidate_ids: Sequence | None = None,
    ) -> list[tuple[object, float]]:
        """Global k-nearest: per-shard local top-k, merged at the router."""
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        with self._observe("k_nearest"):
            source_out = await self._source_vector(source_id)
            if candidate_ids is None:
                targets = {
                    shard_index: None for shard_index in range(self.n_shards)
                }
            else:
                candidates = list(candidate_ids)
                groups = group_by_shard(candidates, self.n_shards)
                targets = {
                    shard_index: [candidates[p] for p in positions]
                    for shard_index, positions in groups.items()
                }

            async def nearest(shard_index: int, shard_candidates):
                fields = {"k": int(k), "exclude": source_id}
                if shard_candidates is not None:
                    fields["candidates"] = shard_candidates
                response = await self.clients[shard_index].call(
                    "nearest", fields, {"source_out": source_out}
                )
                return list(
                    zip(response.fields["ids"], response.array("values").tolist())
                )

            per_shard = await asyncio.gather(
                *(nearest(shard, shard_candidates)
                  for shard, shard_candidates in targets.items())
            )
            merged = [entry for shard_list in per_shard for entry in shard_list]
            merged.sort(key=lambda entry: entry[1])
            self._count(len(merged))
            return merged[:k]

    async def known_hosts(self) -> list:
        """Every identifier stored across the cluster."""
        responses = await asyncio.gather(
            *(client.call("ids") for client in self.clients)
        )
        collected: list = []
        for response in responses:
            collected.extend(response.fields["ids"])
        return collected

    async def _source_vector(self, source_id: object) -> np.ndarray:
        response = await self.client_for(source_id).call(
            "gather", {"ids": [source_id], "which": "out"}
        )
        return response.array("outgoing")[0]

    async def _require_dimension(self) -> int:
        if self.dimension is None:
            await self.handshake()
        return int(self.dimension)

    # ------------------------------------------------------------------ #
    # health
    # ------------------------------------------------------------------ #

    async def health(self) -> ServiceHealth:
        """Cluster health with per-shard detail.

        A dark shard becomes a ``reachable=False`` entry instead of an
        exception: a health probe must never be the thing that fails.
        A replica-group client (see
        :mod:`~repro.serving.transport.replica`) is probed on *every*
        replica — the probe is also how recovered replicas rejoin —
        and contributes per-replica states and failover counts to its
        :class:`ShardHealth` entry.
        """

        def replica_detail(client) -> tuple[tuple, int]:
            reporter = getattr(client, "replica_health", None)
            if reporter is None:
                return (), 0
            return reporter(), int(getattr(client, "failovers", 0))

        async def probe(shard_index: int, client: RemoteShardClient):
            prober = getattr(client, "probe", None)
            try:
                if prober is not None:
                    response = await prober()
                else:
                    response = await client.call("health")
            except TransportError:
                replicas, failovers = replica_detail(client)
                return ShardHealth(
                    shard_index=shard_index,
                    n_hosts=0,
                    address=client.address,
                    reachable=False,
                    replicas=replicas,
                    failovers=failovers,
                    group_overload_events=int(
                        getattr(client, "overload_events", 0)
                    ),
                )
            fields = response.fields
            replicas, failovers = replica_detail(client)
            return ShardHealth(
                shard_index=shard_index,
                n_hosts=int(fields["n_hosts"]),
                queries_served=int(fields["queries_served"]),
                pairs_evaluated=int(fields["pairs_evaluated"]),
                address=client.address,
                replicas=replicas,
                failovers=failovers,
                overload_rejections=fields.get("overload_rejections"),
                deadline_shed=fields.get("deadline_shed"),
                group_overload_events=int(
                    getattr(client, "overload_events", 0)
                ),
            )

        shards = tuple(
            await asyncio.gather(
                *(probe(i, client) for i, client in enumerate(self.clients))
            )
        )
        cache_stats = self.cache.stats()
        return ServiceHealth(
            n_hosts=sum(shard.n_hosts for shard in shards),
            n_landmarks=0,
            dimension=self.dimension or 0,
            n_shards=self.n_shards,
            shard_occupancy=tuple(shard.n_hosts for shard in shards),
            queries_served=self._queries_served,
            pairs_evaluated=self._pairs_evaluated,
            cache_hits=cache_stats.hits,
            cache_misses=cache_stats.misses,
            cache_size=cache_stats.size,
            cache_max_entries=cache_stats.max_entries,
            cache_admitted=cache_stats.admitted,
            cache_rejected=cache_stats.rejected,
            stale_served=self._stale_served,
            shards=shards,
        )

    # ------------------------------------------------------------------ #
    # the frontend's epoch-guarded cache surface
    # ------------------------------------------------------------------ #

    @property
    def write_epoch(self) -> int:
        """Monotonic count of routed writes (see
        :meth:`DistanceService.write_epoch` for the guard protocol)."""
        return self._write_epoch

    def cache_put_if_current(
        self, epoch: int, source_id: object, destination_id: object, value: float
    ) -> bool:
        """Cache a prediction unless a routed write intervened."""
        if epoch != self._write_epoch:
            return False
        self.cache.put(source_id, destination_id, value)
        return True

    def cache_put_many_if_current(self, epoch: int, entries: Sequence[tuple]) -> int:
        """Bulk :meth:`cache_put_if_current`; returns entries stored."""
        if epoch != self._write_epoch:
            return 0
        for source_id, destination_id, value in entries:
            self.cache.put(source_id, destination_id, value)
        return len(entries)


async def connect_router(
    addresses: Sequence, handshake: bool = True, **options: object
) -> ShardedQueryRouter:
    """Build a router from shard addresses and run the handshake.

    Args:
        addresses: one ``"host:port"`` string (or ``(host, port)``
            tuple) per shard, in shard order.
        handshake: verify the cluster topology before returning.
            ``False`` skips it — for degraded health/shutdown sessions
            against a cluster with dark shards; queries on an
            unverified router fail on first use instead.
        **options: forwarded to :class:`ShardedQueryRouter` and the
            underlying clients (``timeout``, ``retries``, ``pool_size``,
            ``retry_budget``, ``protocol_version``, ``max_in_flight``
            go to the clients; the rest to the router). One
            :class:`~repro.serving.transport.client.RetryBudget`
            instance passed as ``retry_budget`` is shared by every
            shard client — a cluster-wide cap on retry amplification.
    """
    client_options = {
        key: options.pop(key)
        for key in (
            "pool_size",
            "timeout",
            "retries",
            "retry_backoff",
            "retry_budget",
            "protocol_version",
            "max_in_flight",
        )
        if key in options
    }
    clients = [
        RemoteShardClient(*_parse_address(address), **client_options)
        for address in addresses
    ]
    router = ShardedQueryRouter(clients, **options)
    if handshake:
        try:
            await router.handshake()
        except Exception:
            await router.close()
            raise
    return router


def _is_single_address(address) -> bool:
    """Whether ``address`` names one server (vs a replica group)."""
    if isinstance(address, str):
        return True
    return (
        isinstance(address, (tuple, list))
        and len(address) == 2
        and isinstance(address[0], str)
        and isinstance(address[1], int)
    )


def _address_text(address) -> str:
    host, port = _parse_address(address)
    return f"{host}:{port}"


class ShardReplicator:
    """A synchronous update sink that replicates into a shard cluster.

    Bridges the thread-world of
    :meth:`DistanceService.add_update_sink` /
    :class:`~repro.serving.refresh.RefreshWorker` onto the router's
    asyncio world: the replicator owns a private event loop on a
    daemon thread, and ``__call__`` submits the fan-out there and
    blocks for the result — safe to invoke from any thread (and *only*
    from outside the replicator's own loop, which no caller ever sees).

    Replication is an **upsert** (``put_many``, not ``update_many``):
    the primary service already enforced membership under its own lock
    before invoking the sink, so a host registered on the primary
    after the shards were seeded simply appears on its home shard at
    the next flush — it must not make the shard reject the whole
    sub-batch and silently starve its co-grouped hosts of updates.

    Each address may itself be a sequence of addresses — a **replica
    group** (see :mod:`~repro.serving.transport.replica`): the flush
    then fans out to every replica of every slice, which is exactly
    the stream that keeps warm standbys convergent between snapshot
    re-seeds.

    The replicator carries a stable :attr:`sink_name` derived from the
    cluster topology it writes to, so
    :meth:`DistanceService.add_update_sink`'s per-sink failure
    attribution survives sinks being added and removed around it —
    positional ``sink-{n}`` default names shift when an earlier sink
    is detached mid-run, silently re-attributing later failures.

    Usage::

        replicator = ShardReplicator(["127.0.0.1:7001", "127.0.0.1:7002"])
        service.add_update_sink(replicator)   # refresh flushes now fan out
        ...
        service.remove_update_sink(replicator)
        replicator.close()
    """

    def __init__(
        self,
        addresses: Sequence,
        call_timeout: float = 30.0,
        **options: object,
    ):
        self.call_timeout = float(call_timeout)
        addresses = list(addresses)
        #: Stable identity for per-sink failure attribution: the
        #: cluster topology, slices ``;``-separated and replicas
        #: ``|``-separated, independent of attachment order.
        self.sink_name = "replicator[" + ";".join(
            _address_text(address)
            if _is_single_address(address)
            else "|".join(_address_text(replica) for replica in address)
            for address in addresses
        ) + "]"
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="ides-shard-replicator",
            daemon=True,
        )
        self._thread.start()
        try:
            if all(_is_single_address(address) for address in addresses):
                connect = connect_router(addresses, **options)
            else:
                from .replica import connect_replica_router

                replicated = [
                    [address] if _is_single_address(address) else address
                    for address in addresses
                ]
                connect = connect_replica_router(replicated, **options)
            self._router = self._submit(connect)
        except BaseException:
            self._shutdown_loop()
            raise

    def _submit(self, coroutine):
        future = asyncio.run_coroutine_threadsafe(coroutine, self._loop)
        return future.result(timeout=self.call_timeout)

    def __call__(
        self, host_ids: Sequence, outgoing: np.ndarray, incoming: np.ndarray
    ) -> int:
        """Fan one vector-update batch out to the cluster (blocking)."""
        return self._submit(
            self._router.put_many(host_ids, outgoing, incoming)
        )

    def health(self) -> ServiceHealth:
        """Cluster health through the replicator's private loop."""
        return self._submit(self._router.health())

    def close(self) -> None:
        """Close the router and stop the private loop thread."""
        try:
            self._submit(self._router.close())
        finally:
            self._shutdown_loop()

    def _shutdown_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        if not self._thread.is_alive():
            self._loop.close()
