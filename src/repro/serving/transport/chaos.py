"""Deterministic fault injection for the transport tier.

The SIGKILL chaos gate (``tools/smoke_failover.py``) proves the
failover contracts against real processes, but wall-clock chaos is
slow and non-reproducible — a flaky divergence bug that shows up once
per hundred CI runs is effectively unprovable there. This module makes
the same fault classes **deterministic and fast**: a seeded
:class:`ChaosSchedule` turns a PRNG stream into a reproducible
sequence of per-call fault decisions, and :class:`ChaosClient` wraps
any object with the shard-client surface (a real
:class:`~repro.serving.transport.client.RemoteShardClient`, a replica
group member, a test fake) and applies them:

* **drop** — the call never reaches the server; the caller sees
  :class:`~repro.exceptions.ShardUnavailableError`, exactly the signal
  a dead frame produces after the retry budget.
* **delay** — the call is held for ``delay_seconds`` before being
  forwarded (tail-latency injection for the EWMA scoring paths).
* **duplicate** — the call is forwarded twice (the wire vocabulary is
  idempotent by contract; duplication proves it, and proves the
  journal's seq gating self-heals when one replica sees a write
  twice).
* **refuse writes** — mutating ops (``put_many`` / ``update_many`` /
  ``delete``) are answered with
  :class:`~repro.exceptions.RemoteShardError` without touching the
  server, modeling a live server that rejects writes on schedule — the
  divergence generator: one replica applies a write its sibling
  refused.
* **slow reads** — non-mutating ops stall for ``slow_read_seconds``
  before being forwarded, modeling a server that is alive but
  queue-saturated: the fault that deadline budgets, per-attempt
  timeouts and retry budgets exist to bound. Distinct from **delay**,
  which applies to every op class.

Decisions are drawn in a fixed order per call regardless of which
faults are enabled, so the decision *stream* depends only on the seed
and the number of calls — two runs with the same seed and the same
call sequence replay identically (the property the hypothesis suite
pins down).
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass

from ...exceptions import (
    RemoteShardError,
    ShardUnavailableError,
    ValidationError,
)

__all__ = ["ChaosClient", "ChaosDecision", "ChaosSchedule", "WRITE_OPS"]

#: Mutating wire operations — the ones ``refuse_writes`` applies to.
WRITE_OPS = frozenset({"put_many", "update_many", "delete"})


@dataclass(frozen=True)
class ChaosDecision:
    """The faults drawn for one call (several may fire together)."""

    drop: bool = False
    delay: bool = False
    duplicate: bool = False
    refuse_write: bool = False
    slow_read: bool = False


class ChaosSchedule:
    """Seeded, replayable stream of per-call fault decisions.

    Args:
        seed: PRNG seed — the whole schedule's identity.
        drop: probability a call is dropped.
        delay: probability a call is delayed by ``delay_seconds``.
        duplicate: probability a call is forwarded twice.
        refuse_writes: probability a *write* call is refused by the
            "server" (reads never draw a refusal fault, but the PRNG
            position advances identically either way).
        delay_seconds: how long a delayed call is held.
        slow_read: probability a *read* call stalls for
            ``slow_read_seconds`` before being forwarded (writes never
            draw a slow-read fault, but the PRNG position advances
            identically either way).
        slow_read_seconds: how long a slowed read stalls.
    """

    def __init__(
        self,
        seed: int = 0,
        drop: float = 0.0,
        delay: float = 0.0,
        duplicate: float = 0.0,
        refuse_writes: float = 0.0,
        delay_seconds: float = 0.0,
        slow_read: float = 0.0,
        slow_read_seconds: float = 0.0,
    ):
        for name, value in (
            ("drop", drop),
            ("delay", delay),
            ("duplicate", duplicate),
            ("refuse_writes", refuse_writes),
            ("slow_read", slow_read),
        ):
            if not 0.0 <= float(value) <= 1.0:
                raise ValidationError(
                    f"{name} must be a probability in [0, 1], got {value}"
                )
        if delay_seconds < 0:
            raise ValidationError(
                f"delay_seconds must be >= 0, got {delay_seconds}"
            )
        if slow_read_seconds < 0:
            raise ValidationError(
                f"slow_read_seconds must be >= 0, got {slow_read_seconds}"
            )
        self.seed = int(seed)
        self.drop = float(drop)
        self.delay = float(delay)
        self.duplicate = float(duplicate)
        self.refuse_writes = float(refuse_writes)
        self.delay_seconds = float(delay_seconds)
        self.slow_read = float(slow_read)
        self.slow_read_seconds = float(slow_read_seconds)
        self._rng = random.Random(self.seed)
        #: Every decision drawn, in draw order — the replay transcript.
        self.history: list[ChaosDecision] = []

    def decide(self, op: str) -> ChaosDecision:
        """Draw the fault decision for one call.

        Five PRNG draws happen unconditionally and in a fixed order,
        so the stream position after N calls depends only on the seed
        and N — never on which probabilities are zero or which ops
        were called.
        """
        draws = (
            self._rng.random(),
            self._rng.random(),
            self._rng.random(),
            self._rng.random(),
            self._rng.random(),
        )
        decision = ChaosDecision(
            drop=draws[0] < self.drop,
            delay=draws[1] < self.delay,
            duplicate=draws[2] < self.duplicate,
            refuse_write=(op in WRITE_OPS) and draws[3] < self.refuse_writes,
            slow_read=(op not in WRITE_OPS) and draws[4] < self.slow_read,
        )
        self.history.append(decision)
        return decision

    def reset(self) -> None:
        """Rewind to the start of the schedule (same seed, fresh stream)."""
        self._rng = random.Random(self.seed)
        self.history.clear()


class ChaosClient:
    """A shard client wrapper that injects a schedule's faults.

    Duck-types the client surface replica groups and routers dispatch
    against (``call`` / ``close`` / ``address`` / ``shard_index`` /
    pool attributes); everything not intercepted delegates to the
    wrapped client, so a :class:`ChaosClient` slots anywhere a
    :class:`RemoteShardClient` does.
    """

    def __init__(self, client, schedule: ChaosSchedule):
        self._client = client
        self.schedule = schedule
        self.dropped = 0
        self.delayed = 0
        self.duplicated = 0
        self.refused_writes = 0
        self.slowed_reads = 0

    @property
    def shard_index(self):
        return getattr(self._client, "shard_index", None)

    @shard_index.setter
    def shard_index(self, value) -> None:
        # Replica groups assign the slice index through this attribute;
        # it must land on the wrapped client so error attribution and
        # telemetry labels stay correct.
        self._client.shard_index = value

    def __getattr__(self, name: str):
        # bind_metrics, address, pool gauges, fake-specific helpers …
        return getattr(self._client, name)

    async def call(self, op, fields=None, arrays=None, deadline=None):
        decision = self.schedule.decide(op)
        if decision.refuse_write:
            self.refused_writes += 1
            raise RemoteShardError(
                f"chaos schedule refused write {op!r} "
                f"(seed {self.schedule.seed})"
            )
        if decision.drop:
            self.dropped += 1
            raise ShardUnavailableError(
                f"chaos schedule dropped {op!r} (seed {self.schedule.seed})",
                shard_index=getattr(self._client, "shard_index", None),
            )
        if decision.delay:
            self.delayed += 1
            if self.schedule.delay_seconds:
                await asyncio.sleep(self.schedule.delay_seconds)
        if decision.slow_read:
            self.slowed_reads += 1
            if self.schedule.slow_read_seconds:
                await asyncio.sleep(self.schedule.slow_read_seconds)
        if decision.duplicate:
            self.duplicated += 1
            await self._forward(op, fields, arrays, deadline)
        return await self._forward(op, fields, arrays, deadline)

    async def _forward(self, op, fields, arrays, deadline):
        # Deadline only rides through when one is set, so wrapped test
        # fakes with the three-argument ``call`` keep working.
        if deadline is None:
            return await self._client.call(op, fields, arrays)
        return await self._client.call(op, fields, arrays, deadline=deadline)

    async def close(self) -> None:
        await self._client.close()
