"""Pipelining micro-benchmark: one socket, many in-flight RPCs.

The measurement behind the ``ides-experiment serve bench-transport``
CLI subcommand and the ≥3x acceptance gate in
``benchmarks/bench_transport.py``: against a single shard-server
*process* with a fixed per-request service time (``work_delay``,
modeling real network + gather latency deterministically), compare

* the **one-in-flight baseline** — a ``protocol_version=1`` client
  with ``pool_size=1``, i.e. exactly PR 3's transport on one socket:
  every RPC waits for the previous response; and
* the **pipelined** form — a v2 client on one socket keeping
  ``depth`` requests in flight, whose service times overlap on the
  server.

Both sides issue the identical ``gather`` plan over the identical ids,
so the gap is purely the conversation discipline. ``codec`` selects
the send-side codec ("scatter" zero-copy views vs the legacy "join"
single-buffer build) so the codec win is reproducible from the command
line as well.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

import numpy as np

from ...exceptions import ValidationError
from . import protocol
from .client import RemoteShardClient
from .protocol import set_codec_mode
from .server import spawn_shard_process

__all__ = ["PipelineReport", "measure_pipelined_speedup"]


@dataclass(frozen=True)
class PipelineReport:
    """Outcome of one pipelining comparison run.

    Attributes:
        requests: RPCs issued per strategy.
        depth: pipeline depth of the v2 client.
        batch: ids gathered per RPC (payload size knob).
        work_delay: per-request service time configured on the shard.
        codec: send-side codec mode used ("scatter" or "join").
        sequential_seconds: wall time of the one-in-flight baseline.
        pipelined_seconds: wall time of the pipelined client.
    """

    requests: int
    depth: int
    batch: int
    work_delay: float
    codec: str
    sequential_seconds: float
    pipelined_seconds: float

    @property
    def speedup(self) -> float:
        """Baseline time over pipelined time."""
        if self.pipelined_seconds <= 0:
            return 0.0
        return self.sequential_seconds / self.pipelined_seconds

    def __str__(self) -> str:
        return (
            f"{self.requests} gathers of {self.batch} ids, depth "
            f"{self.depth}, codec {self.codec}: one-in-flight "
            f"{self.sequential_seconds * 1000:.0f} ms, pipelined "
            f"{self.pipelined_seconds * 1000:.0f} ms -> "
            f"{self.speedup:.1f}x"
        )


async def _measure_once(
    address: tuple[str, int],
    ids: list,
    requests: int,
    depth: int,
    batch: int,
    registry=None,
) -> tuple[float, float]:
    """(sequential_seconds, pipelined_seconds) over identical plans."""
    picks = [
        [ids[(r * 7 + i) % len(ids)] for i in range(batch)]
        for r in range(requests)
    ]

    baseline = RemoteShardClient(
        *address, pool_size=1, protocol_version=1, timeout=30.0
    )
    pipelined = RemoteShardClient(
        *address,
        pool_size=1,
        protocol_version=2,
        max_in_flight=depth,
        timeout=30.0,
    )
    if registry is not None:
        baseline.bind_metrics(registry)
        pipelined.bind_metrics(registry)
    try:
        # Warm both connections (dial + negotiate) before timing.
        await baseline.call("ping")
        await pipelined.call("ping")

        started = time.perf_counter()
        for plan in picks:
            await baseline.call("gather", {"ids": plan, "which": "out"})
        sequential = time.perf_counter() - started

        window = asyncio.Semaphore(depth)

        async def one(plan: list) -> None:
            async with window:
                await pipelined.call("gather", {"ids": plan, "which": "out"})

        started = time.perf_counter()
        await asyncio.gather(*(one(plan) for plan in picks))
        elapsed = time.perf_counter() - started

        if pipelined.open_connections != 1:
            raise ValidationError(
                "pipelined measurement leaked onto "
                f"{pipelined.open_connections} sockets"
            )
        return sequential, elapsed
    finally:
        await baseline.close()
        await pipelined.close()


def measure_pipelined_speedup(
    depth: int = 16,
    requests: int = 96,
    batch: int = 32,
    work_delay: float = 0.002,
    codec: str = "scatter",
    dimension: int = 10,
    n_hosts: int = 256,
    attempts: int = 3,
    instrument: bool = False,
) -> PipelineReport:
    """Spawn one shard process and compare the two disciplines.

    Best-of-``attempts`` to absorb scheduler noise on loaded CI
    runners; the gap is architectural (requests/depth versus requests
    sequential service times), so one clean run suffices.

    ``instrument=True`` runs the identical measurement with the full
    telemetry plane live on both sides — client RPC histograms bound
    to a fresh registry, tracing enabled in this process, and the
    shard process running its own registry and tracer — so
    ``benchmarks/bench_observability.py`` can gate the overhead of
    observability against the plain run.
    """
    if depth < 1:
        raise ValidationError(f"depth must be >= 1, got {depth}")
    rng = np.random.default_rng(3)
    ids = [f"h{i}" for i in range(n_hosts)]
    outgoing = rng.random((n_hosts, dimension)) + 0.5
    incoming = rng.random((n_hosts, dimension)) + 0.5

    # The payload-heavy direction (gather responses) is encoded by the
    # shard *process*, so the codec mode must be set there; the parent
    # mirrors it so the seeding put_many exercises the same send path.
    process = spawn_shard_process(
        0,
        1,
        dimension=dimension,
        work_delay=work_delay,
        codec_mode=codec,
        telemetry=instrument,
    )
    previous_codec = protocol.CODEC_MODE  # live value, not an import-time copy
    set_codec_mode(codec)

    registry = None
    if instrument:
        from ..observability import MetricsRegistry, configure_tracing

        registry = MetricsRegistry()
        configure_tracing(enabled=True, service="bench-client")

    async def seed() -> None:
        client = RemoteShardClient(*process.address, timeout=30.0)
        try:
            await client.call(
                "put_many",
                {"ids": ids},
                {"outgoing": outgoing, "incoming": incoming},
            )
        finally:
            await client.close()

    try:
        asyncio.run(seed())
        best: tuple[float, float] | None = None
        for _ in range(attempts):
            sequential, pipelined = asyncio.run(
                _measure_once(
                    process.address, ids, requests, depth, batch, registry
                )
            )
            if best is None or sequential / pipelined > best[0] / best[1]:
                best = (sequential, pipelined)
        return PipelineReport(
            requests=requests,
            depth=depth,
            batch=batch,
            work_delay=work_delay,
            codec=codec,
            sequential_seconds=best[0],
            pipelined_seconds=best[1],
        )
    finally:
        if instrument:
            from ..observability import configure_tracing

            configure_tracing(enabled=False)
        set_codec_mode(previous_codec)
        process.stop()
