"""Cross-process shard transport: the serving stack over sockets.

The IDES architecture (paper Section 5.1) is explicitly a *networked*
service — clients retrieve vectors and predictions from an information
server over the wire — and everything below this package (hash-sharded
:class:`~repro.serving.store.ShardedVectorStore`, the coalescing
:class:`~repro.serving.frontend.AsyncDistanceFrontend`) was built
shard-aware but ran in one process. This package supplies the missing
transport so a deployment can put every shard in its own process (or
on its own machine):

* :mod:`~repro.serving.transport.protocol` — the length-prefixed
  binary wire format: a fixed 16-byte prelude (carrying a request id
  on protocol v2), a JSON header, and raw C-order ndarray payloads,
  encoded as scatter-written views and decoded as views over the
  receive buffer — zero payload copies either way (spec:
  ``docs/wire-protocol.md``);
* :mod:`~repro.serving.transport.server` — :class:`ShardServer`, an
  asyncio process owning one vector-store shard plus a local
  :class:`~repro.serving.engine.QueryEngine`, serving point / pairs /
  one-to-many / k-nearest / gather / update RPCs — v2 requests
  pipeline and answer out of order, each isolated to its own request
  id;
* :mod:`~repro.serving.transport.client` — :class:`RemoteShardClient`,
  a per-shard pool of pipelined connections (many in-flight RPCs per
  socket, matched by request id; negotiated v1 fallback) with call
  timeouts, bounded retries (every RPC is idempotent, so a retry is
  always safe) and fail-fast close;
* :mod:`~repro.serving.transport.bench` — the pipelined-vs-
  one-in-flight measurement behind ``serve bench-transport`` and the
  benchmark gate;
* :mod:`~repro.serving.transport.router` — :class:`ShardedQueryRouter`,
  which splits each batch by ``shard_of``, scatters the sub-batches
  over the sockets concurrently, gathers the answers back into request
  order, and exposes the async query surface
  :class:`~repro.serving.frontend.AsyncDistanceFrontend` dispatches
  into — existing frontend callers work unchanged on top of a remote
  cluster. :class:`ShardReplicator` bridges the synchronous
  :meth:`~repro.serving.service.DistanceService.add_update_sink` hook
  onto the router so a :class:`~repro.serving.refresh.RefreshWorker`
  keeps refreshing vectors across process boundaries;
* :mod:`~repro.serving.transport.replica` — :class:`ReplicaGroup`,
  N interchangeable servers behind one hash slice: reads route to the
  healthiest replica (EWMA latency / pipeline depth) and fail over to
  a sibling *inside* the scatter-gather, writes fan out to every
  replica, and a slice only surfaces
  :class:`~repro.exceptions.ShardUnavailableError` when all of its
  replicas are dark. :func:`connect_replica_router` builds a
  :class:`ShardedQueryRouter` over replica groups. Replica
  resurrection is gated on journal catch-up: a lagging replica stays
  out of the read rotation (``catching_up``) until an anti-entropy
  repair replays its missed writes (or re-seeds it) and its digest
  matches the healthiest sibling's;
* :mod:`~repro.serving.transport.chaos` — :class:`ChaosClient` /
  :class:`ChaosSchedule`, seeded deterministic fault injection
  (drop / delay / duplicate / refuse-writes) over any client surface,
  so divergence and failover contracts are provable in fast unit
  tests.
"""

from .bench import PipelineReport, measure_pipelined_speedup
from .chaos import ChaosClient, ChaosDecision, ChaosSchedule
from .client import RemoteShardClient, RetryBudget
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_V1,
    PROTOCOL_VERSION,
    Deadline,
    Message,
    decode_frame,
    encode_frame,
    encode_frame_parts,
    read_message,
    set_codec_mode,
    write_message,
)
from .replica import ReplicaGroup, connect_replica_router
from .router import ShardedQueryRouter, ShardReplicator, connect_router
from .server import ShardProcess, ShardServer, run_shard_server, spawn_shard_process

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_V1",
    "PipelineReport",
    "PROTOCOL_VERSION",
    "ChaosClient",
    "ChaosDecision",
    "ChaosSchedule",
    "Deadline",
    "Message",
    "RemoteShardClient",
    "ReplicaGroup",
    "RetryBudget",
    "ShardProcess",
    "ShardReplicator",
    "ShardServer",
    "ShardedQueryRouter",
    "connect_replica_router",
    "connect_router",
    "decode_frame",
    "encode_frame",
    "encode_frame_parts",
    "measure_pipelined_speedup",
    "read_message",
    "run_shard_server",
    "set_codec_mode",
    "spawn_shard_process",
    "write_message",
]
