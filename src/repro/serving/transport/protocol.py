"""The wire format: framed JSON headers with raw ndarray payloads.

One message is one frame; the full byte-level layout, the message
vocabulary and the versioning rules are specified in
``docs/wire-protocol.md`` (this module is the reference
implementation). The short version::

    offset  size  field
    0       4     magic  b"IDES"
    4       1     protocol version (1 or 2)
    5       1     flags (reserved, must be 0)
    6       2     v1: reserved (must be 0); v2: request id
    8       4     header length H, big-endian unsigned
    12      4     body length B, big-endian unsigned
    16      H     header: UTF-8 JSON object
    16+H    B     body: the concatenated C-order bytes of every array

Version 2 repurposes the 16-bit reserved field as a **request id**,
which is what licenses pipelining: a client may write many v2 request
frames onto one socket without waiting, and the server echoes each
request's id on its response frame so answers can return out of
order. Version 1 frames (request id field zero, strict one-at-a-time
conversation) remain fully supported — a v2 server answers a v1 frame
with a v1 frame, and a v2 client falls back to v1 when the peer
rejects version 2 (see ``RemoteShardClient``).

The header carries all scalar fields (the operation name, host
identifiers, error text, ...) plus an ``"arrays"`` list describing
each binary payload: ``{"name": ..., "dtype": ..., "shape": [...]}``
in body order. Splitting metadata from bulk keeps the hot path free of
per-element encoding — a gathered ``(n, d)`` float64 matrix goes onto
the socket as exactly its C-order bytes — while staying introspectable
with nothing but ``struct`` and ``json`` (no third-party codec to
install on either end).

Zero-copy discipline (both directions):

* **decode** — payloads are ``np.frombuffer`` *views* over the
  received body buffer, never copies. Decoded arrays are therefore
  read-only; a consumer that needs to mutate one calls
  :meth:`Message.writable` (the only place a copy happens, and only
  on demand).
* **encode** — :func:`encode_frame_parts` returns the prelude+header
  bytes plus one ``memoryview`` per contiguous payload, so
  :func:`write_message` hands the socket views of the source arrays
  instead of building ``tobytes()`` intermediates and joining them.
  Because a backpressured transport retains unsent buffers *by
  reference*, :func:`write_message` only returns once the transport
  has fully flushed the payload views — callers may reuse or mutate
  the source arrays the moment it returns, and never earlier.
  :func:`encode_frame` (the joined single-buffer form) remains for
  tests and for callers that want one blob; the legacy behaviour is
  selectable process-wide via :data:`CODEC_MODE` for benchmarking.

Compatibility note: before protocol v2 every decoded payload was a
freshly-allocated *writable* array. An embedder that mutated decoded
payloads in place now gets ``ValueError: assignment destination is
read-only`` and should switch those call sites to
:meth:`Message.writable`.

Every decode guard raises :class:`~repro.exceptions.ProtocolError`:
wrong magic, unknown version, non-zero reserved bits, frames above
:data:`MAX_FRAME_BYTES`, header/body length mismatches, dtypes outside
the allowlist. A server treats any of these as a poisoned connection —
answer with an error frame if possible, then close; never crash the
listener.
"""

from __future__ import annotations

import asyncio
import json
import struct
import time
from dataclasses import dataclass, field

import numpy as np

from ...exceptions import ProtocolError

__all__ = [
    "MAGIC",
    "MAX_FRAME_BYTES",
    "MAX_REQUEST_ID",
    "PROTOCOL_V1",
    "PROTOCOL_VERSION",
    "PRELUDE",
    "CODEC_MODE",
    "DEADLINE_FIELD",
    "Deadline",
    "Message",
    "check_codec_mode",
    "encode_frame",
    "encode_frame_parts",
    "decode_frame",
    "read_message",
    "write_message",
    "set_codec_mode",
]

MAGIC = b"IDES"

#: The legacy strict request/response version (no request ids).
PROTOCOL_V1 = 1

#: The current preferred version: request-id framing, pipelining.
PROTOCOL_VERSION = 2

#: Request ids are the prelude's 16-bit field; id 0 is valid (v1
#: frames always carry 0 there).
MAX_REQUEST_ID = 0xFFFF

#: Hard ceiling on one frame (prelude + header + body). Large enough
#: for ~4M float64 vector rows at d=10, small enough that a length
#: field corrupted into garbage cannot make a peer allocate the moon.
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: The fixed 16-byte frame prelude (see the module docstring).
PRELUDE = struct.Struct("!4sBBHII")

#: dtypes allowed on the wire. Everything the serving stack ships is
#: float64 matrices or int64 index vectors; an allowlist means a
#: malicious header cannot smuggle object dtypes through ``np.frombuffer``.
_WIRE_DTYPES = {"<f8", "<i8"}

#: Process-wide codec mode for the send side: "scatter" (default)
#: writes payload views straight to the transport; "join" rebuilds the
#: legacy single-buffer frame first. The benchmark CLI flips this to
#: quantify the gap; production code never should.
CODEC_MODE = "scatter"


#: Optional JSON-header field carrying a request's *remaining* latency
#: budget in milliseconds. Like the trace field it is additive and
#: tolerant: peers that predate it ignore it (unknown header keys pass
#: through the codec untouched), so it is v1+v2 safe and never bumps
#: the protocol version. The wire carries the remaining budget — not an
#: absolute timestamp — because the two hosts' clocks are unrelated;
#: each hop re-anchors the budget against its own monotonic clock.
DEADLINE_FIELD = "deadline_ms"


class Deadline:
    """A request's latency budget, anchored to a monotonic clock.

    Created once at the edge (``Deadline.after(0.25)`` for a 250 ms
    budget) and passed down the call stack; every layer asks
    :meth:`remaining` against the *same* clock, so the budget shrinks
    as real work happens. Crossing a process boundary, the remaining
    budget is serialized with :meth:`header_value` and re-anchored on
    the far side with :meth:`from_fields` — queueing and transfer time
    on either side of the wire are charged to the budget.
    """

    __slots__ = ("_expires_at", "_clock")

    def __init__(self, expires_at: float, clock=time.monotonic):
        self._expires_at = float(expires_at)
        self._clock = clock

    @classmethod
    def after(cls, seconds: float, clock=time.monotonic) -> "Deadline":
        """A deadline ``seconds`` from now."""
        return cls(clock() + float(seconds), clock=clock)

    def remaining(self) -> float:
        """Seconds of budget left (never negative)."""
        return max(0.0, self._expires_at - self._clock())

    def expired(self) -> bool:
        """Whether the budget has run out."""
        return self._clock() >= self._expires_at

    def header_value(self) -> float:
        """The remaining budget as the wire's millisecond field."""
        return self.remaining() * 1000.0

    @classmethod
    def from_fields(cls, fields: dict, clock=time.monotonic) -> "Deadline | None":
        """Recover a deadline from a request header, tolerantly.

        Returns None when the field is absent or malformed — an old or
        buggy peer must degrade to no-deadline behaviour, never poison
        the connection.
        """
        value = fields.get(DEADLINE_FIELD)
        if value is None:
            return None
        try:
            remaining_ms = float(value)
        except (TypeError, ValueError):
            return None
        if not np.isfinite(remaining_ms):
            return None
        return cls.after(max(0.0, remaining_ms) / 1000.0, clock=clock)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining={self.remaining():.4f}s)"


def check_codec_mode(mode: str) -> str:
    """Validate a codec mode name; returns it or raises ProtocolError."""
    if mode not in ("scatter", "join"):
        raise ProtocolError(f"codec mode must be 'scatter' or 'join', got {mode!r}")
    return mode


def set_codec_mode(mode: str) -> None:
    """Select the send-side codec ("scatter" or "join") process-wide."""
    global CODEC_MODE
    CODEC_MODE = check_codec_mode(mode)


@dataclass(frozen=True)
class Message:
    """One decoded frame: scalar fields plus named arrays.

    Attributes:
        fields: the header's scalar entries (``"arrays"`` removed).
        arrays: name -> ndarray for each binary payload. These are
            read-only **views** over the frame's receive buffer (the
            zero-copy contract); use :meth:`writable` when a mutable
            copy is genuinely needed.
        request_id: the prelude's request id (0 for v1 frames).
        version: the frame's protocol version.
    """

    fields: dict
    arrays: dict[str, np.ndarray] = field(default_factory=dict)
    request_id: int = 0
    version: int = PROTOCOL_VERSION

    @property
    def op(self) -> str:
        """The operation name (requests) or ``""`` when absent."""
        return str(self.fields.get("op", ""))

    def array(self, name: str) -> np.ndarray:
        """A named payload; raises :class:`ProtocolError` when missing.

        The returned array is a read-only view over the receive
        buffer — free to index, reduce, or feed to BLAS, but not to
        mutate in place (see :meth:`writable`).
        """
        try:
            return self.arrays[name]
        except KeyError:
            raise ProtocolError(f"frame is missing array {name!r}") from None

    def writable(self, name: str) -> np.ndarray:
        """A mutable copy of a named payload (the only decode copy)."""
        return np.array(self.array(name))


def _wire_dtype(array: np.ndarray) -> str:
    if array.dtype == np.float64:
        return "<f8"
    if array.dtype == np.int64:
        return "<i8"
    raise ProtocolError(
        f"dtype {array.dtype} is not wire-encodable; use float64 or int64"
    )


def encode_frame_parts(
    fields: dict,
    arrays: dict[str, np.ndarray] | None = None,
    request_id: int = 0,
    version: int = PROTOCOL_VERSION,
) -> list:
    """Serialize one message into scatter-write buffers.

    Returns a list whose first element is the prelude+header bytes and
    whose remaining elements are one byte-cast ``memoryview`` per
    payload — views of the source arrays, not copies. The caller
    (usually :func:`write_message`) hands each buffer to the transport
    in order. ``transport.write()`` consumes a buffer synchronously
    only when the socket accepts it immediately; under backpressure
    the unsent tail is retained *by reference*, so a caller writing
    these views itself must wait for a fully flushed transport buffer
    (as :func:`write_message` does) before reusing the source arrays.

    Args:
        fields: JSON-representable scalar fields. Must not contain the
            reserved key ``"arrays"``.
        arrays: named ndarray payloads; float64/int64 pass through
            zero-copy when already C-contiguous, everything else is
            converted (the only encode copy, and only for non-wire
            inputs).
        request_id: the 16-bit pipelining id (must be 0 for v1).
        version: frame version to emit.
    """
    if "arrays" in fields:
        raise ProtocolError("'arrays' is a reserved header key")
    if version not in (PROTOCOL_V1, PROTOCOL_VERSION):
        raise ProtocolError(f"cannot encode unknown protocol version {version}")
    if not 0 <= int(request_id) <= MAX_REQUEST_ID:
        raise ProtocolError(
            f"request id must be in [0, {MAX_REQUEST_ID}], got {request_id}"
        )
    if version == PROTOCOL_V1 and request_id != 0:
        raise ProtocolError("v1 frames cannot carry a request id")
    manifest = []
    views: list[memoryview] = []
    body_length = 0
    for name, payload in (arrays or {}).items():
        payload = np.ascontiguousarray(payload)
        if payload.dtype != np.int64 and payload.dtype != np.float64:
            if payload.dtype.kind not in "biuf":
                raise ProtocolError(
                    f"dtype {payload.dtype} is not wire-encodable; use "
                    "float64 or int64"
                )
            payload = np.ascontiguousarray(payload, dtype=np.float64)
        manifest.append(
            {
                "name": str(name),
                "dtype": _wire_dtype(payload),
                "shape": list(payload.shape),
            }
        )
        if payload.size:
            view = memoryview(payload).cast("B")
            views.append(view)
            body_length += view.nbytes
        # zero-size payloads contribute no body bytes (and memoryview
        # cannot cast shapes containing zeros)
    header = json.dumps(
        {**fields, "arrays": manifest}, separators=(",", ":")
    ).encode("utf-8")
    frame_length = PRELUDE.size + len(header) + body_length
    if frame_length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {frame_length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    prelude = PRELUDE.pack(
        MAGIC, version, 0, int(request_id), len(header), body_length
    )
    return [prelude + header, *views]


def encode_frame(
    fields: dict,
    arrays: dict[str, np.ndarray] | None = None,
    request_id: int = 0,
    version: int = PROTOCOL_VERSION,
) -> bytes:
    """Serialize one message into a single complete frame buffer.

    The joined form of :func:`encode_frame_parts` — used by tests and
    by the legacy "join" codec mode; the hot path scatter-writes the
    parts instead.
    """
    return b"".join(
        bytes(part)
        for part in encode_frame_parts(fields, arrays, request_id, version)
    )


def _decode_prelude(prelude: bytes) -> tuple[int, int, int, int]:
    """Validate a 16-byte prelude.

    Returns ``(version, request_id, header_length, body_length)``.
    """
    try:
        magic, version, flags, request_id, header_length, body_length = (
            PRELUDE.unpack(prelude)
        )
    except struct.error as broken:
        raise ProtocolError(f"truncated frame prelude: {broken}") from None
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if version not in (PROTOCOL_V1, PROTOCOL_VERSION):
        raise ProtocolError(
            f"unsupported protocol version {version} (speaking "
            f"{PROTOCOL_V1} or {PROTOCOL_VERSION})"
        )
    if flags != 0:
        raise ProtocolError("reserved prelude bits are set")
    if version == PROTOCOL_V1 and request_id != 0:
        raise ProtocolError("reserved prelude bits are set")
    if PRELUDE.size + header_length + body_length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"declared frame of {PRELUDE.size + header_length + body_length} "
            f"bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return version, request_id, header_length, body_length


def _decode_payload(
    header_bytes: bytes, body, request_id: int = 0,
    version: int = PROTOCOL_VERSION,
) -> Message:
    """Parse header JSON + body blobs into a :class:`Message`.

    Array payloads come back as reshaped ``np.frombuffer`` views over
    ``body`` — zero copies; the :class:`Message` owns the buffer
    through its arrays' ``.base`` chain.
    """
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as broken:
        raise ProtocolError(f"frame header is not JSON: {broken}") from None
    if not isinstance(header, dict):
        raise ProtocolError("frame header must be a JSON object")
    manifest = header.pop("arrays", [])
    if not isinstance(manifest, list):
        raise ProtocolError("'arrays' must be a list of descriptors")
    arrays: dict[str, np.ndarray] = {}
    offset = 0
    for descriptor in manifest:
        try:
            name = descriptor["name"]
            dtype = descriptor["dtype"]
            shape = tuple(int(n) for n in descriptor["shape"])
        except (TypeError, KeyError) as broken:
            raise ProtocolError(
                f"malformed array descriptor {descriptor!r}: {broken}"
            ) from None
        if dtype not in _WIRE_DTYPES:
            raise ProtocolError(f"dtype {dtype!r} is not on the wire allowlist")
        if any(n < 0 for n in shape):
            raise ProtocolError(f"negative dimension in shape {shape}")
        count = 1
        for n in shape:
            count *= n
        nbytes = count * 8  # both wire dtypes are 8 bytes wide
        if offset + nbytes > len(body):
            raise ProtocolError(
                f"array {name!r} overruns the frame body "
                f"({offset + nbytes} > {len(body)} bytes)"
            )
        flat = np.frombuffer(body, dtype=np.dtype(dtype), count=count, offset=offset)
        # Zero-copy: a read-only view over the receive buffer. A
        # consumer that must mutate calls Message.writable().
        arrays[str(name)] = flat.reshape(shape)
        offset += nbytes
    if offset != len(body):
        raise ProtocolError(
            f"frame body has {len(body) - offset} undeclared trailing bytes"
        )
    return Message(
        fields=header, arrays=arrays, request_id=request_id, version=version
    )


def decode_frame(frame: bytes) -> Message:
    """Decode one complete frame (the exact bytes of :func:`encode_frame`)."""
    version, request_id, header_length, body_length = _decode_prelude(
        frame[: PRELUDE.size]
    )
    if len(frame) != PRELUDE.size + header_length + body_length:
        raise ProtocolError(
            f"frame is {len(frame)} bytes, prelude declares "
            f"{PRELUDE.size + header_length + body_length}"
        )
    header_end = PRELUDE.size + header_length
    # The body is sliced as a memoryview so the decoded arrays alias
    # the caller's frame buffer — a bytes slice would be the copy this
    # codec exists to avoid.
    return _decode_payload(
        frame[PRELUDE.size : header_end],
        memoryview(frame)[header_end:],
        request_id,
        version,
    )


async def read_message(reader: asyncio.StreamReader) -> Message | None:
    """Read one frame from a stream.

    Returns None on a clean EOF at a frame boundary (the peer hung
    up). EOF *mid-frame* raises :class:`ConnectionResetError` — the
    peer died, which is a transport failure the client may retry —
    while malformed bytes raise :class:`ProtocolError`, which is never
    retriable.
    """
    try:
        prelude = await reader.readexactly(PRELUDE.size)
    except asyncio.IncompleteReadError as eof:
        if not eof.partial:
            return None
        raise ConnectionResetError(
            f"connection closed mid-prelude ({len(eof.partial)} bytes)"
        ) from None
    version, request_id, header_length, body_length = _decode_prelude(prelude)
    try:
        header_bytes = await reader.readexactly(header_length)
        body = await reader.readexactly(body_length)
    except asyncio.IncompleteReadError as eof:
        raise ConnectionResetError(
            f"connection closed mid-frame ({len(eof.partial)} bytes short)"
        ) from None
    return _decode_payload(header_bytes, body, request_id, version)


async def _bounded_flush(
    writer: asyncio.StreamWriter, flush_timeout: float | None = None
) -> None:
    """Wait until the transport buffer holds none of our payload views.

    ``transport.write()`` is only *sometimes* synchronous: when the
    socket cannot take every byte immediately, the asyncio transport
    retains the unsent tail **by reference** (on Python 3.12+ the
    selector transport keeps the very memoryviews it was handed in its
    write deque), and ``drain()`` resolves at the low-water mark, not
    at empty. Returning then would break the zero-copy contract — the
    caller (e.g. a shard server holding its write lock) is entitled to
    let the source arrays mutate the moment :func:`write_message`
    returns. Dropping the high-water mark to zero turns ``drain()``
    into a wait-for-empty-buffer; the limits are restored afterwards.

    ``flush_timeout`` bounds the wait, and it is a **stall** bound, not
    a transfer bound: the clock resets whenever the buffer shrinks, so
    a slow-but-steadily-reading peer is never aborted no matter how
    large the frame. A peer that makes no progress for ``flush_timeout``
    seconds gets its connection **aborted** (not closed — a close would
    keep flushing the aliased buffers in the background) and the caller
    sees :class:`ConnectionResetError`. Servers pass this so a stalled
    peer cannot hold a shared write lock forever; clients rely on their
    per-call timeout instead.

    Despite the zero-copy motivation, the bound applies to *every*
    frame a server writes — join-mode and header-only frames included
    (a multi-megabyte ``ids`` response or an error frame carries no
    payload views, but an unbounded ``drain()`` on it would pin the
    server-wide lock all the same).
    """
    transport = writer.transport
    if transport is None:
        await writer.drain()
        return
    try:
        if transport.get_write_buffer_size() == 0:
            # Fully consumed synchronously; the plain drain keeps the
            # lost-connection error semantics of the legacy path.
            await writer.drain()
            return
        low, high = transport.get_write_buffer_limits()
    except (AttributeError, NotImplementedError):  # pragma: no cover
        # A transport without buffer introspection: an ordinary drain
        # is all that can be done.
        await writer.drain()
        return
    loop = asyncio.get_running_loop()
    deadline = None if flush_timeout is None else loop.time() + flush_timeout
    last_size = transport.get_write_buffer_size()
    transport.set_write_buffer_limits(high=0)
    try:
        while (size := transport.get_write_buffer_size()) > 0:
            if transport.is_closing():
                raise ConnectionResetError(
                    "connection closed with a partially written frame"
                )
            if deadline is None:
                await writer.drain()
                continue
            if size < last_size:
                # The peer is reading: progress resets the stall clock
                # (flush_timeout bounds stalls, not transfer time).
                last_size = size
                deadline = loop.time() + flush_timeout
            remaining = deadline - loop.time()
            if remaining <= 0:
                transport.abort()  # clears the buffer: capture size first
                raise ConnectionResetError(
                    f"peer made no progress for {flush_timeout}s with "
                    f"{size} bytes unsent; connection aborted"
                )
            try:
                await asyncio.wait_for(writer.drain(), remaining)
            except asyncio.TimeoutError:
                continue  # re-check progress; the deadline check aborts
    finally:
        try:
            transport.set_write_buffer_limits(high=high, low=low)
        except (AttributeError, RuntimeError):  # pragma: no cover
            pass  # the transport was just aborted


async def write_message(
    writer: asyncio.StreamWriter,
    fields: dict,
    arrays: dict[str, np.ndarray] | None = None,
    request_id: int = 0,
    version: int = PROTOCOL_VERSION,
    flush_timeout: float | None = None,
) -> None:
    """Encode and send one frame, flushing the transport buffer.

    In the default "scatter" codec mode the payload views are handed
    to the transport one by one — no joined intermediate frame is ever
    built — and the coroutine returns only once the transport has
    fully flushed them (see :func:`_bounded_flush`), so the source
    arrays are free to be reused or mutated on return. "join" mode
    rebuilds the legacy single buffer for comparison benchmarks.
    ``flush_timeout`` bounds every wait — scatter, join, and
    header-only frames alike — by aborting the connection of a peer
    that stops reading; without it, only scatter frames with payload
    views wait for a full flush (clients bound the wait with their
    per-call timeout instead).
    """
    parts = encode_frame_parts(fields, arrays, request_id, version)
    if CODEC_MODE == "join":
        writer.write(b"".join(bytes(part) for part in parts))
        scatter_views = False
    else:
        for part in parts:
            writer.write(part)
        scatter_views = len(parts) > 1
    if scatter_views or flush_timeout is not None:
        # The bounded flush subsumes drain(): an ordinary drain would
        # block unboundedly at the low-water mark under backpressure —
        # unacceptable both while payload views alias caller arrays
        # (scatter frames) and while a server-side caller holds the
        # shard-wide write lock (any frame with flush_timeout set,
        # header-only error frames and joined buffers included).
        await _bounded_flush(writer, flush_timeout)
    else:
        await writer.drain()
