"""The wire format: framed JSON headers with raw ndarray payloads.

One message is one frame; the full byte-level layout, the message
vocabulary and the versioning rules are specified in
``docs/wire-protocol.md`` (this module is the reference
implementation). The short version::

    offset  size  field
    0       4     magic  b"IDES"
    4       1     protocol version (currently 1)
    5       1     flags (reserved, must be 0)
    6       2     reserved (must be 0)
    8       4     header length H, big-endian unsigned
    12      4     body length B, big-endian unsigned
    16      H     header: UTF-8 JSON object
    16+H    B     body: the concatenated C-order bytes of every array

The header carries all scalar fields (the operation name, host
identifiers, error text, ...) plus an ``"arrays"`` list describing
each binary payload: ``{"name": ..., "dtype": ..., "shape": [...]}``
in body order. Splitting metadata from bulk keeps the hot path free of
per-element encoding — a gathered ``(n, d)`` float64 matrix goes onto
the socket as exactly its ``tobytes()`` — while staying introspectable
with nothing but ``struct`` and ``json`` (no third-party codec to
install on either end).

Every decode guard raises :class:`~repro.exceptions.ProtocolError`:
wrong magic, unknown version, non-zero reserved bits, frames above
:data:`MAX_FRAME_BYTES`, header/body length mismatches, dtypes outside
the allowlist. A server treats any of these as a poisoned connection —
answer with an error frame if possible, then close; never crash the
listener.
"""

from __future__ import annotations

import asyncio
import json
import struct
from dataclasses import dataclass, field

import numpy as np

from ...exceptions import ProtocolError

__all__ = [
    "MAGIC",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "PRELUDE",
    "Message",
    "encode_frame",
    "decode_frame",
    "read_message",
    "write_message",
]

MAGIC = b"IDES"
PROTOCOL_VERSION = 1

#: Hard ceiling on one frame (prelude + header + body). Large enough
#: for ~4M float64 vector rows at d=10, small enough that a length
#: field corrupted into garbage cannot make a peer allocate the moon.
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: The fixed 16-byte frame prelude (see the module docstring).
PRELUDE = struct.Struct("!4sBBHII")

#: dtypes allowed on the wire. Everything the serving stack ships is
#: float64 matrices or int64 index vectors; an allowlist means a
#: malicious header cannot smuggle object dtypes through ``np.frombuffer``.
_WIRE_DTYPES = {"<f8", "<i8"}


@dataclass(frozen=True)
class Message:
    """One decoded frame: scalar fields plus named arrays.

    Attributes:
        fields: the header's scalar entries (``"arrays"`` removed).
        arrays: name -> ndarray for each binary payload, C-order, with
            the dtype and shape the header declared.
    """

    fields: dict
    arrays: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def op(self) -> str:
        """The operation name (requests) or ``""`` when absent."""
        return str(self.fields.get("op", ""))

    def array(self, name: str) -> np.ndarray:
        """A named payload; raises :class:`ProtocolError` when missing."""
        try:
            return self.arrays[name]
        except KeyError:
            raise ProtocolError(f"frame is missing array {name!r}") from None


def _wire_dtype(array: np.ndarray) -> str:
    if array.dtype == np.float64:
        return "<f8"
    if array.dtype == np.int64:
        return "<i8"
    raise ProtocolError(
        f"dtype {array.dtype} is not wire-encodable; use float64 or int64"
    )


def encode_frame(fields: dict, arrays: dict[str, np.ndarray] | None = None) -> bytes:
    """Serialize one message into a complete frame.

    Args:
        fields: JSON-representable scalar fields. Must not contain the
            reserved key ``"arrays"``.
        arrays: named ndarray payloads; converted to contiguous
            float64/int64 before hitting the wire.

    Returns:
        the frame bytes, prelude included.
    """
    if "arrays" in fields:
        raise ProtocolError("'arrays' is a reserved header key")
    manifest = []
    blobs = []
    for name, payload in (arrays or {}).items():
        payload = np.ascontiguousarray(payload)
        if payload.dtype != np.int64 and payload.dtype != np.float64:
            if payload.dtype.kind not in "biuf":
                raise ProtocolError(
                    f"dtype {payload.dtype} is not wire-encodable; use "
                    "float64 or int64"
                )
            payload = np.ascontiguousarray(payload, dtype=np.float64)
        manifest.append(
            {
                "name": str(name),
                "dtype": _wire_dtype(payload),
                "shape": list(payload.shape),
            }
        )
        blobs.append(payload.tobytes())
    header = json.dumps(
        {**fields, "arrays": manifest}, separators=(",", ":")
    ).encode("utf-8")
    body = b"".join(blobs)
    frame_length = PRELUDE.size + len(header) + len(body)
    if frame_length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {frame_length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    prelude = PRELUDE.pack(
        MAGIC, PROTOCOL_VERSION, 0, 0, len(header), len(body)
    )
    return prelude + header + body


def _decode_prelude(prelude: bytes) -> tuple[int, int]:
    """Validate a 16-byte prelude; returns (header_length, body_length)."""
    try:
        magic, version, flags, reserved, header_length, body_length = (
            PRELUDE.unpack(prelude)
        )
    except struct.error as broken:
        raise ProtocolError(f"truncated frame prelude: {broken}") from None
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version} (speaking "
            f"{PROTOCOL_VERSION})"
        )
    if flags != 0 or reserved != 0:
        raise ProtocolError("reserved prelude bits are set")
    if PRELUDE.size + header_length + body_length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"declared frame of {PRELUDE.size + header_length + body_length} "
            f"bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return header_length, body_length


def _decode_payload(header_bytes: bytes, body: bytes) -> Message:
    """Parse header JSON + body blobs into a :class:`Message`."""
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as broken:
        raise ProtocolError(f"frame header is not JSON: {broken}") from None
    if not isinstance(header, dict):
        raise ProtocolError("frame header must be a JSON object")
    manifest = header.pop("arrays", [])
    if not isinstance(manifest, list):
        raise ProtocolError("'arrays' must be a list of descriptors")
    arrays: dict[str, np.ndarray] = {}
    offset = 0
    for descriptor in manifest:
        try:
            name = descriptor["name"]
            dtype = descriptor["dtype"]
            shape = tuple(int(n) for n in descriptor["shape"])
        except (TypeError, KeyError) as broken:
            raise ProtocolError(
                f"malformed array descriptor {descriptor!r}: {broken}"
            ) from None
        if dtype not in _WIRE_DTYPES:
            raise ProtocolError(f"dtype {dtype!r} is not on the wire allowlist")
        if any(n < 0 for n in shape):
            raise ProtocolError(f"negative dimension in shape {shape}")
        count = 1
        for n in shape:
            count *= n
        nbytes = count * 8  # both wire dtypes are 8 bytes wide
        if offset + nbytes > len(body):
            raise ProtocolError(
                f"array {name!r} overruns the frame body "
                f"({offset + nbytes} > {len(body)} bytes)"
            )
        flat = np.frombuffer(body, dtype=np.dtype(dtype), count=count, offset=offset)
        # Copy so the message owns writable memory independent of the
        # receive buffer.
        arrays[str(name)] = flat.reshape(shape).copy()
        offset += nbytes
    if offset != len(body):
        raise ProtocolError(
            f"frame body has {len(body) - offset} undeclared trailing bytes"
        )
    return Message(fields=header, arrays=arrays)


def decode_frame(frame: bytes) -> Message:
    """Decode one complete frame (the exact bytes of :func:`encode_frame`)."""
    header_length, body_length = _decode_prelude(frame[: PRELUDE.size])
    if len(frame) != PRELUDE.size + header_length + body_length:
        raise ProtocolError(
            f"frame is {len(frame)} bytes, prelude declares "
            f"{PRELUDE.size + header_length + body_length}"
        )
    header_end = PRELUDE.size + header_length
    return _decode_payload(frame[PRELUDE.size : header_end], frame[header_end:])


async def read_message(reader: asyncio.StreamReader) -> Message | None:
    """Read one frame from a stream.

    Returns None on a clean EOF at a frame boundary (the peer hung
    up). EOF *mid-frame* raises :class:`ConnectionResetError` — the
    peer died, which is a transport failure the client may retry —
    while malformed bytes raise :class:`ProtocolError`, which is never
    retriable.
    """
    try:
        prelude = await reader.readexactly(PRELUDE.size)
    except asyncio.IncompleteReadError as eof:
        if not eof.partial:
            return None
        raise ConnectionResetError(
            f"connection closed mid-prelude ({len(eof.partial)} bytes)"
        ) from None
    header_length, body_length = _decode_prelude(prelude)
    try:
        header_bytes = await reader.readexactly(header_length)
        body = await reader.readexactly(body_length)
    except asyncio.IncompleteReadError as eof:
        raise ConnectionResetError(
            f"connection closed mid-frame ({len(eof.partial)} bytes short)"
        ) from None
    return _decode_payload(header_bytes, body)


async def write_message(
    writer: asyncio.StreamWriter,
    fields: dict,
    arrays: dict[str, np.ndarray] | None = None,
) -> None:
    """Encode and send one frame, draining the transport buffer."""
    writer.write(encode_frame(fields, arrays))
    await writer.drain()
