"""The shard client: multiplexed, pipelined RPC connections to one shard.

:class:`RemoteShardClient` owns a small pool of TCP connections to one
:class:`~repro.serving.transport.server.ShardServer`. On protocol v2
every connection is **pipelined**: a per-connection reader task
resolves response frames to their awaiting callers by request id, so a
single socket carries up to ``max_in_flight`` concurrent RPCs and the
pool multiplies that, instead of the one-request-per-pooled-socket
model v1 forces. The protocol version is negotiated once per client:
the first call sends a v2 ``ping``; a v1-only server answers it with a
v1 ``ProtocolError`` error frame ("unsupported protocol version"),
which the client treats as the negotiation signal and falls back to
the strict one-in-flight conversation. ``protocol_version=1`` or ``2``
skips negotiation (the benchmark CLI uses 1 to measure the baseline).

``max_in_flight`` is a hard admission bound: a caller beyond it waits
on the connection's slot semaphore (the wait counts against its
timeout) instead of piling more request ids onto the socket. A call
that times out leaves its request outstanding on the server, so its
request id is **quarantined** — skipped by the id counter — until the
late response arrives and is dropped; a wrapped counter can therefore
never deliver an old answer to a new caller.

Failure policy: every operation in the wire vocabulary is idempotent
(queries are pure; ``put``/``update``/``delete`` overwrite), so a call
that dies on a connection error or times out is retried on a *fresh*
connection up to ``retries`` times with linear backoff. When the
budget is exhausted the call raises
:class:`~repro.exceptions.ShardUnavailableError` — the signal the
router uses to mark the shard dark. An error *frame* from a live
server is not retried: it is mapped back onto the local exception
hierarchy (``ValidationError`` for bad requests, ``ProtocolError`` for
framing complaints, :class:`~repro.exceptions.RemoteShardError`
otherwise) and raised immediately.

Shutdown discipline: :meth:`RemoteShardClient.close` fails every
in-flight pipelined call *immediately* with
:class:`ShardUnavailableError` — callers must never hang until their
timeout because the process is tearing down (the frontend's ``stop()``
relies on this). A connection whose peer dies mid-pipeline rejects
every pending future exactly once through its reader task's teardown
path.
"""

from __future__ import annotations

import asyncio
import random
import time

import numpy as np

from ..observability.metrics import Sample
from ..observability.tracing import TRACE_FIELD, get_tracer
from ...exceptions import (
    DeadlineExceededError,
    OverloadedError,
    ProtocolError,
    RemoteShardError,
    ShardUnavailableError,
    TransportError,
    ValidationError,
)
from .protocol import (
    DEADLINE_FIELD,
    MAX_REQUEST_ID,
    PROTOCOL_V1,
    PROTOCOL_VERSION,
    Deadline,
    Message,
    read_message,
    write_message,
)

__all__ = ["RemoteShardClient", "RetryBudget"]

#: Error-frame names mapped back onto local exception types. Anything
#: else arrives as RemoteShardError carrying the remote type name.
_ERROR_TYPES = {
    "ValidationError": ValidationError,
    "ProtocolError": ProtocolError,
    "DeadlineExceededError": DeadlineExceededError,
}

#: Decorrelated-jitter backoff never sleeps longer than this multiple
#: of the base backoff, however many attempts have failed.
_BACKOFF_CAP_FACTOR = 32.0

#: The floor for a deadline-derived per-attempt timeout: a budget this
#: small is as good as expired, but a zero timeout would make
#: ``wait_for`` fail before the dispatch even starts.
_MIN_ATTEMPT_TIMEOUT = 1e-3


class RetryBudget:
    """Token bucket bounding retries across a client (or client pool).

    Every successful call deposits ``per_call`` tokens (capped at
    ``max_tokens``); every retry attempt withdraws one. When the bucket
    is empty, retries **fail fast** instead of amplifying: a shard that
    times out for every caller at once would otherwise multiply the
    offered load by ``1 + retries`` exactly when it can least afford
    it. One budget can be shared by several clients (the replica
    group's siblings target the same slice of capacity) by passing the
    same instance to each.
    """

    def __init__(self, max_tokens: float = 10.0, per_call: float = 0.1):
        if max_tokens <= 0:
            raise ValidationError(
                f"max_tokens must be > 0, got {max_tokens}"
            )
        if per_call < 0:
            raise ValidationError(f"per_call must be >= 0, got {per_call}")
        self.max_tokens = float(max_tokens)
        self.per_call = float(per_call)
        self._tokens = float(max_tokens)
        #: Retry attempts refused because the bucket was empty.
        self.exhausted = 0

    @property
    def tokens(self) -> float:
        """Tokens currently available."""
        return self._tokens

    def record_success(self) -> None:
        """Deposit the per-call earn for a successful request."""
        self._tokens = min(self.max_tokens, self._tokens + self.per_call)

    def spend(self) -> bool:
        """Withdraw one token for a retry; False means refused."""
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        self.exhausted += 1
        return False


def _replica(failure: BaseException) -> Exception:
    """A fresh exception of the same flavor, safe to set on many futures."""
    if isinstance(failure, ShardUnavailableError):
        # The clone must keep shard_index: callers use it to report
        # which partition of the directory went dark.
        return ShardUnavailableError(
            str(failure), shard_index=failure.shard_index
        )
    try:
        clone = type(failure)(str(failure))
        if isinstance(clone, Exception):
            return clone
    except Exception:  # noqa: BLE001 - exotic constructor signature
        pass
    return ConnectionResetError(str(failure))


class _ShardConnection:
    """One socket: pipelined (v2, reader task + request-id futures) or
    strict request/response (v1, conversation lock)."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        version: int,
        max_in_flight: int,
        on_late_response=None,
    ):
        self.reader = reader
        self.writer = writer
        self.version = version
        self.max_in_flight = max_in_flight
        self._on_late_response = on_late_response
        self.broken = False
        self._pending: dict[int, asyncio.Future] = {}
        #: Request ids whose callers gave up (timeout/cancellation)
        #: while the request was still outstanding on the server. They
        #: stay quarantined — never reissued — until the late response
        #: arrives and is dropped, so a wrapped id counter can never
        #: deliver an old answer to a new caller.
        self._abandoned: set[int] = set()
        self._next_id = 0
        self._lock = asyncio.Lock()  # v1 conversation / v2 frame writes
        #: Admitted calls (in flight or waiting for a slot) — the
        #: pool's load-balancing signal.
        self._load = 0
        #: Hard admission bound: a caller beyond ``max_in_flight``
        #: waits here for a slot instead of piling another request id
        #: onto the connection.
        self._slots = asyncio.Semaphore(max_in_flight)
        self._reader_task: asyncio.Task | None = None
        if version == PROTOCOL_VERSION:
            self._reader_task = asyncio.create_task(
                self._read_loop(), name="shard-connection-reader"
            )

    @property
    def in_flight(self) -> int:
        """Calls awaiting a response on this socket."""
        if self.version == PROTOCOL_V1:
            return 1 if self._lock.locked() else 0
        return len(self._pending)

    @property
    def load(self) -> int:
        """Admitted calls: in flight plus waiting for a pipeline slot."""
        return self._load

    @property
    def saturated(self) -> bool:
        """Whether another call should prefer a different connection."""
        if self.version == PROTOCOL_V1:
            return self._load >= 1
        return self._load >= self.max_in_flight

    # ------------------------------------------------------------------ #
    # the demultiplexer (v2 only)
    # ------------------------------------------------------------------ #

    async def _read_loop(self) -> None:
        failure: BaseException = ConnectionResetError(
            "server closed the connection with calls in flight"
        )
        try:
            while True:
                response = await read_message(self.reader)
                if response is None:  # clean EOF
                    break
                if response.version == PROTOCOL_V1:
                    # A v1 frame on a v2 conversation: the peer does not
                    # speak v2 (negotiation) — v1 responses carry no id
                    # and arrive in order, so resolve the oldest waiter.
                    future = None
                    for request_id in self._pending:
                        future = self._pending.pop(request_id)
                        break
                elif response.request_id in self._abandoned:
                    # The late answer to a call whose caller gave up:
                    # drop the frame, lift the id's quarantine (it is
                    # now safe to reissue), and let the client count it.
                    self._abandoned.discard(response.request_id)
                    if self._on_late_response is not None:
                        self._on_late_response()
                    continue
                else:
                    future = self._pending.pop(response.request_id, None)
                    if future is None and self._on_late_response is not None:
                        # Not pending, not quarantined: an id this
                        # client never issued. Drop it, but count it.
                        self._on_late_response()
                if future is not None and not future.done():
                    future.set_result(response)
        except (ConnectionError, OSError, ProtocolError) as broken:
            failure = broken
        finally:
            # _mark_broken (not just the flag): a clean server EOF
            # leaves the half-closed transport open on our side, and
            # _prune would drop the last reference without ever closing
            # the socket — a CLOSE_WAIT fd leak per server restart.
            self._mark_broken()
            self._fail_pending(failure)

    def _fail_pending(self, failure: BaseException) -> None:
        """Reject every in-flight call exactly once."""
        pending, self._pending = self._pending, {}
        # A dead connection receives no more frames, so no quarantined
        # id can ever be confused with a reissue again.
        self._abandoned.clear()
        for future in pending.values():
            if not future.done():
                future.set_exception(_replica(failure))

    def _claim_id(self) -> int:
        """A request id that is neither in flight nor quarantined.

        The admission semaphore keeps in-flight ids at or below
        ``max_in_flight``, but quarantined ids of timed-out calls can
        accumulate while the server sits on their responses; a
        connection that runs entirely out of ids raises
        :class:`TransportError`, which the client retries on a fresh
        connection (whose id space is empty).
        """
        for _ in range(MAX_REQUEST_ID + 1):
            self._next_id = (self._next_id + 1) & MAX_REQUEST_ID
            if (
                self._next_id not in self._pending
                and self._next_id not in self._abandoned
            ):
                return self._next_id
        raise TransportError(
            f"no free request id: {MAX_REQUEST_ID + 1} RPCs in flight "
            "or quarantined on one connection"
        )

    # ------------------------------------------------------------------ #
    # one RPC
    # ------------------------------------------------------------------ #

    async def call(
        self, request: dict, arrays: dict[str, np.ndarray] | None
    ) -> Message:
        """Write one request frame and await its response frame."""
        self._load += 1
        try:
            if self.version == PROTOCOL_V1:
                return await self._call_v1(request, arrays)
            async with self._slots:  # wait for a pipeline slot
                return await self._call_v2(request, arrays)
        finally:
            self._load -= 1

    async def _call_v2(
        self, request: dict, arrays: dict[str, np.ndarray] | None
    ) -> Message:
        if self.broken:
            # The connection died while this caller waited for a slot:
            # its future would never resolve (the reader is gone), so
            # fail retriably instead of hanging until the timeout.
            raise ConnectionResetError(
                "connection closed while waiting for a pipeline slot"
            )
        request_id = self._claim_id()
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        sent = False
        try:
            async with self._lock:
                try:
                    await write_message(
                        self.writer,
                        request,
                        arrays,
                        request_id=request_id,
                        version=PROTOCOL_VERSION,
                    )
                    sent = True
                except asyncio.CancelledError:
                    # Inside write_message the first await comes after
                    # the last (synchronous) transport write, so a
                    # cancellation landing here — e.g. the caller's
                    # timeout expiring during the backpressure flush —
                    # finds the frame fully queued: the stream stays
                    # well-framed and the socket stays healthy for the
                    # other pipelined calls. The quarantine below
                    # handles the eventual response.
                    sent = True
                    raise
                except BaseException:
                    # A genuine transport failure (reset, encode bug):
                    # poison the connection.
                    self._mark_broken()
                    raise
            return await future
        finally:
            # Normally the read loop already popped the id. A timeout
            # (or any cancellation) lands here with the entry still
            # registered; if the request actually reached the wire it
            # is still outstanding on the server, so quarantine the id:
            # a wrapped counter cannot reassign it before the late
            # response arrives — the read loop drops that response and
            # lifts the quarantine. A call cancelled before its frame
            # was queued (waiting for the write lock) frees its id
            # immediately: no response will ever come for it.
            if self._pending.pop(request_id, None) is not None:
                if sent and not self.broken:
                    self._abandoned.add(request_id)

    async def _call_v1(
        self, request: dict, arrays: dict[str, np.ndarray] | None
    ) -> Message:
        async with self._lock:
            try:
                await write_message(
                    self.writer, request, arrays, version=PROTOCOL_V1
                )
                response = await read_message(self.reader)
            except ProtocolError:
                # The *response* was malformed — a server bug, not a
                # flaky link; never retried, but the socket is done.
                self._mark_broken()
                raise
            except BaseException:
                # Cancellation (timeout) or a connection error leaves
                # the conversation mid-frame.
                self._mark_broken()
                raise
            if response is None:
                self._mark_broken()
                raise ConnectionResetError(
                    "server closed the connection mid-call"
                )
            return response

    def _mark_broken(self) -> None:
        self.broken = True
        try:
            self.writer.close()
        except Exception:  # noqa: BLE001 - already-broken transport
            pass

    def close(self, failure: BaseException | None = None) -> None:
        """Tear the socket down; pending calls get ``failure`` (or a
        connection reset) exactly once."""
        self.broken = True
        self._fail_pending(
            failure
            if failure is not None
            else ConnectionResetError("connection closed")
        )
        if self._reader_task is not None:
            self._reader_task.cancel()
            self._reader_task = None
        try:
            self.writer.close()
        except Exception:  # noqa: BLE001 - already-broken transport
            pass


class RemoteShardClient:
    """Pipelined connection pool speaking the shard wire protocol.

    Args:
        host / port: the shard server's address.
        shard_index: the shard slot this client expects to find there
            (attached to unavailability errors; verified by the
            router's handshake, not here).
        pool_size: maximum concurrent connections. On protocol v2 each
            connection additionally multiplexes up to ``max_in_flight``
            RPCs, so total concurrency is ``pool_size * max_in_flight``;
            on v1 it is ``pool_size`` exactly, as before.
        timeout: seconds allowed per attempt (connect + write + read).
            A per-call deadline tightens this: each attempt gets
            ``min(timeout, deadline.remaining())``.
        retries: additional attempts after the first failure.
        retry_backoff: the *base* of the decorrelated-jitter backoff.
            Retry ``n`` sleeps a uniform draw from ``[base, 3 * last]``
            (capped at 32x the base), so pooled clients retrying a
            restarted shard spread out instead of synchronizing into
            bursts the way the old deterministic ``n * base`` ramp did.
        protocol_version: ``None`` negotiates (v2 preferred, v1
            fallback); ``1`` or ``2`` forces a version — forcing 2
            against a v1-only server fails with ``ProtocolError``.
        max_in_flight: pipeline depth per v2 connection — a hard
            admission bound; excess concurrent callers wait for a slot.
        retry_budget: a :class:`RetryBudget` bounding retries across
            the pool; pass a shared instance to pool the budget across
            several clients (e.g. a replica group's siblings). None
            builds a private default bucket.
    """

    def __init__(
        self,
        host: str,
        port: int,
        shard_index: int | None = None,
        pool_size: int = 4,
        timeout: float = 10.0,
        retries: int = 2,
        retry_backoff: float = 0.05,
        protocol_version: int | None = None,
        max_in_flight: int = 128,
        retry_budget: RetryBudget | None = None,
    ):
        if int(pool_size) < 1:
            raise ValidationError(f"pool_size must be >= 1, got {pool_size}")
        if timeout <= 0:
            raise ValidationError(f"timeout must be > 0, got {timeout}")
        if int(retries) < 0:
            raise ValidationError(f"retries must be >= 0, got {retries}")
        if protocol_version not in (None, PROTOCOL_V1, PROTOCOL_VERSION):
            raise ValidationError(
                f"protocol_version must be None, {PROTOCOL_V1} or "
                f"{PROTOCOL_VERSION}, got {protocol_version}"
            )
        if int(max_in_flight) < 1:
            raise ValidationError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        self.host = host
        self.port = int(port)
        self.shard_index = shard_index
        self.pool_size = int(pool_size)
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.retry_backoff = float(retry_backoff)
        self.max_in_flight = int(max_in_flight)
        self._version = protocol_version
        self._negotiating: asyncio.Lock | None = None
        self._dialing: asyncio.Lock | None = None
        self._connections: list[_ShardConnection] = []
        self._closed = False
        self.retry_budget = (
            retry_budget if retry_budget is not None else RetryBudget()
        )
        self._backoff_rng = random.Random()
        self.calls = 0
        #: Dispatch attempts (first tries plus retries) that actually
        #: went to the wire — the retry-storm observable.
        self.attempts = 0
        self.retries_used = 0
        #: Retries refused because the shared retry budget ran dry.
        self.retry_budget_exhausted = 0
        #: Calls rejected before any dispatch because their deadline
        #: had already expired (never cost the server anything).
        self.deadline_preempted = 0
        #: Responses that arrived after their caller timed out and
        #: abandoned the request id (dropped, but visible telemetry).
        self.late_responses = 0
        #: Attempts that expired the per-attempt timeout (a subset of
        #: the retriable failures behind ``retries_used``).
        self.timeouts = 0
        #: Optional first-class RPC latency histogram, attached by
        #: :meth:`bind_metrics`; ``None`` keeps the hot path untouched.
        self._rpc_seconds = None
        self._rpc_children: dict[str, object] = {}  # op -> histogram child
        self._span_names: dict[str, str] = {}  # op -> "rpc:{op}"
        self._shard_label = (
            str(shard_index) if shard_index is not None else self.address
        )
        self._span_attributes = {
            "shard": self._shard_label,
            "address": self.address,
        }

    @property
    def address(self) -> str:
        """``host:port`` for messages and health reports."""
        return f"{self.host}:{self.port}"

    @property
    def negotiated_version(self) -> int | None:
        """The protocol version in use (None before the first call)."""
        return self._version

    @property
    def open_connections(self) -> int:
        """Live sockets currently owned by the pool."""
        return sum(1 for c in self._connections if not c.broken)

    @property
    def in_flight(self) -> int:
        """RPCs currently awaiting responses across the pool."""
        return sum(c.in_flight for c in self._connections)

    @property
    def quarantined_ids(self) -> int:
        """Request ids of timed-out calls still awaiting late responses."""
        return sum(len(c._abandoned) for c in self._connections)

    # ------------------------------------------------------------------ #
    # telemetry
    # ------------------------------------------------------------------ #

    def bind_metrics(self, registry) -> None:
        """Expose this client through a metrics registry.

        The existing telemetry counters (``calls``, ``retries_used``,
        ``late_responses``, ``timeouts``) and pool gauges become
        scrape-time collector samples labeled by shard, and a
        first-class ``ides_client_rpc_seconds`` histogram starts
        observing per-RPC latency. Unbound clients pay nothing.
        """
        self._rpc_seconds = registry.histogram(
            "ides_client_rpc_seconds",
            "Shard RPC latency as seen by the client, retries included.",
            labels=("op", "shard"),
        )
        shard = (("shard", self._shard_label),)

        def collect():
            return [
                Sample("ides_client_rpcs_total", "counter",
                       "Completed shard RPCs.", shard, self.calls),
                Sample("ides_client_retries_total", "counter",
                       "Retry attempts spent on fresh connections.",
                       shard, self.retries_used),
                Sample("ides_client_timeouts_total", "counter",
                       "Per-attempt timeouts.", shard, self.timeouts),
                Sample("ides_client_late_responses_total", "counter",
                       "Responses that arrived after their caller gave up.",
                       shard, self.late_responses),
                Sample("ides_client_attempts_total", "counter",
                       "Dispatch attempts, first tries plus retries.",
                       shard, self.attempts),
                Sample("ides_client_retry_budget_exhausted_total", "counter",
                       "Retries refused because the token bucket ran dry.",
                       shard, self.retry_budget_exhausted),
                Sample("ides_client_deadline_preempted_total", "counter",
                       "Calls rejected client-side on an expired deadline.",
                       shard, self.deadline_preempted),
                Sample("ides_client_in_flight", "gauge",
                       "RPCs awaiting responses across the pool.",
                       shard, self.in_flight),
                Sample("ides_client_open_connections", "gauge",
                       "Live pooled sockets.", shard, self.open_connections),
                Sample("ides_client_quarantined_ids", "gauge",
                       "Request ids quarantined until late responses land.",
                       shard, self.quarantined_ids),
            ]

        registry.register_collector(collect)

    # ------------------------------------------------------------------ #
    # pool plumbing + negotiation
    # ------------------------------------------------------------------ #

    async def _dial(self, version: int) -> _ShardConnection:
        self._check_open()
        reader, writer = await asyncio.open_connection(self.host, self.port)
        connection = _ShardConnection(
            reader,
            writer,
            version,
            self.max_in_flight,
            on_late_response=self._note_late_response,
        )
        if self._closed:
            # close() ran while the socket was connecting: it cannot
            # have seen this connection, so tear it down here.
            connection.close()
            self._check_open()
        self._connections.append(connection)
        return connection

    def _check_open(self) -> None:
        if self._closed:
            raise ShardUnavailableError(
                f"shard client for {self.address} is closed",
                shard_index=self.shard_index,
            )

    def _note_late_response(self) -> None:
        self.late_responses += 1

    def _prune(self) -> None:
        self._connections = [c for c in self._connections if not c.broken]

    def _retire_surplus(self, keep: _ShardConnection) -> None:
        """Close idle connections beyond ``pool_size`` (newest-kept).

        Busy connections are left alone — closing them would reject
        their in-flight calls — so the pool can transiently exceed its
        cap, but only by sockets that still carry work.
        """
        surplus = len(self._connections) - self.pool_size
        if surplus <= 0:
            return
        for connection in list(self._connections):
            if surplus <= 0:
                break
            if connection is keep or connection.load:
                continue
            connection.close()
            self._connections.remove(connection)
            surplus -= 1

    async def _negotiate(self) -> int:
        """Settle the protocol version with one v2 ``ping`` probe."""
        if self._version is not None:
            return self._version
        if self._negotiating is None:
            self._negotiating = asyncio.Lock()
        async with self._negotiating:
            if self._version is not None:  # a racer finished first
                return self._version
            probe = await self._dial(PROTOCOL_VERSION)
            try:
                response = await probe.call({"op": "ping"}, None)
            except ProtocolError:
                # The peer's reply did not even frame: assume the old
                # dialect.
                probe.close()
                self._version = PROTOCOL_V1
                return self._version
            if response.fields.get("ok"):
                self._version = PROTOCOL_VERSION
                return self._version
            probe.close()
            message = str(response.fields.get("message", ""))
            if (
                response.fields.get("error") == "ProtocolError"
                and "version" in message
            ):
                # The canonical v1 refusal of a v2 frame.
                self._version = PROTOCOL_V1
                return self._version
            raise RemoteShardError(
                f"negotiation ping refused: {message} "
                f"(from shard at {self.address})"
            )

    async def _connection(self, fresh: bool) -> _ShardConnection:
        """A usable connection: least-loaded open socket, or a new dial.

        ``fresh`` (retry attempts) never reuses a pooled socket — after
        a server restart every one of them may be dead, and each broken
        socket announces itself only when touched.
        """
        version = await self._negotiate()
        self._prune()
        if fresh:
            # Retry semantics: never reuse a possibly-stale socket. The
            # dial can push the pool past its cap (the stale sockets it
            # distrusts may turn out healthy), so retire idle surplus
            # afterwards or repeated timeouts would leak sockets.
            connection = await self._dial(version)
            self._retire_surplus(keep=connection)
            return connection
        candidates = [c for c in self._connections if not c.saturated]
        if candidates:
            return min(candidates, key=lambda c: c.load)
        # Serialize dials: a burst of first calls must share the one
        # socket the first of them opens, not race the pool cap.
        if self._dialing is None:
            self._dialing = asyncio.Lock()
        async with self._dialing:
            self._prune()
            candidates = [c for c in self._connections if not c.saturated]
            if candidates:
                return min(candidates, key=lambda c: c.load)
            if len(self._connections) < self.pool_size:
                return await self._dial(version)
        # Every socket is saturated and the pool is at its cap: queue
        # on the least-loaded one — admission is still bounded, because
        # the connection's slot semaphore (v2) or conversation lock
        # (v1) holds the excess caller back until a slot frees up.
        if self._connections:
            return min(self._connections, key=lambda c: c.load)
        return await self._dial(version)

    async def close(self) -> None:
        """Close every connection; in-flight pipelined calls fail fast
        with :class:`ShardUnavailableError` instead of hanging until
        their timeout."""
        self._closed = True
        failure = ShardUnavailableError(
            f"shard client for {self.address} was closed with calls in "
            "flight",
            shard_index=self.shard_index,
        )
        connections, self._connections = self._connections, []
        for connection in connections:
            connection.close(failure)

    # ------------------------------------------------------------------ #
    # the RPC
    # ------------------------------------------------------------------ #

    async def call(
        self,
        op: str,
        fields: dict | None = None,
        arrays: dict[str, np.ndarray] | None = None,
        deadline: Deadline | None = None,
    ) -> Message:
        """One pipelined request/response exchange, with retries.

        Returns the response :class:`Message` (its ``ok`` field
        stripped). Raises the mapped remote exception for error frames
        and :class:`ShardUnavailableError` when the shard cannot be
        reached within the retry budget (or the client was closed).

        ``deadline`` bounds the whole call: an already-expired budget
        raises :class:`DeadlineExceededError` without dispatching
        anything, each attempt's timeout shrinks to the remaining
        budget, and the budget rides the request header's optional
        deadline field so the server can shed the request if it
        expires while queued over there.

        When tracing is enabled the RPC runs inside an ``rpc:{op}``
        span whose context rides the request header's optional
        ``"trace"`` field (the header is rebuilt per call — the shared
        retry dict is never mutated); when :meth:`bind_metrics` has
        attached a registry the RPC latency lands in the
        ``ides_client_rpc_seconds`` histogram. With neither configured
        this method is exactly the uninstrumented fast path.
        """
        request = {"op": op, **(fields or {})}
        tracer = get_tracer()
        if not tracer.enabled and self._rpc_seconds is None:
            return await self._call_with_retries(request, arrays, deadline)
        name = self._span_names.get(op)
        if name is None:
            name = self._span_names[op] = f"rpc:{op}"
        with tracer.span(name, attributes=self._span_attributes):
            context = tracer.current()
            if context is not None:
                request = {**request, TRACE_FIELD: context.header()}
            started = time.perf_counter()
            try:
                return await self._call_with_retries(request, arrays, deadline)
            finally:
                if self._rpc_seconds is not None:
                    child = self._rpc_children.get(op)
                    if child is None:
                        child = self._rpc_children[op] = (
                            self._rpc_seconds.labels(
                                op=op, shard=self._shard_label
                            )
                        )
                    child.observe(time.perf_counter() - started)

    def _expired(self) -> DeadlineExceededError:
        self.deadline_preempted += 1
        return DeadlineExceededError(
            f"deadline expired before shard at {self.address} could be "
            "dispatched"
        )

    async def _call_with_retries(
        self,
        request: dict,
        arrays: dict[str, np.ndarray] | None,
        deadline: Deadline | None = None,
    ) -> Message:
        failure: Exception | None = None
        backoff = self.retry_backoff
        tried = 0
        budget_refused = False
        for attempt in range(self.retries + 1):
            self._check_open()
            if attempt:
                # Retries draw on the pool-shared token bucket: when a
                # shard times out for everyone at once, amplifying the
                # offered load by 1 + retries is exactly wrong, so
                # beyond the budget the call fails fast with its last
                # transport failure instead.
                if not self.retry_budget.spend():
                    self.retry_budget_exhausted += 1
                    budget_refused = True
                    break
                self.retries_used += 1
                # Decorrelated jitter: each sleep is a uniform draw
                # seeded by the previous one, so pooled connections
                # retrying a restarted shard spread out instead of
                # marching in lockstep.
                backoff = self._backoff_rng.uniform(
                    self.retry_backoff,
                    min(3.0 * backoff, _BACKOFF_CAP_FACTOR * self.retry_backoff),
                )
                await asyncio.sleep(backoff)
            if deadline is None:
                attempt_request = request
                attempt_timeout = self.timeout
            else:
                if deadline.expired():
                    raise self._expired() from failure
                # The remaining budget rides the wire (so the server
                # can shed a request that expires in its queue) and
                # tightens this attempt's timeout.
                attempt_request = {
                    **request, DEADLINE_FIELD: deadline.header_value()
                }
                attempt_timeout = max(
                    min(self.timeout, deadline.remaining()),
                    _MIN_ATTEMPT_TIMEOUT,
                )
            self.attempts += 1
            tried += 1
            try:
                response = await asyncio.wait_for(
                    self._call_once(attempt_request, arrays, fresh=attempt > 0),
                    attempt_timeout,
                )
            except ShardUnavailableError:
                # close() rejected the in-flight future: fail fast, the
                # retry budget does not apply to a deliberate shutdown.
                raise
            except (
                ProtocolError,
                RemoteShardError,
                DeadlineExceededError,
                OverloadedError,
            ):
                # Framing violations are server bugs, error frames come
                # from a *live* server, and deadline/overload verdicts
                # only get more true with time: never retriable. All
                # are TransportErrors, so they must be re-raised before
                # the retriable clause below.
                raise
            except (
                ConnectionError,
                OSError,
                asyncio.TimeoutError,
                TransportError,
            ) as broken:
                # TransportError covers connection-local exhaustion
                # (e.g. no free request id): retried on a fresh socket,
                # mapped to ShardUnavailableError when the budget runs
                # out — never surfaced raw.
                if isinstance(broken, asyncio.TimeoutError):
                    self.timeouts += 1
                failure = broken
                continue
            self.calls += 1
            self.retry_budget.record_success()
            return self._unwrap(response)
        if deadline is not None and deadline.expired():
            raise self._expired() from failure
        reason = type(failure).__name__ if failure is not None else "failure"
        budget = " with the retry budget exhausted" if budget_refused else ""
        raise ShardUnavailableError(
            f"shard at {self.address} unreachable after "
            f"{tried} attempts{budget} ({reason}: {failure})",
            shard_index=self.shard_index,
        )

    async def _call_once(
        self,
        request: dict,
        arrays: dict[str, np.ndarray] | None,
        fresh: bool = False,
    ) -> Message:
        connection = await self._connection(fresh)
        return await connection.call(request, arrays)

    def _unwrap(self, response: Message) -> Message:
        if response.fields.get("ok"):
            fields = dict(response.fields)
            fields.pop("ok", None)
            return Message(
                fields=fields,
                arrays=response.arrays,
                request_id=response.request_id,
                version=response.version,
            )
        error_type = str(response.fields.get("error", "RemoteShardError"))
        message = str(response.fields.get("message", "unspecified remote error"))
        if error_type == "OverloadedError":
            # The admission rejection carries the server's retry_after
            # hint as a header field; keep it on the local exception so
            # callers (and the replica group) can honor it.
            try:
                retry_after = float(response.fields.get("retry_after"))
            except (TypeError, ValueError):
                retry_after = None
            raise OverloadedError(
                f"{message} (from shard at {self.address})",
                retry_after=retry_after,
            )
        raised = _ERROR_TYPES.get(error_type)
        if raised is not None:
            raise raised(f"{message} (from shard at {self.address})")
        raise RemoteShardError(
            f"{error_type}: {message} (from shard at {self.address})"
        )
