"""The shard client: a pooled, retrying RPC connection to one shard.

:class:`RemoteShardClient` owns a small pool of TCP connections to one
:class:`~repro.serving.transport.server.ShardServer`. Each
:meth:`~RemoteShardClient.call` checks a connection out of the pool,
writes one request frame, reads one response frame, and returns the
connection — so a router can keep ``pool_size`` RPCs in flight against
the same shard concurrently without interleaving frames on a socket.

Failure policy: every operation in the wire vocabulary is idempotent
(queries are pure; ``put``/``update``/``delete`` overwrite), so a call
that dies on a connection error or times out is retried on a *fresh*
connection up to ``retries`` times with linear backoff. When the
budget is exhausted the call raises
:class:`~repro.exceptions.ShardUnavailableError` — the signal the
router uses to mark the shard dark. An error *frame* from a live
server is not retried: it is mapped back onto the local exception
hierarchy (``ValidationError`` for bad requests, ``ProtocolError`` for
framing complaints, :class:`~repro.exceptions.RemoteShardError`
otherwise) and raised immediately.
"""

from __future__ import annotations

import asyncio

import numpy as np

from ...exceptions import (
    ProtocolError,
    RemoteShardError,
    ShardUnavailableError,
    ValidationError,
)
from .protocol import Message, read_message, write_message

__all__ = ["RemoteShardClient"]

#: Error-frame names mapped back onto local exception types. Anything
#: else arrives as RemoteShardError carrying the remote type name.
_ERROR_TYPES = {
    "ValidationError": ValidationError,
    "ProtocolError": ProtocolError,
}


class RemoteShardClient:
    """Connection pool speaking the shard wire protocol to one address.

    Args:
        host / port: the shard server's address.
        shard_index: the shard slot this client expects to find there
            (attached to unavailability errors; verified by the
            router's handshake, not here).
        pool_size: maximum concurrent connections (and therefore
            concurrent in-flight calls).
        timeout: seconds allowed per attempt (connect + write + read).
        retries: additional attempts after the first failure.
        retry_backoff: sleep before retry ``n`` is ``n * retry_backoff``
            seconds.
    """

    def __init__(
        self,
        host: str,
        port: int,
        shard_index: int | None = None,
        pool_size: int = 4,
        timeout: float = 10.0,
        retries: int = 2,
        retry_backoff: float = 0.05,
    ):
        if int(pool_size) < 1:
            raise ValidationError(f"pool_size must be >= 1, got {pool_size}")
        if timeout <= 0:
            raise ValidationError(f"timeout must be > 0, got {timeout}")
        if int(retries) < 0:
            raise ValidationError(f"retries must be >= 0, got {retries}")
        self.host = host
        self.port = int(port)
        self.shard_index = shard_index
        self.pool_size = int(pool_size)
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.retry_backoff = float(retry_backoff)
        self._free: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        self._slots = asyncio.Semaphore(self.pool_size)
        self._closed = False
        self.calls = 0
        self.retries_used = 0

    @property
    def address(self) -> str:
        """``host:port`` for messages and health reports."""
        return f"{self.host}:{self.port}"

    # ------------------------------------------------------------------ #
    # pool plumbing
    # ------------------------------------------------------------------ #

    async def _checkout(self) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        if self._free:
            return self._free.pop()
        return await asyncio.open_connection(self.host, self.port)

    def _checkin(
        self, connection: tuple[asyncio.StreamReader, asyncio.StreamWriter]
    ) -> None:
        if self._closed:
            self._discard(connection)
        else:
            self._free.append(connection)

    def _discard(
        self, connection: tuple[asyncio.StreamReader, asyncio.StreamWriter]
    ) -> None:
        _, writer = connection
        try:
            writer.close()
        except Exception:  # noqa: BLE001 - already-broken transport
            pass

    async def close(self) -> None:
        """Close every pooled connection; in-flight calls may still
        finish on their checked-out sockets."""
        self._closed = True
        while self._free:
            self._discard(self._free.pop())

    # ------------------------------------------------------------------ #
    # the RPC
    # ------------------------------------------------------------------ #

    async def call(
        self,
        op: str,
        fields: dict | None = None,
        arrays: dict[str, np.ndarray] | None = None,
    ) -> Message:
        """One request/response round trip, with retries.

        Returns the response :class:`Message` (its ``ok`` field
        stripped). Raises the mapped remote exception for error frames
        and :class:`ShardUnavailableError` when the shard cannot be
        reached within the retry budget.
        """
        request = {"op": op, **(fields or {})}
        failure: Exception | None = None
        async with self._slots:
            for attempt in range(self.retries + 1):
                if attempt:
                    self.retries_used += 1
                    await asyncio.sleep(attempt * self.retry_backoff)
                try:
                    # Retries must not pop another possibly-stale pooled
                    # socket (after a server restart *every* pooled
                    # connection is dead): attempt 2+ drains the pool
                    # and dials fresh.
                    return await asyncio.wait_for(
                        self._call_once(request, arrays, fresh=attempt > 0),
                        self.timeout,
                    )
                except (ConnectionError, OSError, asyncio.TimeoutError) as broken:
                    failure = broken
        reason = type(failure).__name__ if failure is not None else "failure"
        raise ShardUnavailableError(
            f"shard at {self.address} unreachable after "
            f"{self.retries + 1} attempts ({reason}: {failure})",
            shard_index=self.shard_index,
        )

    async def _call_once(
        self,
        request: dict,
        arrays: dict[str, np.ndarray] | None,
        fresh: bool = False,
    ) -> Message:
        if fresh:
            while self._free:
                self._discard(self._free.pop())
        connection = await self._checkout()
        reader, writer = connection
        try:
            await write_message(writer, request, arrays)
            response = await read_message(reader)
        except ProtocolError:
            # The *response* was malformed — a server bug, not a flaky
            # link. Drop the connection and surface it; retrying would
            # just repeat the garbage.
            self._discard(connection)
            raise
        except asyncio.CancelledError:
            # A cancelled call (timeout) leaves the socket mid-frame;
            # it must never return to the pool.
            self._discard(connection)
            raise
        except (ConnectionError, OSError):
            self._discard(connection)
            raise
        if response is None:
            self._discard(connection)
            raise ConnectionResetError("server closed the connection mid-call")
        self._checkin(connection)
        self.calls += 1
        if response.fields.get("ok"):
            fields = dict(response.fields)
            fields.pop("ok", None)
            return Message(fields=fields, arrays=response.arrays)
        error_type = str(response.fields.get("error", "RemoteShardError"))
        message = str(response.fields.get("message", "unspecified remote error"))
        raised = _ERROR_TYPES.get(error_type)
        if raised is not None:
            raise raised(f"{message} (from shard at {self.address})")
        raise RemoteShardError(
            f"{error_type}: {message} (from shard at {self.address})"
        )
