"""Replica groups: N servers per hash slice, health-aware failover.

A single :class:`~repro.serving.transport.server.ShardServer` per hash
slice makes every slice a single point of failure: one dead process is
a dark partition of the directory until a human restarts it.
:class:`ReplicaGroup` removes that coupling by putting **N replica
servers behind one slice** — every replica runs with the same
``shard_index`` / ``n_shards`` and holds the same hosts (seeded from
the same :mod:`~repro.serving.snapshot` file, kept convergent by the
same refresh stream).

The group duck-types the :class:`RemoteShardClient` surface the
router's scatter-gather dispatch uses (``call`` / ``close`` /
``address`` / ``shard_index`` / ``bind_metrics``), so
:class:`~repro.serving.transport.router.ShardedQueryRouter` routes
over replica groups without changing a line of its query planning —
and failover happens *inside* the sub-query, invisible to the caller:

* **Reads** route to the healthiest replica — lowest health score,
  an EWMA of observed RPC latency (the same feedback idiom as
  :class:`~repro.serving.frontend.AdaptiveBatchPolicy`) scaled by the
  replica's observed pipeline depth. A replica that fails a read is
  marked **dark** and the call retries on the next-best sibling within
  the same scatter-gather round; only when *every* replica of the
  slice is dark does the caller see
  :class:`~repro.exceptions.ShardUnavailableError` (carrying the
  slice's ``shard_index``).
* **Writes** (``put_many`` / ``update_many`` / ``delete`` /
  ``shutdown``) fan out to **all** replicas concurrently — including
  dark ones, so a restarted standby starts receiving the live write
  stream immediately. A write succeeds when at least one replica
  acknowledged it; per-replica misses are counted, never raised.
* **Resurrection is gated on catch-up.** Every write acknowledgement
  carries the replica's journal sequence number
  (:mod:`~repro.serving.journal`), and siblings of one slice apply the
  same fanned-out stream, so their seqs are directly comparable. A
  dark replica that acknowledges a write (or answers a
  :meth:`probe`) with a seq *behind* its siblings' becomes
  ``catching_up`` — alive, receiving writes, **out of the read
  rotation** — until a repair replays the entries of its dark window
  from the healthiest sibling (``journal_since``), or re-seeds it over
  the wire (``export``) when the sibling's journal has truncated the
  gap, and a digest comparison proves bit-equality. Only servers that
  report seqs get the gate; a pre-journal server keeps the legacy
  first-acknowledged-write resurrection.
* **Anti-entropy**: :meth:`repair` runs one digest-exchange round over
  the whole group and repairs any divergence it finds;
  :meth:`start_anti_entropy` runs that round on a background interval
  (``connect_replica_router(..., anti_entropy_seconds=...)``), so
  divergence is found even when no write happens to expose it.
* **Dark replicas** are sidelined from reads for ``reprobe_seconds``
  (bounding the tail latency a freshly killed server can add), then
  become eligible again behind the active ones. :meth:`probe` —
  the router's health path — contacts every replica and refreshes
  states in one round, with the same seq gate as the write path.

Everything is observable: replica states, failover counts, seq lags,
repair counts and per-replica latency histograms land in the metrics
registry (``ides_replica_*``), and :meth:`replica_health` feeds the
per-replica detail into :class:`~repro.core.diagnostics.ShardHealth`.
"""

from __future__ import annotations

import asyncio
import time
from typing import Sequence

from ...core.diagnostics import ReplicaHealth
from ...exceptions import (
    OverloadedError,
    ShardUnavailableError,
    ValidationError,
)
from ..observability.metrics import Sample
from .client import RemoteShardClient
from .router import ShardedQueryRouter, _parse_address

__all__ = ["ReplicaGroup", "connect_replica_router"]

#: Operations that mutate shard state (plus ``shutdown``): fanned out
#: to every replica so siblings stay convergent. Everything else is a
#: read and routes to the healthiest replica with sibling failover.
FANOUT_OPS = frozenset({"put_many", "update_many", "delete", "shutdown"})

#: EWMA smoothing factor for the per-replica latency estimate — the
#: same weighting AdaptiveBatchPolicy uses for its dispatch-latency
#: feedback loop.
LATENCY_ALPHA = 0.2

#: Digest-check / replay iterations one repair attempt may spend
#: before giving up and leaving the replica ``catching_up`` (the next
#: anti-entropy round retries). Bounds repair work under a write
#: stream that keeps moving the target.
REPAIR_ROUNDS = 5

#: Re-seed chunk: hosts per ``put_many`` when a repair ships a full
#: store copy (keeps frames far under ``MAX_FRAME_BYTES``).
RESEED_CHUNK = 256

#: Reserved host id for the seq-alignment no-op: deleting a host that
#: does not exist changes no content but journals one entry, carrying
#: the repair's seq stamp so a caught-up replica lands on its source's
#: exact high-water mark. The NUL prefix keeps it out of any real id
#: space.
SEQ_ALIGN_ID = "\x00ides-seq-align"


def _response_fields(result) -> dict:
    """The field dict of an RPC result (Message or plain mapping)."""
    fields = getattr(result, "fields", None)
    if isinstance(fields, dict):
        return fields
    if isinstance(result, dict):
        return result
    return {}


def _response_arrays(result) -> dict:
    arrays = getattr(result, "arrays", None)
    return arrays if isinstance(arrays, dict) else {}


def _response_seq(result, key: str = "seq") -> int | None:
    """The journal seq an acknowledgement reported (None: no journal)."""
    seq = _response_fields(result).get(key)
    return seq if isinstance(seq, int) and not isinstance(seq, bool) else None


class _Replica:
    """One member of a group: a client plus its health bookkeeping."""

    __slots__ = (
        "client",
        "ewma_latency",
        "state",
        "dark_since",
        "failures",
        "applied_seq",
        "repairs",
        "last_repair_seconds",
        "repair_task",
    )

    def __init__(self, client: RemoteShardClient):
        self.client = client
        self.ewma_latency: float | None = None
        self.state = "active"
        self.dark_since = 0.0
        self.failures = 0
        #: Journal high-water mark this replica last acknowledged
        #: (``None`` until it reports one — e.g. a pre-journal server).
        self.applied_seq: int | None = None
        #: Catch-up repairs completed on this replica.
        self.repairs = 0
        self.last_repair_seconds: float | None = None
        self.repair_task: asyncio.Task | None = None


class ReplicaGroup:
    """N interchangeable shard servers behind one hash slice.

    Args:
        clients: one :class:`RemoteShardClient` per replica, all
            pointing at servers that run the *same* shard slot.
        shard_index: the slice this group serves (the router assigns it
            positionally, exactly as it does for a bare client).
        reprobe_seconds: how long a dark replica is sidelined from
            reads before it becomes eligible again (writes and
            :meth:`probe` always reach it).
        latency_alpha: EWMA weight for the per-replica latency score.
        clock: injectable monotonic time source (tests advance it
            instead of sleeping).
    """

    def __init__(
        self,
        clients: Sequence[RemoteShardClient],
        shard_index: int | None = None,
        reprobe_seconds: float = 1.0,
        latency_alpha: float = LATENCY_ALPHA,
        clock=time.monotonic,
    ):
        if not clients:
            raise ValidationError("a replica group needs at least one client")
        if not 0.0 < latency_alpha <= 1.0:
            raise ValidationError(
                f"latency_alpha must be in (0, 1], got {latency_alpha}"
            )
        self._replicas = [_Replica(client) for client in clients]
        self._shard_index = shard_index
        self.reprobe_seconds = float(reprobe_seconds)
        self.latency_alpha = float(latency_alpha)
        self._clock = clock
        #: Reads that moved on to a sibling after a replica failed.
        self.failovers = 0
        #: Read passes where *every* sibling failed together — a
        #: group-saturation signal (co-timeouts under load, shared
        #: dependency stall, or an explicit all-overloaded round), not
        #: N independent dead replicas. No replica is darkened and no
        #: repair is scheduled for these.
        self.overload_events = 0
        #: Anti-entropy rounds that raised (loop keeps running).
        self.anti_entropy_failures = 0
        #: Serializes repairs within the group: two interleaved repairs
        #: of one slice would race their seq stamps. Created lazily —
        #: the constructor may run outside any event loop.
        self._repair_lock: asyncio.Lock | None = None
        self._anti_entropy_task: asyncio.Task | None = None
        #: Optional per-replica latency histogram, attached by
        #: :meth:`bind_metrics`; ``None`` keeps the hot path untouched.
        self._replica_seconds = None
        self._latency_children: dict[str, object] = {}

    # ------------------------------------------------------------------ #
    # the RemoteShardClient surface the router dispatches against
    # ------------------------------------------------------------------ #

    @property
    def shard_index(self) -> int | None:
        """The hash slice this group serves."""
        return self._shard_index

    @shard_index.setter
    def shard_index(self, value: int | None) -> None:
        self._shard_index = value
        for replica in self._replicas:
            replica.client.shard_index = value

    @property
    def address(self) -> str:
        """Every replica address, ``|``-joined (health reports)."""
        return "|".join(r.client.address for r in self._replicas)

    @property
    def n_replicas(self) -> int:
        """Replicas in the group (dark ones included)."""
        return len(self._replicas)

    @property
    def clients(self) -> list[RemoteShardClient]:
        """The member clients, in construction order."""
        return [replica.client for replica in self._replicas]

    async def call(self, op, fields=None, arrays=None, deadline=None):
        """One slice RPC: reads fail over, writes fan out.

        The failure contract matches a bare client: live-server errors
        (``ValidationError``, ``ProtocolError``, ``RemoteShardError``)
        raise immediately — a replica answering *wrongly* is not a
        replica that is down — and
        :class:`~repro.exceptions.ShardUnavailableError` surfaces only
        when no replica could serve the call. ``deadline`` rides into
        the member client RPCs (reads only — a write fan-out must
        reach every sibling to keep them convergent).
        """
        if op in FANOUT_OPS:
            return await self._fanout(op, fields, arrays)
        return await self._read(op, fields, arrays, deadline=deadline)

    async def close(self) -> None:
        """Close every replica's connection pool (and stop repair work)."""
        tasks = [self._anti_entropy_task] + [
            r.repair_task for r in self._replicas
        ]
        self._anti_entropy_task = None
        for task in tasks:
            if task is not None and not task.done():
                task.cancel()
        live = [t for t in tasks if t is not None]
        if live:
            await asyncio.gather(*live, return_exceptions=True)
        await asyncio.gather(*(r.client.close() for r in self._replicas))

    # ------------------------------------------------------------------ #
    # health scoring and state
    # ------------------------------------------------------------------ #

    def _score(self, replica: _Replica) -> float:
        """Lower is healthier: EWMA latency scaled by pipeline depth.

        An untried replica scores near zero, so fresh capacity is
        probed before a replica with any observed latency.
        """
        latency = replica.ewma_latency or 0.0
        client = replica.client
        capacity = max(1, client.max_in_flight * client.pool_size)
        depth = client.in_flight / capacity
        return latency * (1.0 + depth) + depth * 1e-6

    def _read_candidates(self) -> list[_Replica]:
        """Replicas in try order: active by score, then fallbacks.

        A ``catching_up`` replica is **never** read while any sibling
        is active — that is the resurrection gate: it acknowledges
        writes but its store still misses its dark window. Dark
        replicas sidelined less than ``reprobe_seconds`` ago are
        skipped (a freshly killed server must not add its connect
        timeout to every unlucky read). When no replica is active at
        all, availability wins over staleness: catching-up replicas
        (alive, bounded-stale) are tried first, then every dark one —
        total sidelining would turn a recoverable blip into a
        guaranteed error.
        """
        now = self._clock()
        active = sorted(
            (r for r in self._replicas if r.state == "active"), key=self._score
        )
        if active:
            dark = [
                r
                for r in self._replicas
                if r.state == "dark"
                and now - r.dark_since >= self.reprobe_seconds
            ]
            dark.sort(key=lambda r: r.dark_since)
            return active + dark
        catching_up = sorted(
            (r for r in self._replicas if r.state == "catching_up"),
            key=self._score,
        )
        dark = [r for r in self._replicas if r.state == "dark"]
        # Longest-dark first: it has had the most time to come back.
        dark.sort(key=lambda r: r.dark_since)
        return catching_up + dark

    def _mark_dark(self, replica: _Replica) -> None:
        replica.state = "dark"
        replica.dark_since = self._clock()

    def _mark_active(self, replica: _Replica) -> None:
        replica.state = "active"

    def _mark_catching_up(self, replica: _Replica) -> None:
        replica.state = "catching_up"

    def _known_seqs(self) -> list[int]:
        return [
            r.applied_seq for r in self._replicas if r.applied_seq is not None
        ]

    def _gate_acknowledged(self, acknowledged) -> None:
        """Apply the catch-up gate to one round of acknowledgements.

        ``acknowledged`` is ``(replica, seq)`` pairs from one fanout or
        probe round. Siblings apply the same write stream, so within a
        round the seqs are directly comparable: a replica behind the
        round's maximum missed writes — it leaves the read rotation
        (``catching_up``) and a repair is scheduled. A replica at the
        maximum (or one that reports no seq — a pre-journal server,
        which keeps the legacy contract) is marked active.
        """
        seqs = [seq for _, seq in acknowledged if seq is not None]
        top = max(seqs) if seqs else None
        for replica, seq in acknowledged:
            if seq is not None:
                replica.applied_seq = seq
            if top is None or seq is None or seq >= top:
                self._mark_active(replica)
            else:
                self._mark_catching_up(replica)
                self._schedule_repair(replica)

    def replica_health(self) -> tuple[ReplicaHealth, ...]:
        """Per-replica state for :class:`ShardHealth` (no RPCs)."""
        seqs = self._known_seqs()
        top = max(seqs) if seqs else None
        return tuple(
            ReplicaHealth(
                address=r.client.address,
                state=r.state,
                ewma_latency_ms=(
                    r.ewma_latency * 1000.0
                    if r.ewma_latency is not None
                    else None
                ),
                in_flight=r.client.in_flight,
                failures=r.failures,
                applied_seq=r.applied_seq,
                seq_lag=(
                    top - r.applied_seq
                    if top is not None and r.applied_seq is not None
                    else None
                ),
                repairs=r.repairs,
                last_repair_seconds=r.last_repair_seconds,
            )
            for r in self._replicas
        )

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #

    async def _timed(self, replica: _Replica, op, fields, arrays, deadline=None):
        """One replica RPC, feeding the latency EWMA and histogram.

        ``deadline`` is forwarded only when set, so duck-typed member
        clients with the three-argument ``call`` keep working. An
        overload rejection or deadline shed raises before the latency
        note on purpose: both return fast and would drag the EWMA
        down, making the *saturated* replica look like the healthiest.
        """
        started = time.perf_counter()
        try:
            if deadline is None:
                response = await replica.client.call(op, fields, arrays)
            else:
                response = await replica.client.call(
                    op, fields, arrays, deadline=deadline
                )
        except ShardUnavailableError:
            replica.failures += 1
            raise
        self._note_latency(replica, time.perf_counter() - started)
        return response

    def _note_latency(self, replica: _Replica, elapsed: float) -> None:
        alpha = self.latency_alpha
        previous = replica.ewma_latency
        replica.ewma_latency = (
            elapsed
            if previous is None
            else (1.0 - alpha) * previous + alpha * elapsed
        )
        if self._replica_seconds is not None:
            address = replica.client.address
            child = self._latency_children.get(address)
            if child is None:
                child = self._latency_children[address] = (
                    self._replica_seconds.labels(
                        shard=self._shard_label(), replica=address
                    )
                )
            child.observe(elapsed)

    async def _read(self, op, fields, arrays, deadline=None):
        """Healthiest-first read with in-call failover to siblings.

        Darkening is **deferred**: a replica that fails with
        :class:`ShardUnavailableError` is a *suspect* and only becomes
        dark once a sibling succeeds within the same pass —
        differential evidence that this replica specifically is down.
        When every candidate fails together the pass is
        indistinguishable from group-wide saturation (co-timeouts under
        load, a shared dependency stalling), so it counts one
        :attr:`overload_events` signal and leaves replica states alone
        rather than darkening N siblings and scheduling needless
        repairs. An :class:`~repro.exceptions.OverloadedError` never
        darkens either — the server is alive, just refusing admission —
        it fails over to the next sibling and surfaces only when every
        replica refused. A
        :class:`~repro.exceptions.DeadlineExceededError` propagates
        immediately without failover: an expired budget is equally
        expired at every sibling.
        """
        candidates = self._read_candidates()
        failure: ShardUnavailableError | None = None
        overloaded: OverloadedError | None = None
        suspects: list[_Replica] = []
        for position, replica in enumerate(candidates):
            try:
                response = await self._timed(
                    replica, op, fields, arrays, deadline=deadline
                )
            except ShardUnavailableError as dark:
                suspects.append(replica)
                failure = dark
                if position + 1 < len(candidates):
                    self.failovers += 1
                continue
            except OverloadedError as saturated:
                overloaded = saturated
                if position + 1 < len(candidates):
                    self.failovers += 1
                continue
            for suspect in suspects:
                self._mark_dark(suspect)
            if replica.state != "catching_up":
                # A catching-up replica only appears here as the last
                # resort (no active sibling); serving one stale read
                # must not re-admit it to the rotation.
                self._mark_active(replica)
            return response
        self.overload_events += 1
        if overloaded is not None:
            raise overloaded
        detail = f" (last: {failure})" if failure is not None else ""
        raise ShardUnavailableError(
            f"all {len(self._replicas)} replicas of shard "
            f"{self._shard_index} are unreachable{detail}",
            shard_index=self._shard_index,
        )

    async def _fanout(self, op, fields, arrays):
        """Write to every replica; succeed when at least one did.

        Dark replicas are included on purpose: a restarted standby
        starts applying the live stream with its first acknowledged
        write. Whether that acknowledgement re-admits it to the read
        rotation is the catch-up gate's call
        (:meth:`_gate_acknowledged`): an ack whose journal seq trails
        its siblings' proves missed writes, so the replica surfaces as
        ``catching_up`` and a background repair replays its gap first.
        """
        replicas = list(self._replicas)
        results = await asyncio.gather(
            *(self._timed(r, op, fields, arrays) for r in replicas),
            return_exceptions=True,
        )
        response = None
        hard_failure: BaseException | None = None
        acknowledged: list[tuple[_Replica, int | None]] = []
        for replica, result in zip(replicas, results):
            if isinstance(result, ShardUnavailableError):
                self._mark_dark(replica)
            elif isinstance(result, BaseException):
                # A live server refused the request (bad write, server
                # bug): not an availability event — the replica stays
                # in its state, the failure is counted, and it is
                # raised only when no sibling accepted the write.
                replica.failures += 1
                hard_failure = hard_failure or result
            else:
                acknowledged.append((replica, _response_seq(result)))
                if response is None:
                    response = result
        self._gate_acknowledged(acknowledged)
        if response is not None:
            return response
        if hard_failure is not None:
            raise hard_failure
        raise ShardUnavailableError(
            f"no replica of shard {self._shard_index} accepted {op!r} "
            f"({len(replicas)} tried)",
            shard_index=self._shard_index,
        )

    async def probe(self):
        """Contact *every* replica with a ``health`` RPC.

        Refreshes states in one concurrent round — the one read path
        that reaches dark replicas unconditionally, so a health probe
        is also how a recovered replica rejoins without waiting for a
        write. The same catch-up gate as the write path applies: a
        replica answering with a ``journal_seq`` behind its siblings'
        is stale (e.g. freshly restarted from an old snapshot) and
        becomes ``catching_up``, not active. Returns the healthiest
        live replica's response; raises
        :class:`ShardUnavailableError` only when the whole group is
        dark.
        """
        replicas = list(self._replicas)
        results = await asyncio.gather(
            *(self._timed(r, "health", None, None) for r in replicas),
            return_exceptions=True,
        )
        answers: dict[int, object] = {}
        acknowledged: list[tuple[_Replica, int | None]] = []
        for index, (replica, result) in enumerate(zip(replicas, results)):
            if isinstance(result, ShardUnavailableError):
                self._mark_dark(replica)
            elif isinstance(result, BaseException):
                raise result
            else:
                acknowledged.append(
                    (replica, _response_seq(result, key="journal_seq"))
                )
                answers[index] = result
        self._gate_acknowledged(acknowledged)
        for replica in self._read_candidates():
            index = self._replicas.index(replica)
            if index in answers:
                return answers[index]
        if not answers:
            raise ShardUnavailableError(
                f"all {len(self._replicas)} replicas of shard "
                f"{self._shard_index} are unreachable",
                shard_index=self._shard_index,
            )
        # Unreachable: every live replica is in answers, and the first
        # read candidate of a group with any live replica is live.
        return next(iter(answers.values()))  # pragma: no cover

    # ------------------------------------------------------------------ #
    # anti-entropy repair
    # ------------------------------------------------------------------ #

    def _schedule_repair(self, replica: _Replica) -> None:
        """Kick off a background catch-up repair (at most one per replica)."""
        task = replica.repair_task
        if task is not None and not task.done():
            return
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            # Sync caller (state poked from a test): the next probe or
            # anti-entropy round picks the replica up instead.
            return
        replica.repair_task = loop.create_task(self._repair_replica(replica))

    async def _repair_replica(self, replica: _Replica) -> bool:
        source = self._best_source(exclude=replica)
        if source is None:
            return False
        try:
            return await self._repair_from(source, replica)
        except asyncio.CancelledError:
            raise
        except ShardUnavailableError:
            return False
        except Exception:  # noqa: BLE001 - a failed repair must never
            # take the group down; the next round retries
            replica.failures += 1
            return False

    def _best_source(self, exclude: _Replica) -> _Replica | None:
        """The repair source: active, most-applied, healthiest sibling."""
        candidates = [
            r
            for r in self._replicas
            if r is not exclude and r.state == "active"
        ]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda r: (
                -(r.applied_seq if r.applied_seq is not None else -1),
                self._score(r),
            ),
        )

    async def repair(self) -> dict:
        """One full anti-entropy round: digest exchange + repairs.

        Every replica is asked for its ``digest``; the active replica
        with the highest seq (healthiest on ties) becomes the source
        of truth, and every live sibling whose digest differs — or
        whose seq lags — is repaired toward it. Returns a per-address
        report (state, seq, digest, repair outcome) for operators
        (``ides-experiment serve repair``).
        """
        replicas = list(self._replicas)
        results = await asyncio.gather(
            *(self._timed(r, "digest", None, None) for r in replicas),
            return_exceptions=True,
        )
        report: dict[str, dict] = {}
        live: list[tuple[_Replica, object, int | None]] = []
        for replica, result in zip(replicas, results):
            address = replica.client.address
            if isinstance(result, ShardUnavailableError):
                self._mark_dark(replica)
                report[address] = {"state": replica.state, "error": str(result)}
            elif isinstance(result, BaseException):
                replica.failures += 1
                report[address] = {"state": replica.state, "error": str(result)}
            else:
                fields = _response_fields(result)
                digest = fields.get("digest")
                seq = _response_seq(result)
                if seq is not None:
                    replica.applied_seq = seq
                live.append((replica, digest, seq))
                report[address] = {
                    "state": replica.state,
                    "seq": seq,
                    "digest": digest,
                }
        if not live:
            return report
        source = self._elect_source(live)
        source_digest = next(d for r, d, _ in live if r is source)
        source_seq = next(s for r, _, s in live if r is source)
        self._mark_active(source)
        report[source.client.address]["role"] = "source"
        report[source.client.address]["state"] = source.state
        for replica, digest, seq in live:
            if replica is source:
                continue
            address = replica.client.address
            converged = (
                digest is not None
                and digest == source_digest
                and (seq == source_seq or seq is None or source_seq is None)
            )
            if converged:
                self._mark_active(replica)
            else:
                try:
                    report[address]["repaired"] = await self._repair_from(
                        source, replica
                    )
                except asyncio.CancelledError:
                    raise
                except ShardUnavailableError:
                    report[address]["repaired"] = False
                except Exception as failed:  # noqa: BLE001 - keep the round
                    replica.failures += 1
                    report[address]["repaired"] = False
                    report[address]["error"] = str(failed)
            report[address]["state"] = replica.state
            report[address]["seq"] = replica.applied_seq
        return report

    def _elect_source(self, live) -> _Replica:
        """Source of truth: active first, then highest seq, then score."""

        def rank(item):
            replica, _digest, seq = item
            return (
                0 if replica.state == "active" else 1,
                -(seq if seq is not None else -1),
                self._score(replica),
            )

        return min(live, key=rank)[0]

    async def _repair_call(self, replica: _Replica, op, fields=None, arrays=None):
        """One repair-path RPC; an unreachable peer goes dark."""
        try:
            return await self._timed(replica, op, fields, arrays)
        except ShardUnavailableError:
            self._mark_dark(replica)
            raise

    async def _repair_from(self, source: _Replica, target: _Replica) -> bool:
        """Catch ``target`` up to ``source``; True when digest-equal.

        Serialized per group — two interleaved repairs of one slice
        would race their replayed writes and seq stamps.
        """
        if self._repair_lock is None:
            self._repair_lock = asyncio.Lock()
        async with self._repair_lock:
            try:
                return await self._repair_from_locked(source, target)
            except ValidationError as unsupported:
                if "unknown operation" in str(unsupported):
                    # A pre-journal server in the pair: convergence is
                    # unverifiable, so keep the legacy
                    # resurrect-on-acknowledgement contract rather than
                    # wedging the replica out of rotation forever.
                    self._mark_active(target)
                    return True
                raise

    async def _repair_from_locked(
        self, source: _Replica, target: _Replica
    ) -> bool:
        started = time.perf_counter()
        for _ in range(REPAIR_ROUNDS):
            src = _response_fields(
                await self._repair_call(source, "digest", None, None)
            )
            tgt = _response_fields(
                await self._repair_call(target, "digest", None, None)
            )
            src_digest, tgt_digest = src.get("digest"), tgt.get("digest")
            src_seq = src.get("seq") if isinstance(src.get("seq"), int) else None
            tgt_seq = tgt.get("seq") if isinstance(tgt.get("seq"), int) else None
            if src_seq is not None:
                source.applied_seq = src_seq
            if tgt_seq is not None:
                target.applied_seq = tgt_seq
            if src_digest is None or tgt_digest is None:
                # One side cannot prove content (no digest support):
                # nothing to verify against — legacy contract.
                self._mark_active(target)
                return True
            if src_digest == tgt_digest:
                if (
                    src_seq is not None
                    and tgt_seq is not None
                    and src_seq != tgt_seq
                ):
                    # Content equal but the counters disagree — replay
                    # stamps can land above the source's own high-water
                    # mark when the target interleaved writes of its
                    # own. Stamp whichever side trails up to the max
                    # with the no-op entry, or the next write ack would
                    # demote the trailing replica right back.
                    high = max(src_seq, tgt_seq)
                    behind = target if tgt_seq < src_seq else source
                    await self._repair_call(
                        behind,
                        "delete",
                        {"id": SEQ_ALIGN_ID, "seq": high},
                        None,
                    )
                    behind.applied_seq = high
                self._mark_active(target)
                target.repairs += 1
                target.last_repair_seconds = time.perf_counter() - started
                return True
            self._mark_catching_up(target)
            if src_seq is None or tgt_seq is None or tgt_seq >= src_seq:
                # Equal stream length, different content: replay cannot
                # explain the difference — true divergence, re-seed.
                await self._reseed(source, target)
                continue
            if not await self._replay(source, target, since=tgt_seq):
                # The source's journal no longer covers the gap.
                await self._reseed(source, target)
        return False

    async def _replay(
        self, source: _Replica, target: _Replica, since: int
    ) -> bool:
        """Replay source's journal after ``since`` onto target.

        Entries re-apply under their original ops (updates as puts —
        the target may have missed the original registration) with the
        source's seq as the replay stamp. Returns False when the
        source reports the gap truncated (caller re-seeds).
        """
        cursor = int(since)
        while True:
            reply = await self._repair_call(
                source, "journal_since", {"since": cursor}, None
            )
            fields = _response_fields(reply)
            if fields.get("truncated"):
                return False
            entries = fields.get("entries")
            if not isinstance(entries, list) or not entries:
                return True
            arrays = _response_arrays(reply)
            advanced = cursor
            for index, meta in enumerate(entries):
                if not isinstance(meta, dict):
                    return True
                seq = meta.get("seq")
                stamp = seq if isinstance(seq, int) else None
                ids = meta.get("ids") or []
                if meta.get("op") == "delete":
                    for host_id in ids:
                        await self._repair_call(
                            target, "delete", {"id": host_id, "seq": stamp}, None
                        )
                else:
                    await self._repair_call(
                        target,
                        "put_many",
                        {"ids": ids, "seq": stamp},
                        {
                            "outgoing": arrays[f"out_{index}"],
                            "incoming": arrays[f"in_{index}"],
                        },
                    )
                if stamp is not None:
                    advanced = max(advanced, stamp)
            if advanced <= cursor:
                # No seq progress (malformed entries): bail out and let
                # the digest check decide.
                return True
            cursor = advanced

    async def _reseed(self, source: _Replica, target: _Replica) -> None:
        """Ship a full copy of source's store to target over the wire.

        The fallback when replay cannot converge: delete the hosts the
        source does not hold, re-put everything it does (chunked far
        under the frame limit), and stamp the target's journal to the
        source's high-water mark.
        """
        stamp = _response_seq(
            await self._repair_call(source, "digest", None, None)
        )
        export = await self._repair_call(source, "export", None, None)
        fields = _response_fields(export)
        ids = fields.get("ids")
        if not isinstance(ids, list):
            raise ValidationError(
                f"replica {source.client.address} export carried no ids"
            )
        arrays = _response_arrays(export)
        outgoing, incoming = arrays.get("outgoing"), arrays.get("incoming")
        target_ids = (
            _response_fields(
                await self._repair_call(target, "ids", None, None)
            ).get("ids")
            or []
        )
        keep = set(ids)
        for host_id in target_ids:
            if host_id not in keep:
                await self._repair_call(
                    target, "delete", {"id": host_id}, None
                )
        for start in range(0, len(ids), RESEED_CHUNK):
            stop = start + RESEED_CHUNK
            await self._repair_call(
                target,
                "put_many",
                {"ids": ids[start:stop]},
                {
                    "outgoing": outgoing[start:stop],
                    "incoming": incoming[start:stop],
                },
            )
        if stamp is not None:
            await self._repair_call(
                target, "delete", {"id": SEQ_ALIGN_ID, "seq": stamp}, None
            )
            target.applied_seq = stamp

    def start_anti_entropy(self, interval: float) -> None:
        """Run :meth:`repair` every ``interval`` seconds in the background.

        Must be called with a running event loop (e.g. right after
        ``connect_replica_router``); :meth:`close` cancels the loop.
        """
        if not interval > 0:
            raise ValidationError(
                f"anti-entropy interval must be > 0, got {interval}"
            )
        if (
            self._anti_entropy_task is not None
            and not self._anti_entropy_task.done()
        ):
            return
        self._anti_entropy_task = asyncio.get_running_loop().create_task(
            self._anti_entropy_loop(float(interval))
        )

    async def _anti_entropy_loop(self, interval: float) -> None:
        while True:
            await asyncio.sleep(interval)
            try:
                await self.repair()
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - the loop must outlive a
                # failed round; divergence detection is retried forever
                self.anti_entropy_failures += 1

    # ------------------------------------------------------------------ #
    # telemetry
    # ------------------------------------------------------------------ #

    def _shard_label(self) -> str:
        return (
            str(self._shard_index)
            if self._shard_index is not None
            else self.address
        )

    def bind_metrics(self, registry) -> None:
        """Expose the group and every member client.

        Per-replica latency lands in ``ides_replica_rpc_seconds``
        (labeled by shard and replica address); replica states,
        failover and per-replica failure counts become scrape-time
        collector samples. Member clients bind their own
        ``ides_client_*`` series as usual.
        """
        self._replica_seconds = registry.histogram(
            "ides_replica_rpc_seconds",
            "Per-replica RPC latency observed by the replica group.",
            labels=("shard", "replica"),
        )
        for replica in self._replicas:
            replica.client.bind_metrics(registry)

        def collect():
            shard = self._shard_label()
            samples = [
                Sample(
                    "ides_replica_failovers_total", "counter",
                    "Reads retried on a sibling after a replica failed.",
                    (("shard", shard),), self.failovers,
                ),
                Sample(
                    "ides_replica_group_overload_total", "counter",
                    "Read passes where every sibling failed together "
                    "(group saturation, not independent dark replicas).",
                    (("shard", shard),), self.overload_events,
                ),
            ]
            known = self._known_seqs()
            top = max(known) if known else None
            for replica in self._replicas:
                labels = (
                    ("shard", shard),
                    ("replica", replica.client.address),
                )
                state_value = {"active": 1.0, "catching_up": 0.5}.get(
                    replica.state, 0.0
                )
                samples.append(Sample(
                    "ides_replica_state", "gauge",
                    "Replica availability: 1 active, 0.5 catching up, "
                    "0 dark.",
                    labels, state_value,
                ))
                samples.append(Sample(
                    "ides_replica_failures_total", "counter",
                    "Calls this replica failed.",
                    labels, replica.failures,
                ))
                samples.append(Sample(
                    "ides_replica_repairs_total", "counter",
                    "Anti-entropy repairs that converged this replica.",
                    labels, replica.repairs,
                ))
                if top is not None and replica.applied_seq is not None:
                    samples.append(Sample(
                        "ides_replica_seq_lag", "gauge",
                        "Journal entries this replica trails the "
                        "most-applied sibling by.",
                        labels, float(max(0, top - replica.applied_seq)),
                    ))
            return samples

        registry.register_collector(collect)


async def connect_replica_router(
    replica_addresses: Sequence[Sequence],
    handshake: bool = True,
    reprobe_seconds: float = 1.0,
    anti_entropy_seconds: float | None = None,
    **options: object,
) -> ShardedQueryRouter:
    """Build a router whose per-slice client is a :class:`ReplicaGroup`.

    Args:
        replica_addresses: one sequence of addresses per hash slice, in
            shard order — ``replica_addresses[i]`` lists the replicas
            all serving shard ``i`` of ``len(replica_addresses)``.
        handshake: verify the cluster topology before returning (the
            ping reaches each slice's healthiest replica).
        reprobe_seconds: dark-replica read sideline window, forwarded
            to every group.
        anti_entropy_seconds: when set, start every group's background
            digest-exchange repair loop at this interval (see
            :meth:`ReplicaGroup.start_anti_entropy`); None leaves
            repair purely write-gated and operator-triggered.
        **options: forwarded exactly as :func:`connect_router` does —
            client options (``pool_size``, ``timeout``, ``retries``,
            ``retry_backoff``, ``retry_budget``, ``protocol_version``,
            ``max_in_flight``) to the member clients, the rest to the
            router. Passing one
            :class:`~repro.serving.transport.client.RetryBudget`
            instance shares a single token bucket across every member
            client of every group — a cluster-wide cap on retry
            amplification. Member clients are created with
            ``shard_index=None`` so their telemetry is labeled per
            replica address; slice attribution on errors comes from
            the group.
    """
    client_options = {
        key: options.pop(key)
        for key in (
            "pool_size",
            "timeout",
            "retries",
            "retry_backoff",
            "retry_budget",
            "protocol_version",
            "max_in_flight",
        )
        if key in options
    }
    groups = []
    for addresses in replica_addresses:
        clients = [
            RemoteShardClient(*_parse_address(address), **client_options)
            for address in addresses
        ]
        groups.append(
            ReplicaGroup(clients, reprobe_seconds=reprobe_seconds)
        )
    router = ShardedQueryRouter(groups, **options)
    if handshake:
        try:
            await router.handshake()
        except Exception:
            await router.close()
            raise
    if anti_entropy_seconds is not None:
        for group in groups:
            group.start_anti_entropy(anti_entropy_seconds)
    return router
