"""Replica groups: N servers per hash slice, health-aware failover.

A single :class:`~repro.serving.transport.server.ShardServer` per hash
slice makes every slice a single point of failure: one dead process is
a dark partition of the directory until a human restarts it.
:class:`ReplicaGroup` removes that coupling by putting **N replica
servers behind one slice** — every replica runs with the same
``shard_index`` / ``n_shards`` and holds the same hosts (seeded from
the same :mod:`~repro.serving.snapshot` file, kept convergent by the
same refresh stream).

The group duck-types the :class:`RemoteShardClient` surface the
router's scatter-gather dispatch uses (``call`` / ``close`` /
``address`` / ``shard_index`` / ``bind_metrics``), so
:class:`~repro.serving.transport.router.ShardedQueryRouter` routes
over replica groups without changing a line of its query planning —
and failover happens *inside* the sub-query, invisible to the caller:

* **Reads** route to the healthiest replica — lowest health score,
  an EWMA of observed RPC latency (the same feedback idiom as
  :class:`~repro.serving.frontend.AdaptiveBatchPolicy`) scaled by the
  replica's observed pipeline depth. A replica that fails a read is
  marked **dark** and the call retries on the next-best sibling within
  the same scatter-gather round; only when *every* replica of the
  slice is dark does the caller see
  :class:`~repro.exceptions.ShardUnavailableError` (carrying the
  slice's ``shard_index``).
* **Writes** (``put_many`` / ``update_many`` / ``delete`` /
  ``shutdown``) fan out to **all** replicas concurrently — including
  dark ones, because a successful write is exactly how a restarted
  standby rejoins: it re-seeds from the service snapshot at boot, the
  next refresh flush converges it, and the first write it acknowledges
  marks it active again. A write succeeds when at least one replica
  acknowledged it; per-replica misses are counted, never raised.
* **Dark replicas** are sidelined from reads for ``reprobe_seconds``
  (bounding the tail latency a freshly killed server can add), then
  become eligible again behind the active ones. :meth:`probe` —
  the router's health path — contacts every replica and refreshes
  active/dark states in one round.

Everything is observable: replica states, failover counts, per-replica
failure counts and per-replica latency histograms land in the metrics
registry (``ides_replica_*``), and :meth:`replica_health` feeds the
per-replica detail into :class:`~repro.core.diagnostics.ShardHealth`.
"""

from __future__ import annotations

import asyncio
import time
from typing import Sequence

from ...core.diagnostics import ReplicaHealth
from ...exceptions import ShardUnavailableError, ValidationError
from ..observability.metrics import Sample
from .client import RemoteShardClient
from .router import ShardedQueryRouter, _parse_address

__all__ = ["ReplicaGroup", "connect_replica_router"]

#: Operations that mutate shard state (plus ``shutdown``): fanned out
#: to every replica so siblings stay convergent. Everything else is a
#: read and routes to the healthiest replica with sibling failover.
FANOUT_OPS = frozenset({"put_many", "update_many", "delete", "shutdown"})

#: EWMA smoothing factor for the per-replica latency estimate — the
#: same weighting AdaptiveBatchPolicy uses for its dispatch-latency
#: feedback loop.
LATENCY_ALPHA = 0.2


class _Replica:
    """One member of a group: a client plus its health bookkeeping."""

    __slots__ = ("client", "ewma_latency", "state", "dark_since", "failures")

    def __init__(self, client: RemoteShardClient):
        self.client = client
        self.ewma_latency: float | None = None
        self.state = "active"
        self.dark_since = 0.0
        self.failures = 0


class ReplicaGroup:
    """N interchangeable shard servers behind one hash slice.

    Args:
        clients: one :class:`RemoteShardClient` per replica, all
            pointing at servers that run the *same* shard slot.
        shard_index: the slice this group serves (the router assigns it
            positionally, exactly as it does for a bare client).
        reprobe_seconds: how long a dark replica is sidelined from
            reads before it becomes eligible again (writes and
            :meth:`probe` always reach it).
        latency_alpha: EWMA weight for the per-replica latency score.
        clock: injectable monotonic time source (tests advance it
            instead of sleeping).
    """

    def __init__(
        self,
        clients: Sequence[RemoteShardClient],
        shard_index: int | None = None,
        reprobe_seconds: float = 1.0,
        latency_alpha: float = LATENCY_ALPHA,
        clock=time.monotonic,
    ):
        if not clients:
            raise ValidationError("a replica group needs at least one client")
        if not 0.0 < latency_alpha <= 1.0:
            raise ValidationError(
                f"latency_alpha must be in (0, 1], got {latency_alpha}"
            )
        self._replicas = [_Replica(client) for client in clients]
        self._shard_index = shard_index
        self.reprobe_seconds = float(reprobe_seconds)
        self.latency_alpha = float(latency_alpha)
        self._clock = clock
        #: Reads that moved on to a sibling after a replica failed.
        self.failovers = 0
        #: Optional per-replica latency histogram, attached by
        #: :meth:`bind_metrics`; ``None`` keeps the hot path untouched.
        self._replica_seconds = None
        self._latency_children: dict[str, object] = {}

    # ------------------------------------------------------------------ #
    # the RemoteShardClient surface the router dispatches against
    # ------------------------------------------------------------------ #

    @property
    def shard_index(self) -> int | None:
        """The hash slice this group serves."""
        return self._shard_index

    @shard_index.setter
    def shard_index(self, value: int | None) -> None:
        self._shard_index = value
        for replica in self._replicas:
            replica.client.shard_index = value

    @property
    def address(self) -> str:
        """Every replica address, ``|``-joined (health reports)."""
        return "|".join(r.client.address for r in self._replicas)

    @property
    def n_replicas(self) -> int:
        """Replicas in the group (dark ones included)."""
        return len(self._replicas)

    @property
    def clients(self) -> list[RemoteShardClient]:
        """The member clients, in construction order."""
        return [replica.client for replica in self._replicas]

    async def call(self, op, fields=None, arrays=None):
        """One slice RPC: reads fail over, writes fan out.

        The failure contract matches a bare client: live-server errors
        (``ValidationError``, ``ProtocolError``, ``RemoteShardError``)
        raise immediately — a replica answering *wrongly* is not a
        replica that is down — and
        :class:`~repro.exceptions.ShardUnavailableError` surfaces only
        when no replica could serve the call.
        """
        if op in FANOUT_OPS:
            return await self._fanout(op, fields, arrays)
        return await self._read(op, fields, arrays)

    async def close(self) -> None:
        """Close every replica's connection pool."""
        await asyncio.gather(*(r.client.close() for r in self._replicas))

    # ------------------------------------------------------------------ #
    # health scoring and state
    # ------------------------------------------------------------------ #

    def _score(self, replica: _Replica) -> float:
        """Lower is healthier: EWMA latency scaled by pipeline depth.

        An untried replica scores near zero, so fresh capacity is
        probed before a replica with any observed latency.
        """
        latency = replica.ewma_latency or 0.0
        client = replica.client
        capacity = max(1, client.max_in_flight * client.pool_size)
        depth = client.in_flight / capacity
        return latency * (1.0 + depth) + depth * 1e-6

    def _read_candidates(self) -> list[_Replica]:
        """Replicas in try order: active by score, then eligible dark.

        Dark replicas sidelined less than ``reprobe_seconds`` ago are
        skipped (a freshly killed server must not add its connect
        timeout to every unlucky read) — unless no replica is active,
        in which case everything is tried: total sidelining would turn
        a recoverable blip into a guaranteed error.
        """
        now = self._clock()
        active = sorted(
            (r for r in self._replicas if r.state == "active"), key=self._score
        )
        dark = [r for r in self._replicas if r.state == "dark"]
        if active:
            dark = [r for r in dark if now - r.dark_since >= self.reprobe_seconds]
        # Longest-dark first: it has had the most time to come back.
        dark.sort(key=lambda r: r.dark_since)
        return active + dark

    def _mark_dark(self, replica: _Replica) -> None:
        replica.state = "dark"
        replica.dark_since = self._clock()

    def _mark_active(self, replica: _Replica) -> None:
        replica.state = "active"

    def replica_health(self) -> tuple[ReplicaHealth, ...]:
        """Per-replica state for :class:`ShardHealth` (no RPCs)."""
        return tuple(
            ReplicaHealth(
                address=r.client.address,
                state=r.state,
                ewma_latency_ms=(
                    r.ewma_latency * 1000.0
                    if r.ewma_latency is not None
                    else None
                ),
                in_flight=r.client.in_flight,
                failures=r.failures,
            )
            for r in self._replicas
        )

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #

    async def _timed(self, replica: _Replica, op, fields, arrays):
        """One replica RPC, feeding the latency EWMA and histogram."""
        started = time.perf_counter()
        try:
            response = await replica.client.call(op, fields, arrays)
        except ShardUnavailableError:
            replica.failures += 1
            raise
        self._note_latency(replica, time.perf_counter() - started)
        return response

    def _note_latency(self, replica: _Replica, elapsed: float) -> None:
        alpha = self.latency_alpha
        previous = replica.ewma_latency
        replica.ewma_latency = (
            elapsed
            if previous is None
            else (1.0 - alpha) * previous + alpha * elapsed
        )
        if self._replica_seconds is not None:
            address = replica.client.address
            child = self._latency_children.get(address)
            if child is None:
                child = self._latency_children[address] = (
                    self._replica_seconds.labels(
                        shard=self._shard_label(), replica=address
                    )
                )
            child.observe(elapsed)

    async def _read(self, op, fields, arrays):
        """Healthiest-first read with in-call failover to siblings."""
        candidates = self._read_candidates()
        failure: ShardUnavailableError | None = None
        for position, replica in enumerate(candidates):
            try:
                response = await self._timed(replica, op, fields, arrays)
            except ShardUnavailableError as dark:
                self._mark_dark(replica)
                failure = dark
                if position + 1 < len(candidates):
                    self.failovers += 1
                continue
            self._mark_active(replica)
            return response
        detail = f" (last: {failure})" if failure is not None else ""
        raise ShardUnavailableError(
            f"all {len(self._replicas)} replicas of shard "
            f"{self._shard_index} are unreachable{detail}",
            shard_index=self._shard_index,
        )

    async def _fanout(self, op, fields, arrays):
        """Write to every replica; succeed when at least one did.

        Dark replicas are included on purpose: a restarted standby
        re-seeds from the snapshot at boot, and the first write it
        acknowledges here is what marks it active again.
        """
        replicas = list(self._replicas)
        results = await asyncio.gather(
            *(self._timed(r, op, fields, arrays) for r in replicas),
            return_exceptions=True,
        )
        response = None
        hard_failure: BaseException | None = None
        for replica, result in zip(replicas, results):
            if isinstance(result, ShardUnavailableError):
                self._mark_dark(replica)
            elif isinstance(result, BaseException):
                # A live server refused the request (bad write, server
                # bug): not an availability event — the replica stays
                # active, the failure is counted, and it is raised only
                # when no sibling accepted the write.
                replica.failures += 1
                hard_failure = hard_failure or result
            else:
                self._mark_active(replica)
                if response is None:
                    response = result
        if response is not None:
            return response
        if hard_failure is not None:
            raise hard_failure
        raise ShardUnavailableError(
            f"no replica of shard {self._shard_index} accepted {op!r} "
            f"({len(replicas)} tried)",
            shard_index=self._shard_index,
        )

    async def probe(self):
        """Contact *every* replica with a ``health`` RPC.

        Refreshes active/dark states in one concurrent round — the one
        read path that reaches dark replicas unconditionally, so a
        health probe is also how a recovered replica rejoins without
        waiting for a write. Returns the healthiest live replica's
        response; raises :class:`ShardUnavailableError` only when the
        whole group is dark.
        """
        replicas = list(self._replicas)
        results = await asyncio.gather(
            *(self._timed(r, "health", None, None) for r in replicas),
            return_exceptions=True,
        )
        answers: dict[int, object] = {}
        for index, (replica, result) in enumerate(zip(replicas, results)):
            if isinstance(result, ShardUnavailableError):
                self._mark_dark(replica)
            elif isinstance(result, BaseException):
                raise result
            else:
                self._mark_active(replica)
                answers[index] = result
        for replica in self._read_candidates():
            index = self._replicas.index(replica)
            if index in answers:
                return answers[index]
        if not answers:
            raise ShardUnavailableError(
                f"all {len(self._replicas)} replicas of shard "
                f"{self._shard_index} are unreachable",
                shard_index=self._shard_index,
            )
        # Unreachable: every live replica is in answers, and the first
        # read candidate of a group with any live replica is live.
        return next(iter(answers.values()))  # pragma: no cover

    # ------------------------------------------------------------------ #
    # telemetry
    # ------------------------------------------------------------------ #

    def _shard_label(self) -> str:
        return (
            str(self._shard_index)
            if self._shard_index is not None
            else self.address
        )

    def bind_metrics(self, registry) -> None:
        """Expose the group and every member client.

        Per-replica latency lands in ``ides_replica_rpc_seconds``
        (labeled by shard and replica address); replica states,
        failover and per-replica failure counts become scrape-time
        collector samples. Member clients bind their own
        ``ides_client_*`` series as usual.
        """
        self._replica_seconds = registry.histogram(
            "ides_replica_rpc_seconds",
            "Per-replica RPC latency observed by the replica group.",
            labels=("shard", "replica"),
        )
        for replica in self._replicas:
            replica.client.bind_metrics(registry)

        def collect():
            shard = self._shard_label()
            samples = [
                Sample(
                    "ides_replica_failovers_total", "counter",
                    "Reads retried on a sibling after a replica failed.",
                    (("shard", shard),), self.failovers,
                ),
            ]
            for replica in self._replicas:
                labels = (
                    ("shard", shard),
                    ("replica", replica.client.address),
                )
                samples.append(Sample(
                    "ides_replica_state", "gauge",
                    "Replica availability: 1 active, 0 dark.",
                    labels, 1.0 if replica.state == "active" else 0.0,
                ))
                samples.append(Sample(
                    "ides_replica_failures_total", "counter",
                    "Calls this replica failed.",
                    labels, replica.failures,
                ))
            return samples

        registry.register_collector(collect)


async def connect_replica_router(
    replica_addresses: Sequence[Sequence],
    handshake: bool = True,
    reprobe_seconds: float = 1.0,
    **options: object,
) -> ShardedQueryRouter:
    """Build a router whose per-slice client is a :class:`ReplicaGroup`.

    Args:
        replica_addresses: one sequence of addresses per hash slice, in
            shard order — ``replica_addresses[i]`` lists the replicas
            all serving shard ``i`` of ``len(replica_addresses)``.
        handshake: verify the cluster topology before returning (the
            ping reaches each slice's healthiest replica).
        reprobe_seconds: dark-replica read sideline window, forwarded
            to every group.
        **options: forwarded exactly as :func:`connect_router` does —
            client options (``pool_size``, ``timeout``, ``retries``,
            ``retry_backoff``, ``protocol_version``, ``max_in_flight``)
            to the member clients, the rest to the router. Member
            clients are created with ``shard_index=None`` so their
            telemetry is labeled per replica address; slice attribution
            on errors comes from the group.
    """
    client_options = {
        key: options.pop(key)
        for key in (
            "pool_size",
            "timeout",
            "retries",
            "retry_backoff",
            "protocol_version",
            "max_in_flight",
        )
        if key in options
    }
    groups = []
    for addresses in replica_addresses:
        clients = [
            RemoteShardClient(*_parse_address(address), **client_options)
            for address in addresses
        ]
        groups.append(
            ReplicaGroup(clients, reprobe_seconds=reprobe_seconds)
        )
    router = ShardedQueryRouter(groups, **options)
    if handshake:
        try:
            await router.handshake()
        except Exception:
            await router.close()
            raise
    return router
