"""The query engine: batched distance predictions over a vector store.

Every query shape — point, one-to-many, many-to-many, k-nearest —
reduces to gathering the relevant rows of the ``X``/``Y`` matrices and
one dense product ``X[rows] @ Y[cols].T`` (paper Eq. 4). There is
deliberately no per-pair Python loop anywhere on the read path; that
is the entire performance story of the serving layer, quantified by
``benchmarks/bench_serving.py``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import ValidationError
from .store import VectorStore

__all__ = ["QueryEngine"]


class QueryEngine:
    """Stateless-by-data query executor with served-work counters.

    Args:
        store: the :class:`VectorStore` holding host vectors.

    Attributes:
        queries_served: number of engine calls answered.
        pairs_evaluated: total (source, destination) pairs predicted —
            the unit the throughput benchmark reports.
    """

    def __init__(self, store: VectorStore):
        self.store = store
        self.queries_served = 0
        self.pairs_evaluated = 0

    # ------------------------------------------------------------------ #
    # query shapes
    # ------------------------------------------------------------------ #

    def point(self, source_id: object, destination_id: object) -> float:
        """Predicted distance for one (source, destination) pair."""
        source = self.store.get(source_id)
        destination = self.store.get(destination_id)
        self.queries_served += 1
        self.pairs_evaluated += 1
        return float(source.outgoing @ destination.incoming)

    def one_to_many(self, source_id: object, destination_ids: Sequence) -> np.ndarray:
        """Distances from one source to each destination, vectorized."""
        source = self.store.get(source_id)
        _, incoming = self.store.gather(destination_ids)
        self.queries_served += 1
        self.pairs_evaluated += len(destination_ids)
        return incoming @ source.outgoing

    def many_to_one(self, source_ids: Sequence, destination_id: object) -> np.ndarray:
        """Distances from each source to one destination, vectorized."""
        destination = self.store.get(destination_id)
        outgoing, _ = self.store.gather(source_ids)
        self.queries_served += 1
        self.pairs_evaluated += len(source_ids)
        return outgoing @ destination.incoming

    def many_to_many(
        self, source_ids: Sequence, destination_ids: Sequence
    ) -> np.ndarray:
        """The ``(n_src, n_dst)`` prediction block ``X[rows] @ Y[cols].T``."""
        outgoing, _ = self.store.gather(source_ids)
        _, incoming = self.store.gather(destination_ids)
        self.queries_served += 1
        self.pairs_evaluated += len(source_ids) * len(destination_ids)
        return outgoing @ incoming.T

    def k_nearest(
        self,
        source_id: object,
        k: int,
        candidate_ids: Sequence | None = None,
        include_self: bool = False,
    ) -> list[tuple[object, float]]:
        """The ``k`` candidates with the smallest predicted distance.

        Args:
            source_id: querying host.
            k: number of neighbors to return.
            candidate_ids: pool to search; defaults to every stored
                host.
            include_self: keep ``source_id`` itself in the result when
                it appears among the candidates.

        Returns:
            ``[(host_id, predicted_distance), ...]`` sorted ascending.

        Uses ``argpartition`` so the cost is one ``(n, d)`` gather, one
        matrix-vector product and an O(n + k log k) selection — no full
        sort of the candidate pool.
        """
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        if candidate_ids is None:
            candidate_ids = self.store.ids()
        candidates = list(candidate_ids)
        if not include_self:
            candidates = [c for c in candidates if c != source_id]
        if not candidates:
            return []

        source = self.store.get(source_id)
        _, incoming = self.store.gather(candidates)
        distances = incoming @ source.outgoing
        self.queries_served += 1
        self.pairs_evaluated += len(candidates)

        k = min(k, len(candidates))
        top = np.argpartition(distances, k - 1)[:k]
        top = top[np.argsort(distances[top], kind="stable")]
        return [(candidates[int(i)], float(distances[int(i)])) for i in top]

    def reset_counters(self) -> None:
        """Zero the served-work counters (benchmark hygiene)."""
        self.queries_served = 0
        self.pairs_evaluated = 0
