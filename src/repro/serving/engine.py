"""The query engine: batched distance predictions over a vector store.

Every query shape — point, one-to-many, many-to-many, k-nearest —
reduces to gathering the relevant rows of the ``X``/``Y`` matrices and
one dense product ``X[rows] @ Y[cols].T`` (paper Eq. 4). There is
deliberately no per-pair Python loop anywhere on the read path; that
is the entire performance story of the serving layer, quantified by
``benchmarks/bench_serving.py``.

Thread-safety: the engine holds no query state of its own — reads are
as safe as the underlying store's gathers (which lock internally) —
but its served-work counters are mutated from every driver at once
(thread-per-client servers, the asyncio dispatcher, refresh streams,
shard-server RPC handlers), so counter updates serialize on a lock.
In a cross-process deployment each
:class:`~repro.serving.transport.ShardServer` owns a private engine;
the router sums their counters into one health report.
"""

from __future__ import annotations

import threading
from typing import Sequence

import numpy as np

from ..exceptions import ValidationError
from .store import VectorStore

__all__ = ["QueryEngine", "top_k_ascending"]


def top_k_ascending(distances: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` smallest distances, ascending, stable ties.

    One ``argpartition`` plus a stable sort of the winners —
    O(n + k log k), never a full sort. Shared by
    :meth:`QueryEngine.k_nearest` and the shard server's ``nearest``
    RPC so a single-process engine and a routed cluster rank
    identically (the e2e tests compare them element-for-element).
    """
    k = min(int(k), distances.shape[0])
    top = np.argpartition(distances, k - 1)[:k]
    return top[np.argsort(distances[top], kind="stable")]


class QueryEngine:
    """Stateless-by-data query executor with served-work counters.

    Counter updates take a lock: the engine is driven concurrently (a
    thread-per-client server, the asyncio dispatcher, the refresh
    worker's streams), and unsynchronized ``+=`` would silently lose
    increments.

    Args:
        store: the :class:`VectorStore` holding host vectors.
        zero_copy: gather row *views* instead of copies where the
            engine consumes them immediately (one product, result
            owned). Only safe when the store is mutated solely from
            the caller's own event loop — the shard server's
            deployment shape; the thread-shared
            :class:`~repro.serving.service.DistanceService` keeps the
            default.

    Attributes:
        queries_served: number of engine calls answered.
        pairs_evaluated: total (source, destination) pairs predicted —
            the unit the throughput benchmark reports.
    """

    def __init__(self, store: VectorStore, zero_copy: bool = False):
        self.store = store
        self.queries_served = 0
        self.pairs_evaluated = 0
        self._copy = not bool(zero_copy)
        self._counter_lock = threading.Lock()

    def _count(self, pairs: int) -> None:
        with self._counter_lock:
            self.queries_served += 1
            self.pairs_evaluated += pairs

    def bind_metrics(self, registry, component: str = "engine") -> None:
        """Expose the served-work counters through a metrics registry.

        A scrape-time collector over the existing locked counters; the
        query hot path is untouched. ``component`` distinguishes
        co-resident engines (a service's vs an embedded shard's).
        """
        from .observability.metrics import Sample

        label = (("component", component),)

        def collect():
            with self._counter_lock:
                served, pairs = self.queries_served, self.pairs_evaluated
            return [
                Sample("ides_engine_queries_served_total", "counter",
                       "Queries answered by the engine.", label, served),
                Sample("ides_engine_pairs_evaluated_total", "counter",
                       "Host pairs evaluated by the engine.", label, pairs),
            ]

        registry.register_collector(collect)

    # ------------------------------------------------------------------ #
    # query shapes
    # ------------------------------------------------------------------ #

    def point(self, source_id: object, destination_id: object) -> float:
        """Predicted distance for one (source, destination) pair."""
        source = self.store.get(source_id)
        destination = self.store.get(destination_id)
        self._count(1)
        return float(source.outgoing @ destination.incoming)

    def pairs(
        self, source_ids: Sequence, destination_ids: Sequence
    ) -> np.ndarray:
        """Per-pair distances for aligned source/destination sequences.

        ``result[i]`` is the predicted distance ``source_ids[i] ->
        destination_ids[i]``. This is the coalescing primitive of the
        concurrent frontend: a micro-batch of point queries from many
        independent callers becomes two gathers and one row-wise
        product, instead of ``n`` separate :meth:`point` calls.
        """
        if len(source_ids) != len(destination_ids):
            raise ValidationError(
                f"pairs needs aligned sequences, got {len(source_ids)} "
                f"sources and {len(destination_ids)} destinations"
            )
        outgoing, _ = self.store.gather(source_ids, copy=self._copy)
        _, incoming = self.store.gather(destination_ids, copy=self._copy)
        self._count(len(source_ids))
        return np.einsum("ij,ij->i", outgoing, incoming)

    def one_to_many(self, source_id: object, destination_ids: Sequence) -> np.ndarray:
        """Distances from one source to each destination, vectorized."""
        source = self.store.get(source_id)
        _, incoming = self.store.gather(destination_ids, copy=self._copy)
        self._count(len(destination_ids))
        return incoming @ source.outgoing

    def many_to_one(self, source_ids: Sequence, destination_id: object) -> np.ndarray:
        """Distances from each source to one destination, vectorized."""
        destination = self.store.get(destination_id)
        outgoing, _ = self.store.gather(source_ids, copy=self._copy)
        self._count(len(source_ids))
        return outgoing @ destination.incoming

    def many_to_many(
        self, source_ids: Sequence, destination_ids: Sequence
    ) -> np.ndarray:
        """The ``(n_src, n_dst)`` prediction block ``X[rows] @ Y[cols].T``."""
        outgoing, _ = self.store.gather(source_ids, copy=self._copy)
        _, incoming = self.store.gather(destination_ids, copy=self._copy)
        self._count(len(source_ids) * len(destination_ids))
        return outgoing @ incoming.T

    def k_nearest(
        self,
        source_id: object,
        k: int,
        candidate_ids: Sequence | None = None,
        include_self: bool = False,
    ) -> list[tuple[object, float]]:
        """The ``k`` candidates with the smallest predicted distance.

        Args:
            source_id: querying host.
            k: number of neighbors to return.
            candidate_ids: pool to search; defaults to every stored
                host.
            include_self: keep ``source_id`` itself in the result when
                it appears among the candidates.

        Returns:
            ``[(host_id, predicted_distance), ...]`` sorted ascending.

        Uses ``argpartition`` so the cost is one ``(n, d)`` gather, one
        matrix-vector product and an O(n + k log k) selection — no full
        sort of the candidate pool.
        """
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        if candidate_ids is None:
            candidate_ids = self.store.ids()
        candidates = list(candidate_ids)
        if not include_self:
            candidates = [c for c in candidates if c != source_id]
        if not candidates:
            return []

        source = self.store.get(source_id)
        _, incoming = self.store.gather(candidates, copy=self._copy)
        distances = incoming @ source.outgoing
        self._count(len(candidates))

        top = top_k_ascending(distances, k)
        return [(candidates[int(i)], float(distances[int(i)])) for i in top]

    def count_served(self, pairs: int) -> None:
        """Record one query of ``pairs`` pairs answered outside the engine.

        The shard-server RPC handlers use this for vector-carrying
        operations (a router ships a source vector instead of a source
        id, so the dot products happen against the store directly): the
        work still shows up in :class:`ServiceHealth` per-shard
        counters either way.
        """
        self._count(int(pairs))

    def reset_counters(self) -> None:
        """Zero the served-work counters (benchmark hygiene)."""
        with self._counter_lock:
            self.queries_served = 0
            self.pairs_evaluated = 0
