"""Per-shard update journal: the replication tier's convergence ledger.

Every mutating operation a :class:`~repro.serving.transport.ShardServer`
applies (``put_many`` / ``update_many`` / ``delete``) is assigned a
**monotone per-shard sequence number** and recorded as a
:class:`JournalEntry` in a :class:`ShardJournal`. The journal is what
turns replica convergence from a hope into a checkable contract:

* the **high-water mark** (the last applied seq) is surfaced in the
  ``health`` document, so a replica group can see at a glance which
  sibling has applied the most of the shared write stream;
* ``journal_since(seq)`` (a wire RPC) replays the retained entries a
  lagging sibling missed, so a restarted replica catches up by
  re-applying exactly the writes of its dark window;
* :func:`store_digest` hashes a store's full content in an
  order-independent way, so two replicas can prove bit-equality with
  one small RPC instead of shipping slabs.

The journal is two tiers. The **in-memory ring** is always on: a
bounded deque of the most recent ``capacity`` entries, cheap enough to
keep on every write. The **on-disk segment journal** is optional
(``directory=...``): every entry is additionally appended as one JSON
line to the current segment file — single-line ``O_APPEND`` writes are
atomic on Linux (the same idiom as the trace exporter in
:mod:`~repro.serving.observability.tracing`), so a crash can tear at
most the final line, and the tolerant loader skips it. Segments rotate
at ``segment_max_entries`` lines and only the newest ``max_segments``
are retained, so disk use is bounded.

Durability contract (see ``docs/architecture.md``): the journal is a
*catch-up accelerator*, not a write-ahead log. Entries are recorded
after the store mutation succeeds, rings and segment chains are
bounded, and a replay gap is always detectable — ``entries_since``
reports ``truncated=True`` whenever an entry the caller needs has been
evicted, which tells the repairer to fall back to a full re-seed over
the wire. The convergence authority is the digest comparison, never
the journal alone.

Sequence numbers normally advance by one per applied write. A repair
replay may *stamp* an entry with the source's seq (``append(...,
seq=N)``) so that a caught-up replica lands on the same high-water
mark as its sibling; the journal keeps monotonicity by taking
``max(N, high_water + 1)``.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import deque

import numpy as np

from ..exceptions import ValidationError

__all__ = [
    "JOURNAL_OPS",
    "JournalEntry",
    "ShardJournal",
    "apply_entry",
    "store_digest",
]

#: The mutating wire operations a journal records.
JOURNAL_OPS = ("put_many", "update_many", "delete")

#: Default bound on entries returned by one ``entries_since`` call —
#: the per-response chunk size of the ``journal_since`` RPC.
REPLAY_CHUNK = 64

_SEGMENT_PREFIX = "journal-"
_SEGMENT_SUFFIX = ".jsonl"


class JournalEntry:
    """One applied mutation: seq, op, host ids and (for puts) vectors.

    ``outgoing`` / ``incoming`` are ``(len(ids), d)`` float64 arrays
    for ``put_many`` / ``update_many`` and ``None`` for ``delete``.
    Entries are immutable by convention — they are shared with the
    ring, the wire encoder and the disk writer.
    """

    __slots__ = ("seq", "op", "ids", "outgoing", "incoming")

    def __init__(self, seq, op, ids, outgoing=None, incoming=None):
        if op not in JOURNAL_OPS:
            raise ValidationError(
                f"journal op must be one of {JOURNAL_OPS}, got {op!r}"
            )
        self.seq = int(seq)
        self.op = op
        self.ids = list(ids)
        self.outgoing = outgoing
        self.incoming = incoming

    def to_line(self) -> str:
        """One JSON line for the on-disk segment journal.

        Python float ``repr`` round-trips IEEE doubles exactly, so a
        reloaded entry re-applies bit-identically.
        """
        payload = {"seq": self.seq, "op": self.op, "ids": self.ids}
        if self.outgoing is not None:
            payload["outgoing"] = np.asarray(self.outgoing, dtype=np.float64).tolist()
            payload["incoming"] = np.asarray(self.incoming, dtype=np.float64).tolist()
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_line(cls, line: str) -> "JournalEntry | None":
        """Decode one segment line; ``None`` for torn/alien lines."""
        line = line.strip()
        if not line:
            return None
        try:
            payload = json.loads(line)
            outgoing = payload.get("outgoing")
            incoming = payload.get("incoming")
            return cls(
                seq=payload["seq"],
                op=payload["op"],
                ids=payload["ids"],
                outgoing=(
                    None
                    if outgoing is None
                    else np.asarray(outgoing, dtype=np.float64)
                ),
                incoming=(
                    None
                    if incoming is None
                    else np.asarray(incoming, dtype=np.float64)
                ),
            )
        except (ValueError, KeyError, TypeError):
            return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JournalEntry(seq={self.seq}, op={self.op!r}, "
            f"ids={len(self.ids)})"
        )


class ShardJournal:
    """Bounded mutation journal for one shard replica.

    Args:
        capacity: entries retained in the in-memory ring; older entries
            are evicted (and their eviction recorded, so replay gaps
            are detectable).
        directory: optional segment-journal directory. When set, every
            appended entry is also written as one JSON line, existing
            segments are loaded at construction (restoring the
            high-water mark across restarts), and
            :meth:`replay_into` can re-apply the loaded entries to a
            freshly seeded store.
        segment_max_entries: lines per segment file before rotation.
        max_segments: newest segment files retained after rotation.
    """

    def __init__(
        self,
        capacity: int = 4096,
        directory: str | None = None,
        segment_max_entries: int = 1024,
        max_segments: int = 8,
    ):
        if int(capacity) < 1:
            raise ValidationError(f"capacity must be >= 1, got {capacity}")
        if int(segment_max_entries) < 1:
            raise ValidationError(
                f"segment_max_entries must be >= 1, got {segment_max_entries}"
            )
        if int(max_segments) < 1:
            raise ValidationError(
                f"max_segments must be >= 1, got {max_segments}"
            )
        self.capacity = int(capacity)
        self.directory = directory
        self.segment_max_entries = int(segment_max_entries)
        self.max_segments = int(max_segments)
        self._ring: deque[JournalEntry] = deque()
        self._lock = threading.Lock()
        self._high_water = 0
        #: Highest seq ever evicted from the ring (or unrecoverable
        #: from disk at load time): anything at or below it cannot be
        #: replayed from here.
        self._evicted_through = 0
        self.evicted = 0
        self.appended = 0
        self._segment_index = 0
        self._segment_entries = 0
        self._segment_file = None
        #: Entries loaded from disk at construction, in order — the
        #: one-shot payload of :meth:`replay_into`.
        self._boot_entries: list[JournalEntry] = []
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            self._load_segments()

    # ------------------------------------------------------------------ #
    # append / read
    # ------------------------------------------------------------------ #

    @property
    def high_water(self) -> int:
        """The last applied sequence number (0 before any write)."""
        return self._high_water

    @property
    def first_seq(self) -> int:
        """Oldest seq still retained in the ring (0 when empty)."""
        with self._lock:
            return self._ring[0].seq if self._ring else 0

    def __len__(self) -> int:
        return len(self._ring)

    def append(self, op, ids, outgoing=None, incoming=None, seq=None) -> int:
        """Record one applied mutation; returns its sequence number.

        ``seq`` is the optional replay stamp: a repairer re-applying a
        sibling's entry passes the sibling's seq so both replicas land
        on the same high-water mark. Monotonicity always holds — an
        explicit seq at or below the current high water is bumped past
        it.
        """
        if outgoing is not None:
            outgoing = np.asarray(outgoing, dtype=np.float64)
            incoming = np.asarray(incoming, dtype=np.float64)
        with self._lock:
            next_seq = self._high_water + 1
            if seq is not None:
                next_seq = max(int(seq), next_seq)
            entry = JournalEntry(next_seq, op, ids, outgoing, incoming)
            self._high_water = next_seq
            self._ring.append(entry)
            self.appended += 1
            while len(self._ring) > self.capacity:
                evicted = self._ring.popleft()
                self._evicted_through = max(self._evicted_through, evicted.seq)
                self.evicted += 1
            if self.directory is not None:
                self._write_segment_line(entry)
        return entry.seq

    def entries_since(self, seq: int, limit: int | None = None):
        """Retained entries with sequence number above ``seq``.

        Returns ``(entries, truncated)``: up to ``limit`` entries in
        seq order, and whether any entry the caller needs (seq above
        ``seq``) has already been evicted — the signal that replay
        cannot close the gap and a full re-seed is required.
        """
        seq = int(seq)
        if seq < 0:
            raise ValidationError(f"seq must be >= 0, got {seq}")
        if limit is None:
            limit = REPLAY_CHUNK
        if int(limit) < 1:
            raise ValidationError(f"limit must be >= 1, got {limit}")
        with self._lock:
            truncated = seq < self._evicted_through
            entries = [e for e in self._ring if e.seq > seq]
        return entries[: int(limit)], truncated

    def stats(self) -> dict:
        """Counters for health documents and metrics collectors."""
        return {
            "seq": self._high_water,
            "entries": len(self._ring),
            "first_seq": self.first_seq,
            "appended": self.appended,
            "evicted": self.evicted,
            "segments": self._segment_count(),
        }

    # ------------------------------------------------------------------ #
    # boot replay
    # ------------------------------------------------------------------ #

    def replay_into(self, store) -> int:
        """Re-apply the entries loaded from disk to ``store`` (once).

        Entries are applied in seq order; puts are idempotent
        overwrites, so replaying writes the snapshot already contains
        is safe. Returns the number of entries applied and drops the
        boot buffer.
        """
        entries, self._boot_entries = self._boot_entries, []
        for entry in entries:
            apply_entry(store, entry)
        return len(entries)

    # ------------------------------------------------------------------ #
    # disk segments
    # ------------------------------------------------------------------ #

    def _segment_path(self, index: int) -> str:
        return os.path.join(
            self.directory, f"{_SEGMENT_PREFIX}{index:06d}{_SEGMENT_SUFFIX}"
        )

    def _segment_files(self) -> list[str]:
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        return sorted(
            os.path.join(self.directory, name)
            for name in names
            if name.startswith(_SEGMENT_PREFIX)
            and name.endswith(_SEGMENT_SUFFIX)
        )

    def _segment_count(self) -> int:
        if self.directory is None:
            return 0
        return len(self._segment_files())

    def _load_segments(self) -> None:
        """Replay existing segment files: restore seq and boot entries."""
        loaded: list[JournalEntry] = []
        for path in self._segment_files():
            base = os.path.basename(path)
            try:
                index = int(
                    base[len(_SEGMENT_PREFIX): -len(_SEGMENT_SUFFIX)]
                )
            except ValueError:
                continue
            self._segment_index = max(self._segment_index, index)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    lines = handle.readlines()
            except OSError:
                continue
            count = 0
            for line in lines:
                entry = JournalEntry.from_line(line)
                # Skip torn lines and out-of-order leftovers.
                if entry is None or (loaded and entry.seq <= loaded[-1].seq):
                    continue
                loaded.append(entry)
                count += 1
            if index == self._segment_index:
                self._segment_entries = count
        if not loaded:
            return
        self._boot_entries = loaded
        self._high_water = loaded[-1].seq
        # Anything before the first retained line is unrecoverable from
        # this journal (older segments were pruned).
        self._evicted_through = max(0, loaded[0].seq - 1)
        for entry in loaded[-self.capacity:]:
            self._ring.append(entry)
        if len(loaded) > self.capacity:
            self._evicted_through = max(
                self._evicted_through, loaded[-self.capacity - 1].seq
            )

    def _write_segment_line(self, entry: JournalEntry) -> None:
        """One write() per entry: O_APPEND keeps concurrent lines whole."""
        if self._segment_file is None:
            self._segment_file = open(  # noqa: SIM115 - lifetime exceeds scope
                self._segment_path(self._segment_index), "a", encoding="utf-8"
            )
        try:
            self._segment_file.write(entry.to_line() + "\n")
            self._segment_file.flush()
        except OSError:  # pragma: no cover - disk full / revoked path
            return
        self._segment_entries += 1
        if self._segment_entries >= self.segment_max_entries:
            self._rotate_segment()

    def _rotate_segment(self) -> None:
        try:
            self._segment_file.close()
        except OSError:  # pragma: no cover - teardown race
            pass
        self._segment_file = None
        self._segment_index += 1
        self._segment_entries = 0
        files = self._segment_files()
        while len(files) >= self.max_segments:
            oldest = files.pop(0)
            try:
                os.remove(oldest)
            except OSError:  # pragma: no cover - concurrent cleanup
                break

    def close(self) -> None:
        """Close the current segment file handle (if any)."""
        if self._segment_file is not None:
            try:
                self._segment_file.close()
            except OSError:  # pragma: no cover - teardown race
                pass
            self._segment_file = None


# ---------------------------------------------------------------------- #
# replay + digest helpers
# ---------------------------------------------------------------------- #


def apply_entry(store, entry: JournalEntry) -> None:
    """Apply one journal entry to a vector store.

    Puts and updates are both idempotent overwrites through
    ``put_many`` (an ``update_many`` replayed onto a store that never
    saw the original ``put`` must still land); deletes remove each
    listed host.
    """
    if entry.op == "delete":
        for host_id in entry.ids:
            store.delete(host_id)
        return
    store.put_many(entry.ids, entry.outgoing, entry.incoming)


def store_digest(store) -> str:
    """Order-independent sha256 over a store's full content.

    Two replicas of one slice hold the same hosts with the same
    float64 vectors exactly when their digests match — host insertion
    order (which legitimately differs across replicas) is normalized
    away by sorting on ``repr(host_id)``.
    """
    ids, outgoing, incoming = store.export()
    order = sorted(range(len(ids)), key=lambda row: repr(ids[row]))
    digest = hashlib.sha256()
    digest.update(str(store.dimension).encode())
    for row in order:
        digest.update(repr(ids[row]).encode())
        digest.update(b"\x00")
        digest.update(np.ascontiguousarray(outgoing[row], dtype="<f8").tobytes())
        digest.update(np.ascontiguousarray(incoming[row], dtype="<f8").tobytes())
    return digest.hexdigest()
