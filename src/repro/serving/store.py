"""Vector stores: the directory layer of the query service.

A :class:`VectorStore` maps host identifiers to their ``(outgoing,
incoming)`` model vectors with O(1) lookup, and — crucially for the
query engine — gathers many hosts' vectors into dense ``(n, d)``
matrices in one shot so that every query becomes a NumPy batch
operation instead of a per-pair Python loop.

Two backends:

* :class:`InMemoryVectorStore` keeps all vectors in two growable
  arrays with a free-slot list, so registration, eviction and bulk
  gather stay amortized O(1) per host.
* :class:`ShardedVectorStore` hash-partitions identifiers across many
  in-memory shards — the single-process rehearsal of the scale-out
  directory the IDES paper sketches in Section 5.1.

Both backends are thread-safe: a background refresh worker can bulk
``put_many`` new vectors while the query path gathers, without torn
row maps (each in-memory shard serializes access with an RLock).
"""

from __future__ import annotations

import threading
import zlib
from abc import ABC, abstractmethod
from typing import Iterator, Sequence

import numpy as np

from .._validation import check_dimension
from ..exceptions import ValidationError
from ..ides.vectors import HostVectors

__all__ = [
    "VectorStore",
    "InMemoryVectorStore",
    "ShardedVectorStore",
    "shard_of",
    "group_by_shard",
]


def shard_of(host_id: object, n_shards: int) -> int:
    """Stable shard assignment for a host identifier.

    Uses CRC-32 of the identifier's string form rather than Python's
    builtin ``hash`` so that the same identifier lands on the same
    shard across processes and snapshot reloads — the invariant the
    cross-process transport (:mod:`repro.serving.transport`) relies on
    to route requests without a directory lookup.
    """
    return zlib.crc32(repr(host_id).encode("utf-8")) % n_shards


def group_by_shard(host_ids: Sequence, n_shards: int) -> dict[int, np.ndarray]:
    """Positions of ``host_ids`` grouped by their ``shard_of`` shard.

    The scatter primitive shared by :class:`ShardedVectorStore` (which
    gathers once per in-process shard) and the cross-process
    :class:`~repro.serving.transport.ShardedQueryRouter` (which turns
    each group into one RPC): ``result[shard] -> array of positions``,
    so results can be written back into request order.
    """
    assignments = np.fromiter(
        (shard_of(host_id, n_shards) for host_id in host_ids),
        dtype=int,
        count=len(host_ids),
    )
    return {
        int(shard_index): np.flatnonzero(assignments == shard_index)
        for shard_index in np.unique(assignments)
    }


class VectorStore(ABC):
    """Directory of host vectors behind the query engine."""

    @property
    @abstractmethod
    def dimension(self) -> int:
        """Model dimension ``d`` of every stored vector."""

    @abstractmethod
    def put(self, host_id: object, vectors: HostVectors) -> None:
        """Insert or overwrite one host's vectors."""

    @abstractmethod
    def put_many(
        self, host_ids: Sequence, outgoing: np.ndarray, incoming: np.ndarray
    ) -> None:
        """Insert or overwrite many hosts from ``(n, d)`` matrices."""

    @abstractmethod
    def get(self, host_id: object) -> HostVectors:
        """Fetch one host's vectors; raises for unknown hosts."""

    @abstractmethod
    def delete(self, host_id: object) -> bool:
        """Remove a host; returns whether it was present."""

    @abstractmethod
    def gather(
        self, host_ids: Sequence, copy: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stack the hosts' vectors into ``(n, d)`` ``(X, Y)`` matrices,
        in request order.

        ``copy=False`` permits (but does not require) the result to be
        a *view* of the store's backing arrays — the zero-copy fast
        path for readers that consume the rows before the store can be
        mutated again (the shard server's socket path). Callers that
        hold results across writes, or share the store with writer
        threads, must keep the default."""

    @abstractmethod
    def export(self) -> tuple[list, np.ndarray, np.ndarray]:
        """``(ids, X, Y)`` for every stored host (bulk snapshot)."""

    @abstractmethod
    def ids(self) -> list:
        """All stored identifiers."""

    @abstractmethod
    def __contains__(self, host_id: object) -> bool: ...

    @abstractmethod
    def __len__(self) -> int: ...

    def __iter__(self) -> Iterator:
        return iter(self.ids())

    def _check_vectors(self, vectors: HostVectors) -> None:
        if vectors.dimension != self.dimension:
            raise ValidationError(
                f"vectors have dimension {vectors.dimension}, store uses "
                f"{self.dimension}"
            )


class InMemoryVectorStore(VectorStore):
    """Array-backed store with O(1) lookup and vectorized gather.

    Vectors live in two ``(capacity, d)`` arrays that double on demand;
    a dict maps identifiers to rows and deleted rows go on a free list
    for reuse, so long-running register/evict churn does not leak
    capacity.

    Args:
        dimension: model dimension ``d``.
        initial_capacity: starting number of vector slots.
    """

    def __init__(self, dimension: int, initial_capacity: int = 64):
        self._dimension = check_dimension(dimension)
        capacity = max(1, int(initial_capacity))
        self._outgoing = np.zeros((capacity, self._dimension))
        self._incoming = np.zeros((capacity, self._dimension))
        self._row_of: dict[object, int] = {}
        self._id_of_row: dict[int, object] = {}
        self._free: list[int] = list(range(capacity - 1, -1, -1))
        self._lock = threading.RLock()

    @property
    def dimension(self) -> int:
        return self._dimension

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #

    def _claim_row(self, host_id: object) -> int:
        row = self._row_of.get(host_id)
        if row is not None:
            return row
        if not self._free:
            self._grow()
        row = self._free.pop()
        self._row_of[host_id] = row
        self._id_of_row[row] = host_id
        return row

    def _grow(self) -> None:
        old = self._outgoing.shape[0]
        new = max(1, old * 2)
        grown_out = np.zeros((new, self._dimension))
        grown_in = np.zeros((new, self._dimension))
        grown_out[:old] = self._outgoing
        grown_in[:old] = self._incoming
        self._outgoing = grown_out
        self._incoming = grown_in
        self._free.extend(range(new - 1, old - 1, -1))

    def put(self, host_id: object, vectors: HostVectors) -> None:
        self._check_vectors(vectors)
        with self._lock:
            row = self._claim_row(host_id)
            self._outgoing[row] = vectors.outgoing
            self._incoming[row] = vectors.incoming

    def put_many(
        self, host_ids: Sequence, outgoing: np.ndarray, incoming: np.ndarray
    ) -> None:
        outgoing = np.asarray(outgoing, dtype=float)
        incoming = np.asarray(incoming, dtype=float)
        expected = (len(host_ids), self._dimension)
        if outgoing.shape != expected or incoming.shape != expected:
            raise ValidationError(
                f"put_many expects matrices of shape {expected}, got "
                f"{outgoing.shape} and {incoming.shape}"
            )
        with self._lock:
            rows = np.fromiter(
                (self._claim_row(host_id) for host_id in host_ids),
                dtype=int,
                count=len(host_ids),
            )
            self._outgoing[rows] = outgoing
            self._incoming[rows] = incoming

    def delete(self, host_id: object) -> bool:
        with self._lock:
            row = self._row_of.pop(host_id, None)
            if row is None:
                return False
            del self._id_of_row[row]
            self._free.append(row)
            return True

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    def get(self, host_id: object) -> HostVectors:
        with self._lock:
            try:
                row = self._row_of[host_id]
            except KeyError:
                raise ValidationError(f"unknown host {host_id!r}") from None
            return HostVectors(
                outgoing=self._outgoing[row].copy(),
                incoming=self._incoming[row].copy(),
            )

    def rows_for(self, host_ids: Sequence) -> np.ndarray:
        """Internal row indices for the given hosts (request order)."""
        try:
            return np.fromiter(
                (self._row_of[host_id] for host_id in host_ids),
                dtype=int,
                count=len(host_ids),
            )
        except KeyError as missing:
            raise ValidationError(f"unknown host {missing.args[0]!r}") from None

    def gather(
        self, host_ids: Sequence, copy: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        with self._lock:
            rows = self.rows_for(host_ids)
            if not copy and rows.size:
                # Contiguous ascending slab (the common case after bulk
                # seeding): slice views instead of fancy-index copies,
                # so the rows can flow to a socket with zero copies.
                start = int(rows[0])
                stop = start + rows.size
                if stop <= self._outgoing.shape[0] and np.array_equal(
                    rows, np.arange(start, stop)
                ):
                    return self._outgoing[start:stop], self._incoming[start:stop]
            return self._outgoing[rows], self._incoming[rows]

    def export(self) -> tuple[list, np.ndarray, np.ndarray]:
        with self._lock:
            identifiers = self.ids()
            if not identifiers:
                empty = np.zeros((0, self._dimension))
                return [], empty, empty.copy()
            outgoing, incoming = self.gather(identifiers)
            return identifiers, outgoing, incoming

    def ids(self) -> list:
        with self._lock:
            return list(self._row_of)

    def __contains__(self, host_id: object) -> bool:
        return host_id in self._row_of

    def __len__(self) -> int:
        return len(self._row_of)

    @property
    def capacity(self) -> int:
        """Allocated vector slots (grows geometrically)."""
        return self._outgoing.shape[0]


class ShardedVectorStore(VectorStore):
    """Hash-partitioned store: identifiers spread over N shards.

    Single-item operations route to ``shard_of(host_id)``; bulk gathers
    group the request by shard, gather once per shard, and scatter the
    results back into request order, so batched queries stay vectorized
    end to end.

    Args:
        dimension: model dimension ``d``.
        n_shards: number of hash shards.
        initial_capacity: per-shard starting capacity.
    """

    def __init__(self, dimension: int, n_shards: int = 8, initial_capacity: int = 64):
        self._dimension = check_dimension(dimension)
        if int(n_shards) < 1:
            raise ValidationError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = int(n_shards)
        self.shards = [
            InMemoryVectorStore(dimension, initial_capacity=initial_capacity)
            for _ in range(self.n_shards)
        ]

    @property
    def dimension(self) -> int:
        return self._dimension

    def shard_for(self, host_id: object) -> InMemoryVectorStore:
        """The shard responsible for ``host_id``."""
        return self.shards[shard_of(host_id, self.n_shards)]

    def put(self, host_id: object, vectors: HostVectors) -> None:
        self._check_vectors(vectors)
        self.shard_for(host_id).put(host_id, vectors)

    def put_many(
        self, host_ids: Sequence, outgoing: np.ndarray, incoming: np.ndarray
    ) -> None:
        outgoing = np.asarray(outgoing, dtype=float)
        incoming = np.asarray(incoming, dtype=float)
        expected = (len(host_ids), self._dimension)
        if outgoing.shape != expected or incoming.shape != expected:
            raise ValidationError(
                f"put_many expects matrices of shape {expected}, got "
                f"{outgoing.shape} and {incoming.shape}"
            )
        for shard_index, positions in self._group_by_shard(host_ids).items():
            self.shards[shard_index].put_many(
                [host_ids[p] for p in positions],
                outgoing[positions],
                incoming[positions],
            )

    def get(self, host_id: object) -> HostVectors:
        return self.shard_for(host_id).get(host_id)

    def delete(self, host_id: object) -> bool:
        return self.shard_for(host_id).delete(host_id)

    def gather(
        self, host_ids: Sequence, copy: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        # The scatter back into request order always materializes new
        # matrices, so ``copy`` has no view to offer here.
        count = len(host_ids)
        outgoing = np.empty((count, self._dimension))
        incoming = np.empty((count, self._dimension))
        for shard_index, positions in self._group_by_shard(host_ids).items():
            shard_out, shard_in = self.shards[shard_index].gather(
                [host_ids[p] for p in positions]
            )
            outgoing[positions] = shard_out
            incoming[positions] = shard_in
        return outgoing, incoming

    def _group_by_shard(self, host_ids: Sequence) -> dict[int, np.ndarray]:
        return group_by_shard(host_ids, self.n_shards)

    def export(self) -> tuple[list, np.ndarray, np.ndarray]:
        identifiers: list = []
        blocks_out: list[np.ndarray] = []
        blocks_in: list[np.ndarray] = []
        for shard in self.shards:
            shard_ids, shard_out, shard_in = shard.export()
            identifiers.extend(shard_ids)
            blocks_out.append(shard_out)
            blocks_in.append(shard_in)
        if not identifiers:
            empty = np.zeros((0, self._dimension))
            return [], empty, empty.copy()
        return identifiers, np.vstack(blocks_out), np.vstack(blocks_in)

    def ids(self) -> list:
        collected: list = []
        for shard in self.shards:
            collected.extend(shard.ids())
        return collected

    def occupancy(self) -> list[int]:
        """Number of hosts on each shard (load-balance diagnostic)."""
        return [len(shard) for shard in self.shards]

    def __contains__(self, host_id: object) -> bool:
        return host_id in self.shard_for(host_id)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)
