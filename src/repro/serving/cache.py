"""Prediction cache: LRU + TTL memoization of point queries.

Distance queries in a deployed estimator are heavily skewed — a CDN
redirector asks about the same few thousand client/mirror pairs over
and over — so a small LRU in front of the engine absorbs most of the
read load. Entries can also age out (TTL) because predictions drift as
vectors are refreshed, and a vector update invalidates every cached
pair touching that host (a reverse index keys pairs by host, so the
invalidation is exact, not a scan) so the cache never serves stale
coordinates.

Admission control: pure LRU pays an insert (and an eviction) for
every miss, which under *uniform* traffic is pure overhead — one-hit
wonders churn the cache without ever being read back. The optional
**doorkeeper** (TinyLFU-style frequency gate, off by default) makes a
pair earn residency: offers of a non-resident pair are tallied in an
**aging frequency sketch** — a map from 64-bit key *hashes* (cheap
ints, Bloom-filter-style collision semantics) to small saturating
counters — and the pair is admitted once its sketch count shows a
prior sighting. Every ``doorkeeper_capacity`` recorded sightings the
sketch *halves* all counters (the classic TinyLFU age), so a stale
one-hit sighting cannot admit forever while a genuinely hot pair's
accumulated count survives the reset. Because admission no longer
*consumes* the sighting (the recency-set behavior this replaced), the
sketch is TTL-aware: a hot pair whose entry lapses re-enters on its
first re-offer instead of paying the two-offer tax again. Skewed
traffic — the workload caches exist for — passes the gate almost
immediately, while uniform traffic stops paying for insertions it
will never use. Admission outcomes are counted
(``admitted``/``rejected`` in :class:`CacheStats`, along with the
sketch's ``doorkeeper_entries``/``doorkeeper_resets``) and surfaced
in ``ServiceHealth``.

Thread-safety and invariants: every lookup, insert and invalidation
serializes on one internal lock, so a background refresh worker can
invalidate hosts while query threads read. The cache itself is
last-writer-wins and does not know about vector epochs — writers that
compute values *outside* the lock must publish through
:meth:`DistanceService.cache_put_if_current` (or the router's
equivalent), which re-checks the service write epoch so a value
computed from pre-refresh vectors can never overwrite a refresh's
invalidation. Time comes from an injectable ``clock`` (monotonic) so
TTL tests advance time instead of sleeping.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable

from ..exceptions import ValidationError

__all__ = ["CacheStats", "PredictionCache", "StalePrediction"]

_MISSING = object()


class StalePrediction(float):
    """A prediction served past its TTL during brownout.

    A plain ``float`` everywhere it matters (arithmetic, numpy,
    futures), plus a ``stale`` marker so callers can tell a degraded
    answer from a fresh one with ``getattr(value, "stale", False)``.
    """

    __slots__ = ()

    stale = True


@dataclass(frozen=True)
class CacheStats:
    """Counters describing cache effectiveness.

    Attributes:
        hits / misses: lookup outcomes since creation (or last reset).
        evictions: entries dropped by LRU capacity pressure.
        expirations: entries whose TTL lapsed (counted once per entry,
            on its first expired read; the entry itself stays resident
            as brownout stock for ``get_stale``).
        invalidations: entries dropped by per-host invalidation.
        size / max_entries: current and maximum occupancy.
        admitted: inserts accepted (equals every insert offer when no
            doorkeeper is configured).
        rejected: insert offers the doorkeeper turned away (no prior
            sighting of the non-resident pair in the sketch).
        doorkeeper_entries: key hashes with a live (nonzero) counter in
            the admission sketch.
        doorkeeper_resets: times the sketch aged (halved all counters)
            after a full sighting window.
    """

    hits: int
    misses: int
    evictions: int
    expirations: int
    invalidations: int
    size: int
    max_entries: int
    admitted: int = 0
    rejected: int = 0
    doorkeeper_entries: int = 0
    doorkeeper_resets: int = 0
    stale_reads: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when never queried)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    @property
    def admission_rate(self) -> float:
        """Admitted over insert offers (1.0 when never offered)."""
        offers = self.admitted + self.rejected
        return self.admitted / offers if offers else 1.0

    def __str__(self) -> str:
        doorkeeper = (
            f" admitted={self.admitted} rejected={self.rejected} "
            f"sketch={self.doorkeeper_entries} "
            f"sketch_resets={self.doorkeeper_resets}"
            if self.rejected
            else ""
        )
        return (
            f"hits={self.hits} misses={self.misses} "
            f"hit_rate={self.hit_rate:.3f} size={self.size}/{self.max_entries} "
            f"evictions={self.evictions} expirations={self.expirations} "
            f"invalidations={self.invalidations}{doorkeeper}"
        )


class PredictionCache:
    """LRU + TTL cache of ``(source, destination) -> distance``.

    Thread-safe: lookups, inserts and invalidations serialize on an
    internal lock, so a background refresh worker can invalidate hosts
    while the query path reads.

    Args:
        max_entries: LRU capacity.
        ttl: entry lifetime in seconds, or None for no expiry.
        clock: monotonic time source (injectable so TTL tests advance
            time instead of sleeping).
        admission: ``"none"`` (every insert lands, the historical
            behavior) or ``"doorkeeper"`` — a non-resident pair must
            show a prior sighting in the aging frequency sketch to
            earn residency, so uniform one-hit traffic stops churning
            the LRU while hot-but-expired pairs re-enter immediately.
        doorkeeper_capacity: recorded sightings per aging window;
            when the window fills, every sketch counter is halved
            (counters that reach zero are dropped). Defaults to
            ``4 * max_entries``.
    """

    #: Sketch counters saturate here (4-bit TinyLFU semantics): enough
    #: to survive several halvings, small enough to age out eventually.
    _SKETCH_MAX_COUNT = 15

    def __init__(
        self,
        max_entries: int = 65536,
        ttl: float | None = None,
        clock=time.monotonic,
        admission: str = "none",
        doorkeeper_capacity: int | None = None,
    ):
        if int(max_entries) < 1:
            raise ValidationError(f"max_entries must be >= 1, got {max_entries}")
        if ttl is not None and not ttl > 0:
            raise ValidationError(f"ttl must be > 0 or None, got {ttl}")
        if admission not in ("none", "doorkeeper"):
            raise ValidationError(
                f"admission must be 'none' or 'doorkeeper', got {admission!r}"
            )
        if doorkeeper_capacity is not None and int(doorkeeper_capacity) < 1:
            raise ValidationError(
                f"doorkeeper_capacity must be >= 1, got {doorkeeper_capacity}"
            )
        self.max_entries = int(max_entries)
        self.ttl = None if ttl is None else float(ttl)
        self.admission = admission
        self.doorkeeper_capacity = (
            4 * self.max_entries
            if doorkeeper_capacity is None
            else int(doorkeeper_capacity)
        )
        self._clock = clock
        self._lock = threading.RLock()
        # key -> (value, expires_at, expiry_counted). Expired entries
        # stay resident (brownout stock for get_stale); the third slot
        # keeps the expirations counter at one count per lapse.
        self._entries: OrderedDict[tuple, tuple[float, float | None, bool]] = (
            OrderedDict()
        )
        self._keys_by_host: dict[object, set[tuple]] = {}
        # The admission sketch maps 64-bit key *hashes* — not the key
        # tuples themselves — to small saturating counters.
        # Bloom-filter-style: a hash collision admits a pair one offer
        # early (harmless for an admission heuristic), and the sketch
        # costs small ints instead of pinning tuples and host-id
        # objects. ``_doorkeeper_window`` counts recorded sightings
        # since the last aging pass.
        self._doorkeeper: dict[int, int] = {}
        self._doorkeeper_window = 0
        self._doorkeeper_resets = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0
        self._invalidations = 0
        self._admitted = 0
        self._rejected = 0
        self._stale_reads = 0

    # ------------------------------------------------------------------ #
    # lookups and inserts
    # ------------------------------------------------------------------ #

    def get(self, source_id: object, destination_id: object) -> float | None:
        """Cached prediction for the pair, or None on miss/expiry.

        An expired entry is a miss but is *not* dropped: it lingers as
        brownout stock for :meth:`get_stale` until LRU pressure, a
        refresh (:meth:`put`), or invalidation reclaims it. The
        ``expirations`` counter still counts each entry's lapse exactly
        once (on the first expired read), not once per read.
        """
        key = (source_id, destination_id)
        with self._lock:
            entry = self._entries.get(key, _MISSING)
            if entry is _MISSING:
                self._misses += 1
                return None
            value, expires_at, expiry_counted = entry
            if expires_at is not None and self._clock() >= expires_at:
                if not expiry_counted:
                    self._entries[key] = (value, expires_at, True)
                    self._expirations += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def get_stale(
        self, source_id: object, destination_id: object
    ) -> float | None:
        """The pair's entry even past its TTL — the brownout read path.

        Unlike :meth:`get` this never perturbs LRU order, the hit/miss
        counters, or the expiry accounting — a pure peek at whatever
        is resident. Returns a :class:`StalePrediction` when
        the entry has expired, the plain value when it is still fresh,
        and None only when the pair was never cached (or was evicted /
        invalidated — invalidation means the vectors *changed*, and a
        changed-vector answer is wrong, not stale).
        """
        key = (source_id, destination_id)
        with self._lock:
            entry = self._entries.get(key, _MISSING)
            if entry is _MISSING:
                return None
            value, expires_at, _expiry_counted = entry
            self._stale_reads += 1
            if expires_at is not None and self._clock() >= expires_at:
                return StalePrediction(value)
            return value

    def put(self, source_id: object, destination_id: object, value: float) -> None:
        """Offer the pair's prediction for insertion (or refresh it).

        With the doorkeeper enabled, a non-resident pair's first offer
        is only remembered, not stored; see the class docstring.
        """
        key = (source_id, destination_id)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            else:
                if self.admission == "doorkeeper" and not self._admit(key):
                    return
                if len(self._entries) >= self.max_entries:
                    evicted, _ = self._entries.popitem(last=False)
                    self._unlink(evicted)
                    self._evictions += 1
            self._admitted += 1
            expires_at = None if self.ttl is None else self._clock() + self.ttl
            self._entries[key] = (float(value), expires_at, False)
            for host_id in key:
                self._keys_by_host.setdefault(host_id, set()).add(key)

    def _admit(self, key: tuple) -> bool:
        """Frequency gate: any surviving prior sighting admits.

        Every offer bumps the key's sketch counter (saturating), so —
        unlike the recency set this replaced — admission does not erase
        the pair's history: when a hot entry's TTL lapses and it is
        re-offered, its accumulated count re-admits it on the first
        offer. Aging halves all counters once the sighting window
        fills, so one-hit wonders decay back to zero.
        """
        sighting = hash(key)
        count = self._doorkeeper.get(sighting, 0)
        if count < self._SKETCH_MAX_COUNT:
            self._doorkeeper[sighting] = count + 1
        self._doorkeeper_window += 1
        if self._doorkeeper_window >= self.doorkeeper_capacity:
            self._age_doorkeeper()
        if count >= 1:
            return True
        self._rejected += 1
        return False

    def _age_doorkeeper(self) -> None:
        """Halve every sketch counter (the classic TinyLFU reset)."""
        self._doorkeeper = {
            sighting: count >> 1
            for sighting, count in self._doorkeeper.items()
            if count >= 2
        }
        self._doorkeeper_window = 0
        self._doorkeeper_resets += 1

    # ------------------------------------------------------------------ #
    # invalidation
    # ------------------------------------------------------------------ #

    def invalidate_host(self, host_id: object) -> int:
        """Drop every cached pair involving ``host_id``.

        Called when the host's vectors change (re-registration, online
        update) or the host is evicted. Returns the number of entries
        dropped.
        """
        with self._lock:
            keys = self._keys_by_host.pop(host_id, None)
            if not keys:
                return 0
            dropped = 0
            for key in list(keys):
                if key in self._entries:
                    self._drop(key)
                    dropped += 1
            self._invalidations += dropped
            return dropped

    def invalidate_hosts(self, host_ids: Iterable) -> int:
        """Bulk per-host invalidation in one lock acquisition.

        The refresh worker's flush path: after a bulk vector update,
        every cached pair touching any refreshed host must go. Returns
        the total number of entries dropped.
        """
        with self._lock:
            return sum(self.invalidate_host(host_id) for host_id in host_ids)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._invalidations += len(self._entries)
            self._entries.clear()
            self._keys_by_host.clear()
            self._doorkeeper.clear()
            self._doorkeeper_window = 0

    def _drop(self, key: tuple) -> None:
        self._entries.pop(key, None)
        self._unlink(key)

    def _unlink(self, key: tuple) -> None:
        for host_id in key:
            bucket = self._keys_by_host.get(host_id)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._keys_by_host[host_id]

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def bind_metrics(self, registry, component: str = "cache") -> None:
        """Expose this cache's counters through a metrics registry.

        Registers a scrape-time collector over :meth:`stats` — the
        admission/eviction hot paths stay untouched. ``component``
        labels the series so a router cache and a service cache can
        coexist in one registry.
        """
        from .observability.metrics import Sample

        label = (("component", component),)
        counters = (
            ("hits", "Cache hits."),
            ("misses", "Cache misses."),
            ("evictions", "LRU evictions."),
            ("expirations", "TTL expirations."),
            ("invalidations", "Entries dropped by host invalidation."),
            ("admitted", "Entries admitted by the admission policy."),
            ("rejected", "Entries rejected by the admission policy."),
        )
        gauges = (
            ("size", "Entries currently cached."),
            ("max_entries", "Configured capacity."),
            ("doorkeeper_entries", "Keys tracked by the doorkeeper."),
        )

        def collect():
            stats = self.stats()
            samples = [
                Sample(f"ides_cache_{name}_total", "counter", help_text,
                       label, getattr(stats, name))
                for name, help_text in counters
            ]
            samples.extend(
                Sample(f"ides_cache_{name}", "gauge", help_text,
                       label, getattr(stats, name))
                for name, help_text in gauges
            )
            return samples

        registry.register_collector(collect)

    def stats(self) -> CacheStats:
        """Snapshot of the cache counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                expirations=self._expirations,
                invalidations=self._invalidations,
                size=len(self._entries),
                max_entries=self.max_entries,
                admitted=self._admitted,
                rejected=self._rejected,
                doorkeeper_entries=len(self._doorkeeper),
                doorkeeper_resets=self._doorkeeper_resets,
                stale_reads=self._stale_reads,
            )

    def reset_counters(self) -> None:
        """Zero hit/miss/eviction counters (entries are kept)."""
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0
        self._invalidations = 0
        self._admitted = 0
        self._rejected = 0
        self._doorkeeper_resets = 0
        self._stale_reads = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries
