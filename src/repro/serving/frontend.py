"""Concurrent serving frontend: micro-batched asyncio query dispatch.

:class:`AsyncDistanceFrontend` is the concurrency tier of the serving
stack. Many client coroutines submit point, one-to-many, pairs and
k-nearest queries; a single dispatcher coroutine coalesces everything
submitted in the same event-loop window into dense
:class:`~repro.serving.engine.QueryEngine` batches and fans the
results back to the awaiting callers.

The dispatch policy is *drain-then-dispatch*: when work arrives, the
dispatcher yields to the event loop exactly once — so every runnable
client gets to enqueue its request — then cuts a batch of up to
``max_batch`` requests and executes it immediately. It never idles
waiting for a fuller batch while callers are blocked on it; the
optional ``max_wait_ms`` only applies when a batch is still smaller
than ``min_batch`` (by default it is not used at all). Under 64+
concurrent clients this turns thousands of individual point queries
per second into a few dense einsum batches per event-loop cycle —
``benchmarks/bench_frontend.py`` quantifies the gap against per-query
dispatch.

On top of that, the hold-the-batch-open window is **pluggable**: pass
a *batch policy* (``policy=``) and the dispatcher asks it, after each
drain pass, how long to keep collecting before cutting the batch.
:class:`FixedWindowPolicy` reproduces a hand-tuned constant window;
:class:`AdaptiveBatchPolicy` is a feedback controller that tunes the
window from EWMAs of observed dispatch latency and arrival rate — it
holds batches open just long enough to amortize an expensive (e.g.
cross-shard) dispatch when traffic is bursty, and collapses to
zero-wait drain-then-dispatch when traffic is steady or light.
``benchmarks/bench_frontend.py`` gates that the adaptive controller
matches or beats the best fixed window on both load shapes. The
controller's current window and its EWMAs are observable through
:class:`FrontendStats`.

Failure isolation: a batch containing an unknown host does not poison
its neighbors — the dispatcher retries that batch per-request so only
the offending futures receive the exception.

Backends: the frontend dispatches into either a local synchronous
:class:`~repro.serving.service.DistanceService` (engine calls execute
inline on the event loop) or any *async backend* exposing coroutine
``point`` / ``pairs`` / ``one_to_many`` / ``k_nearest`` methods plus
the epoch-guarded cache surface (``cache``, ``write_epoch``,
``cache_put_if_current``, ``cache_put_many_if_current``) — in
practice the cross-process
:class:`~repro.serving.transport.ShardedQueryRouter`, whose
scatter-gather then overlaps network I/O across shards *within* each
coalesced batch. Client-facing semantics are identical either way.

Thread-safety contract: the frontend itself is single-loop — every
``submit``/``query`` must come from the event loop that ran
:meth:`AsyncDistanceFrontend.start`. Concurrency with refresh threads
is delegated to the backend (the service's internal locks, or the
router's single-loop discipline plus :class:`ShardReplicator`).
"""

from __future__ import annotations

import asyncio
import inspect
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import (
    DeadlineExceededError,
    OverloadedError,
    ReproError,
    ValidationError,
)
from .cache import PredictionCache
from .observability.metrics import Sample
from .observability.tracing import current_context, get_tracer
from .service import DistanceService

__all__ = [
    "AdaptiveBatchPolicy",
    "AsyncDistanceFrontend",
    "FixedWindowPolicy",
    "FrontendStats",
    "ConcurrencyReport",
    "PolicyReport",
    "SimulatedDispatchBackend",
    "measure_batching_policy",
    "measure_concurrent_throughput",
    "measure_per_query_throughput",
]

_POINT = 0
_PAIRS = 1
_FANOUT = 2
_NEAREST = 3


class _ServiceBackend:
    """Adapts a synchronous :class:`DistanceService` to the async
    backend protocol the dispatcher speaks.

    The coroutine wrappers never actually await — engine batches run
    inline on the event loop exactly as before this abstraction
    existed — so the sync path pays one coroutine frame per call and
    nothing else.
    """

    def __init__(self, service: DistanceService):
        self.service = service

    @property
    def cache(self):
        return self.service.cache

    @property
    def write_epoch(self) -> int:
        return self.service.write_epoch

    def cache_put_if_current(self, epoch, source_id, destination_id, value):
        return self.service.cache_put_if_current(
            epoch, source_id, destination_id, value
        )

    def cache_put_many_if_current(self, epoch, entries):
        return self.service.cache_put_many_if_current(epoch, entries)

    async def point(self, source_id, destination_id):
        return self.service.engine.point(source_id, destination_id)

    async def pairs(self, source_ids, destination_ids):
        return self.service.engine.pairs(source_ids, destination_ids)

    async def one_to_many(self, source_id, destination_ids):
        return self.service.engine.one_to_many(source_id, destination_ids)

    async def k_nearest(self, source_id, k, candidate_ids=None):
        return self.service.engine.k_nearest(
            source_id, k, candidate_ids=candidate_ids
        )


def _accepts_deadline(backend) -> bool:
    """Whether the backend's read coroutines take a ``deadline`` kwarg
    (:class:`~repro.serving.transport.ShardedQueryRouter` does; a
    local service backend or a duck-typed fake may not)."""
    try:
        parameters = inspect.signature(backend.point).parameters
    except (TypeError, ValueError):
        return False
    return "deadline" in parameters


def _as_backend(service):
    """Wrap a DistanceService; pass async backends (routers) through."""
    if isinstance(service, DistanceService) or hasattr(service, "engine"):
        return _ServiceBackend(service)
    if asyncio.iscoroutinefunction(getattr(service, "pairs", None)):
        return service
    raise ValidationError(
        f"frontend backend {service!r} is neither a DistanceService nor an "
        "async query backend (coroutine point/pairs/one_to_many/k_nearest)"
    )


class FixedWindowPolicy:
    """A constant hold-the-batch-open window (hand-tuned batching).

    ``wait_ms=0`` is pure drain-then-dispatch. The policy interface is
    two methods: :meth:`wait_seconds` (asked after each drain pass)
    and :meth:`observe` (feedback after each dispatch); arrival
    notifications come through :meth:`note_arrival`.
    """

    def __init__(self, wait_ms: float = 0.0):
        if wait_ms < 0:
            raise ValidationError(f"wait_ms must be >= 0, got {wait_ms}")
        self._wait = float(wait_ms) / 1000.0

    def note_arrival(self, count: int = 1) -> None:
        """Arrivals do not move a fixed window."""

    def wait_seconds(self, pending: int) -> float:
        """The constant window, regardless of queue depth."""
        return self._wait

    def observe(self, batch_size: int, dispatch_seconds: float) -> None:
        """Fixed windows ignore feedback."""

    @property
    def current_wait_ms(self) -> float:
        """The window in milliseconds (constant)."""
        return self._wait * 1000.0

    @property
    def arrival_rate(self) -> float | None:
        """Fixed windows do not track arrivals."""
        return None

    @property
    def dispatch_latency_ms(self) -> float | None:
        """Fixed windows do not track dispatch latency."""
        return None


class AdaptiveBatchPolicy:
    """EWMA feedback controller for the micro-batch window.

    The controller maintains two exponentially-weighted averages —
    dispatch latency ``L`` (seconds per batch execution) and arrival
    rate ``λ`` (requests/second, measured between dispatches) — and
    derives a *target batch* ``λ·L``: the batch size the queue reaches
    naturally while one dispatch executes, i.e. the equilibrium of
    drain-then-dispatch. After a drain pass:

    * queue already at (or above) target → dispatch now, zero wait —
      steady traffic never pays a latency tax;
    * queue below target and traffic flowing → hold the batch open
      for the time the EWMA rate needs to fill the gap, capped by
      ``gain · L`` (never wait longer than a fraction of a dispatch)
      and by ``ceiling_ms`` — bursty traffic coalesces instead of
      shredding into base-cost-dominated fragments.

    The controller therefore *converges to the best fixed window for
    whatever the traffic currently is*, which is exactly what
    ``benchmarks/bench_frontend.py`` gates against hand-tuned
    constants.

    Args:
        gain: cap on the window as a fraction of the latency EWMA.
        ceiling_ms: absolute cap on the window.
        alpha: EWMA smoothing factor (weight of the newest sample).
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        gain: float = 0.5,
        ceiling_ms: float = 10.0,
        alpha: float = 0.25,
        clock=time.monotonic,
    ):
        if gain < 0:
            raise ValidationError(f"gain must be >= 0, got {gain}")
        if ceiling_ms < 0:
            raise ValidationError(f"ceiling_ms must be >= 0, got {ceiling_ms}")
        if not 0 < alpha <= 1:
            raise ValidationError(f"alpha must be in (0, 1], got {alpha}")
        self.gain = float(gain)
        self.ceiling = float(ceiling_ms) / 1000.0
        self.alpha = float(alpha)
        self._clock = clock
        self._latency: float | None = None
        self._rate: float | None = None
        self._arrived = 0
        self._last_dispatch_at: float | None = None
        self._last_wait = 0.0

    def note_arrival(self, count: int = 1) -> None:
        """Count arrivals for the rate EWMA (called by the frontend)."""
        self._arrived += count

    def wait_seconds(self, pending: int) -> float:
        """The window to hold the current batch open, in seconds."""
        latency, rate = self._latency, self._rate
        if latency is None or not rate:
            self._last_wait = 0.0
            return 0.0  # no feedback yet: behave like drain-then-dispatch
        target = rate * latency
        if pending >= target or target < 1.0:
            # At equilibrium (steady load), or traffic too light for
            # a window to collect anything: dispatch immediately.
            self._last_wait = 0.0
            return 0.0
        fill_time = (target - pending) / rate
        hold = min(fill_time, self.gain * latency, self.ceiling)
        if hold < 1e-4:
            # Below the event loop's sleep granularity a hold buys
            # nothing; dispatch now.
            hold = 0.0
        self._last_wait = hold
        return hold

    def observe(self, batch_size: int, dispatch_seconds: float) -> None:
        """Fold one dispatch's outcome into the EWMAs."""
        now = self._clock()
        if self._last_dispatch_at is not None:
            window = max(now - self._last_dispatch_at, 1e-6)
            rate = self._arrived / window
            self._rate = (
                rate
                if self._rate is None
                else (1 - self.alpha) * self._rate + self.alpha * rate
            )
        self._arrived = 0
        self._last_dispatch_at = now
        self._latency = (
            dispatch_seconds
            if self._latency is None
            else (1 - self.alpha) * self._latency + self.alpha * dispatch_seconds
        )

    @property
    def current_wait_ms(self) -> float:
        """The most recently chosen window, in milliseconds."""
        return self._last_wait * 1000.0

    @property
    def arrival_rate(self) -> float | None:
        """EWMA arrivals/second (None before any feedback)."""
        return self._rate

    @property
    def dispatch_latency_ms(self) -> float | None:
        """EWMA dispatch latency in ms (None before any feedback)."""
        return None if self._latency is None else self._latency * 1000.0


@dataclass(frozen=True)
class FrontendStats:
    """Counters describing the frontend's coalescing behavior.

    Attributes:
        submitted: requests accepted (cache hits included).
        completed: requests answered (exceptions included).
        cache_hits: point queries answered at submit time from the
            prediction cache, without ever entering the queue.
        batches: dispatch cycles executed.
        coalesced: requests executed through dispatch cycles.
        max_batch_seen: largest single dispatch cycle.
        point_fallbacks: requests retried individually because their
            batch contained a failing request.
        batch_wait_ms: the batch policy's current hold-open window
            (None when no policy is attached).
        arrival_rate: the policy's EWMA arrivals/second, when tracked.
        dispatch_latency_ms: the policy's EWMA dispatch latency, when
            tracked.
        stale_served: point queries answered from a TTL-expired cache
            entry because the backend was overloaded (brownout).
        deadline_rejected: point queries refused at submit time
            because their deadline had already expired.
        deadline_shed: point queries dropped at dispatch time because
            their deadline expired while queued.
    """

    submitted: int
    completed: int
    cache_hits: int
    batches: int
    coalesced: int
    max_batch_seen: int
    point_fallbacks: int
    batch_wait_ms: float | None = None
    arrival_rate: float | None = None
    dispatch_latency_ms: float | None = None
    stale_served: int = 0
    deadline_rejected: int = 0
    deadline_shed: int = 0

    @property
    def mean_batch(self) -> float:
        """Average requests per dispatch cycle (0.0 before traffic)."""
        return self.coalesced / self.batches if self.batches else 0.0

    def __str__(self) -> str:
        return (
            f"submitted={self.submitted} completed={self.completed} "
            f"cache_hits={self.cache_hits} batches={self.batches} "
            f"mean_batch={self.mean_batch:.1f} max_batch={self.max_batch_seen} "
            f"fallbacks={self.point_fallbacks}"
        )


class AsyncDistanceFrontend:
    """Micro-batching asyncio frontend over a local service or a
    remote shard cluster.

    Args:
        service: the backend to dispatch into — a synchronous
            :class:`DistanceService`, or an async backend such as
            :class:`~repro.serving.transport.ShardedQueryRouter` (see
            the module docstring for the protocol).
        max_batch: largest number of requests executed in one dispatch
            cycle; overflow stays queued for the next cycle.
        min_batch: dispatch cycles smaller than this wait up to
            ``max_wait_ms`` for more arrivals before executing. The
            default (1) never waits — under load the event-loop drain
            already forms large batches, and a lone request should not
            pay a latency tax.
        max_wait_ms: upper bound on that wait.
        policy: a batch policy (:class:`FixedWindowPolicy`,
            :class:`AdaptiveBatchPolicy`, or anything with their
            ``note_arrival`` / ``wait_seconds`` / ``observe``
            surface). When given it supersedes the legacy
            ``min_batch``/``max_wait_ms`` waiting rule: after each
            drain pass the dispatcher holds the batch open for
            ``policy.wait_seconds(pending)`` and reports every
            dispatch back through ``policy.observe``.
        populate_cache: write coalesced point results back into the
            service's prediction cache (point queries always *read*
            the cache at submit time).

    Use as an async context manager, or call :meth:`start` /
    :meth:`stop` explicitly::

        async with AsyncDistanceFrontend(service) as frontend:
            rtt = await frontend.query("h3", "h7")
    """

    def __init__(
        self,
        service: DistanceService,
        max_batch: int = 4096,
        min_batch: int = 1,
        max_wait_ms: float = 0.5,
        policy=None,
        populate_cache: bool = False,
    ):
        if int(max_batch) < 1:
            raise ValidationError(f"max_batch must be >= 1, got {max_batch}")
        if not 1 <= int(min_batch) <= int(max_batch):
            raise ValidationError(
                f"min_batch must be in [1, max_batch], got {min_batch}"
            )
        if max_wait_ms < 0:
            raise ValidationError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self.service = service
        self._backend = _as_backend(service)
        self._backend_deadline = _accepts_deadline(self._backend)
        self.max_batch = int(max_batch)
        self.min_batch = int(min_batch)
        self.max_wait = float(max_wait_ms) / 1000.0
        if policy is not None and not all(
            callable(getattr(policy, method, None))
            for method in ("wait_seconds", "observe", "note_arrival")
        ):
            raise ValidationError(
                f"batch policy {policy!r} lacks the wait_seconds/observe/"
                "note_arrival surface"
            )
        self.policy = policy
        self.populate_cache = bool(populate_cache)
        self._pending: list[tuple] = []
        self._in_flight: list[tuple] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._wakeup: asyncio.Event | None = None
        self._dispatcher: asyncio.Task | None = None
        self._submitted = 0
        self._completed = 0
        self._cache_hits = 0
        self._batches = 0
        self._coalesced = 0
        self._max_batch_seen = 0
        self._point_fallbacks = 0
        self._stale_served = 0
        self._deadline_rejected = 0
        self._deadline_shed = 0
        #: Optional dispatch instruments, attached by
        #: :meth:`bind_metrics`; ``None`` keeps the loop uninstrumented.
        self._dispatch_seconds = None
        self._batch_size = None

    # ------------------------------------------------------------------ #
    # telemetry
    # ------------------------------------------------------------------ #

    def bind_metrics(self, registry) -> None:
        """Expose the frontend through a metrics registry.

        The :class:`FrontendStats` counters become scrape-time
        collector samples; dispatch cycles additionally land their
        wall time and batch size in first-class histograms. The
        submit/coalesce hot path stays untouched.
        """
        self._dispatch_seconds = registry.histogram(
            "ides_frontend_dispatch_seconds",
            "Wall time of one dispatch cycle (backend execution included).",
        )
        self._batch_size = registry.histogram(
            "ides_frontend_batch_size",
            "Requests coalesced per dispatch cycle.",
            buckets=tuple(float(2**k) for k in range(14)),
        )

        def collect():
            stats = self.stats()
            samples = [
                Sample("ides_frontend_submitted_total", "counter",
                       "Requests submitted to the frontend.",
                       (), stats.submitted),
                Sample("ides_frontend_completed_total", "counter",
                       "Requests resolved (cache hits included).",
                       (), stats.completed),
                Sample("ides_frontend_cache_hits_total", "counter",
                       "Requests answered from the cache at submit time.",
                       (), stats.cache_hits),
                Sample("ides_frontend_batches_total", "counter",
                       "Dispatch cycles executed.", (), stats.batches),
                Sample("ides_frontend_coalesced_total", "counter",
                       "Requests that went through a dispatch batch.",
                       (), stats.coalesced),
                Sample("ides_frontend_point_fallbacks_total", "counter",
                       "Point queries retried individually after a batch "
                       "failure.", (), stats.point_fallbacks),
                Sample("ides_frontend_max_batch_seen", "gauge",
                       "Largest batch coalesced so far.",
                       (), stats.max_batch_seen),
                Sample("ides_frontend_pending", "gauge",
                       "Requests queued for the next cycle.",
                       (), len(self._pending)),
                Sample("ides_frontend_in_flight", "gauge",
                       "Requests in the executing batch.",
                       (), len(self._in_flight)),
                Sample("ides_frontend_stale_served_total", "counter",
                       "Point queries answered from a TTL-expired cache "
                       "entry during backend overload (brownout).",
                       (), stats.stale_served),
                Sample("ides_frontend_deadline_rejected_total", "counter",
                       "Point queries refused at submit: deadline "
                       "already expired.", (), stats.deadline_rejected),
                Sample("ides_frontend_deadline_shed_total", "counter",
                       "Point queries dropped at dispatch: deadline "
                       "expired while queued.", (), stats.deadline_shed),
            ]
            if stats.arrival_rate is not None:
                samples.append(
                    Sample("ides_frontend_arrival_rate", "gauge",
                           "Adaptive policy's EWMA arrival rate (req/s).",
                           (), stats.arrival_rate)
                )
            return samples

        registry.register_collector(collect)

    # Submitter span contexts are captured into the request tuples via
    # ``current_context()`` so the dispatcher task can parent its spans
    # correctly (the dispatcher runs outside the submitter's context).

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def running(self) -> bool:
        """Whether the dispatcher task is active."""
        return self._dispatcher is not None and not self._dispatcher.done()

    async def start(self) -> "AsyncDistanceFrontend":
        """Spawn the dispatcher task on the running event loop.

        All submissions must come from this same loop.
        """
        if self.running:
            return self
        self._loop = asyncio.get_running_loop()
        self._wakeup = asyncio.Event()
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="distance-frontend-dispatch"
        )
        return self

    async def stop(self) -> None:
        """Cancel the dispatcher; pending requests get CancelledError."""
        if self._dispatcher is None:
            return
        task, self._dispatcher = self._dispatcher, None
        self._loop = None
        task.cancel()
        try:
            await task
        except asyncio.CancelledError:
            pass
        # Batch execution is now a real await point (async backends do
        # network rounds), so cancellation can land mid-batch: the
        # in-flight requests' futures must be cancelled along with the
        # still-queued ones, or their callers would hang forever.
        for request in [*self._in_flight, *self._pending]:
            future = request[-1]
            if not future.done():
                future.cancel()
        self._in_flight.clear()
        self._pending.clear()

    async def __aenter__(self) -> "AsyncDistanceFrontend":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # client API
    # ------------------------------------------------------------------ #

    def _submit(self, request: tuple) -> asyncio.Future:
        pending = self._pending
        if not pending:
            self._wakeup.set()
        pending.append(request)
        self._submitted += 1
        if self.policy is not None:
            self.policy.note_arrival()
        return request[-1]

    def _future(self) -> asyncio.Future:
        loop = self._loop
        if loop is None:
            raise ReproError(
                "frontend is not running; use 'async with' or start()"
            )
        return loop.create_future()

    def submit(
        self,
        source_id: object,
        destination_id: object,
        deadline=None,
    ) -> asyncio.Future:
        """Enqueue a point query without awaiting it.

        The pipelining hook: a client that needs several distances can
        submit them all, then await the futures — every request lands
        in the same dispatch cycle. Cache hits return an
        already-resolved future without touching the queue.

        ``deadline`` (a
        :class:`~repro.serving.transport.protocol.Deadline`) is the
        request's latency budget: a budget already expired fails the
        future with :class:`~repro.exceptions.DeadlineExceededError`
        without ever enqueueing it, one that expires while the request
        waits for a dispatch cycle is shed at batch-cut time, and the
        remaining budget propagates into a deadline-aware backend (the
        shard router) with the dispatched batch.
        """
        cache = self._backend.cache
        if len(cache):  # a probe into an empty cache is pure overhead
            cached = cache.get(source_id, destination_id)
            if cached is not None:
                self._submitted += 1
                self._completed += 1
                self._cache_hits += 1
                future = self._future()
                future.set_result(cached)
                return future
        if deadline is not None and deadline.expired():
            self._submitted += 1
            self._completed += 1
            self._deadline_rejected += 1
            future = self._future()
            future.set_exception(DeadlineExceededError(
                "deadline expired before the query could be enqueued"
            ))
            return future
        return self._submit(
            (_POINT, source_id, destination_id, deadline,
             current_context(), self._future())
        )

    async def query(
        self, source_id: object, destination_id: object, deadline=None
    ) -> float:
        """Point query; coalesced with every other in-flight request."""
        return await self.submit(source_id, destination_id, deadline=deadline)

    async def query_pairs(
        self, source_ids: Sequence, destination_ids: Sequence
    ) -> np.ndarray:
        """Aligned per-pair batch; still coalesced across callers."""
        if len(source_ids) != len(destination_ids):
            raise ValidationError(
                f"query_pairs needs aligned sequences, got {len(source_ids)} "
                f"sources and {len(destination_ids)} destinations"
            )
        future = self._future()
        return await self._submit(
            (_PAIRS, list(source_ids), list(destination_ids),
             current_context(), future)
        )

    async def query_one_to_many(
        self, source_id: object, destination_ids: Sequence
    ) -> np.ndarray:
        """1:N fan-out executed inside the next dispatch cycle."""
        future = self._future()
        return await self._submit(
            (_FANOUT, source_id, list(destination_ids),
             current_context(), future)
        )

    async def k_nearest(
        self,
        source_id: object,
        k: int,
        candidate_ids: Sequence | None = None,
    ) -> list[tuple[object, float]]:
        """k-nearest query executed inside the next dispatch cycle."""
        future = self._future()
        return await self._submit(
            (_NEAREST, source_id, (k, candidate_ids),
             current_context(), future)
        )

    # ------------------------------------------------------------------ #
    # dispatcher
    # ------------------------------------------------------------------ #

    async def _dispatch_loop(self) -> None:
        wakeup = self._wakeup
        while True:
            await wakeup.wait()
            # One full pass through the event loop: every runnable
            # client enqueues before the batch is cut.
            await asyncio.sleep(0)
            if self.policy is not None:
                if len(self._pending) < self.max_batch:
                    hold = self.policy.wait_seconds(len(self._pending))
                    if hold > 0:
                        await asyncio.sleep(hold)
            elif (
                self.min_batch > 1
                and len(self._pending) < self.min_batch
                and self.max_wait > 0
            ):
                await asyncio.sleep(self.max_wait)
            batch = self._pending[: self.max_batch]
            del self._pending[: self.max_batch]
            if not self._pending:
                wakeup.clear()
            if batch:
                # Deliberately NOT a try/finally: on CancelledError the
                # batch must stay in _in_flight so stop() can cancel its
                # futures; every non-cancel path clears it below.
                self._in_flight = batch
                started = time.perf_counter()
                try:
                    await self._execute(batch)
                except Exception as error:  # noqa: BLE001 - the dispatcher
                    # must survive anything: fail this batch's callers,
                    # keep serving everyone else.
                    for request in batch:
                        future = request[-1]
                        if not future.done():
                            future.set_exception(error)
                self._in_flight = []
                if self._dispatch_seconds is not None:
                    self._dispatch_seconds.observe(
                        time.perf_counter() - started
                    )
                    self._batch_size.observe(len(batch))
                if self.policy is not None:
                    self.policy.observe(
                        len(batch), time.perf_counter() - started
                    )

    async def _execute(self, batch: list[tuple]) -> None:
        self._batches += 1
        self._coalesced += len(batch)
        self._max_batch_seen = max(self._max_batch_seen, len(batch))

        points = [r for r in batch if r[0] == _POINT]
        singles = [r for r in batch if r[0] != _POINT]
        # Everything in the cycle runs concurrently: with an async
        # (router) backend the point batch and each pairs/1:N/k-NN
        # request overlap their network rounds instead of paying them
        # serially; with a sync service backend nothing actually
        # yields, so execution order is unchanged. Failure isolation
        # lives inside the tasks — none of them raises.
        await asyncio.gather(
            self._execute_point_batch(points),
            *(self._execute_single(request) for request in singles),
        )

    async def _execute_point_batch(self, points: list[tuple]) -> None:
        try:
            await self._execute_points(points)
        except Exception:  # noqa: BLE001 - any bad request (unknown or
            # even unhashable host id) must only fail its own future
            await self._execute_points_individually(points)

    async def _point_call(self, source_id, destination_id, deadline):
        """One backend point call, forwarding the remaining budget when
        the backend understands deadlines."""
        if deadline is None or not self._backend_deadline:
            return await self._backend.point(source_id, destination_id)
        return await self._backend.point(
            source_id, destination_id, deadline=deadline
        )

    def _shed_expired(self, points: list[tuple]) -> list[tuple]:
        """Drop queued requests whose budget ran out while they waited.

        Their futures fail with
        :class:`~repro.exceptions.DeadlineExceededError` *without* a
        backend round — dispatching work nobody is still waiting for
        is exactly the congestion-collapse input admission control
        exists to refuse.
        """
        live = []
        for request in points:
            future = request[-1]
            if future.cancelled():
                continue
            deadline = request[3]
            if deadline is not None and deadline.expired():
                self._deadline_shed += 1
                future.set_exception(DeadlineExceededError(
                    "deadline expired while queued in the frontend"
                ))
                continue
            live.append(request)
        return live

    async def _execute_points(self, points: list[tuple]) -> None:
        """All point requests of the cycle as one dense pairs batch."""
        if not points:
            return
        live = self._shed_expired(points)
        if not live:
            self._completed += len(points)
            return
        backend = self._backend
        epoch = backend.write_epoch
        if len(live) == 1:
            _, source_id, destination_id, deadline, context, future = live[0]
            with get_tracer().span("frontend:point", parent=context):
                value = await self._point_call(
                    source_id, destination_id, deadline
                )
            if not future.cancelled():
                future.set_result(value)
            if self.populate_cache:
                backend.cache_put_if_current(
                    epoch, source_id, destination_id, value
                )
            self._completed += len(points)
            return
        sources = [r[1] for r in live]
        destinations = [r[2] for r in live]
        # A coalesced batch propagates one wire deadline: the earliest
        # of its members' budgets, and only when every member carries
        # one — a mixed batch must not impose the strictest caller's
        # budget on the unbounded ones. (A member whose own deadline
        # passes mid-flight is caught by the per-request fallback.)
        deadlines = [r[3] for r in live]
        batch_deadline = None
        if self._backend_deadline and all(d is not None for d in deadlines):
            batch_deadline = min(deadlines, key=lambda d: d.remaining())
        # The batch span parents on the first live submitter's context:
        # one coalesced backend round genuinely serves many callers, so
        # one span (sized) represents it rather than n duplicates.
        with get_tracer().span(
            "frontend:batch", parent=live[0][4],
            attributes={"size": len(live)},
        ):
            if batch_deadline is None:
                values = (await backend.pairs(sources, destinations)).tolist()
            else:
                values = (await backend.pairs(
                    sources, destinations, deadline=batch_deadline
                )).tolist()
        for (*_request, future), value in zip(live, values):
            if not future.cancelled():
                future.set_result(value)
        if self.populate_cache:
            # Epoch-guarded: a refresh flush racing this batch must not
            # see its invalidation undone by these writes.
            backend.cache_put_many_if_current(
                epoch,
                [(r[1], r[2], v) for r, v in zip(live, values)],
            )
        self._completed += len(points)

    async def _execute_points_individually(self, points: list[tuple]) -> None:
        """Fallback when a coalesced batch contains a bad request.

        Only the offending futures get the exception; every other
        caller still receives its answer. This is also the brownout
        tier: a request the backend refuses with
        :class:`~repro.exceptions.OverloadedError` is answered from
        the prediction cache's TTL-expired remains when possible —
        marked :class:`~repro.serving.cache.StalePrediction` — instead
        of failing outright.
        """
        for _, source_id, destination_id, deadline, _context, future in points:
            if future.done():  # cancelled, or resolved before the raise
                continue
            if deadline is not None and deadline.expired():
                self._deadline_shed += 1
                future.set_exception(DeadlineExceededError(
                    "deadline expired while queued in the frontend"
                ))
                continue
            self._point_fallbacks += 1
            try:
                value = await self._point_call(
                    source_id, destination_id, deadline
                )
            except OverloadedError as saturated:
                peek = getattr(self._backend.cache, "get_stale", None)
                stale = (
                    peek(source_id, destination_id)
                    if peek is not None
                    else None
                )
                if stale is None:
                    if not future.done():
                        future.set_exception(saturated)
                else:
                    self._stale_served += 1
                    if not future.done():
                        future.set_result(stale)
            except Exception as error:  # noqa: BLE001 - per-request fate
                if not future.done():
                    future.set_exception(error)
            else:
                if not future.done():
                    future.set_result(value)
        self._completed += len(points)

    async def _execute_single(self, request: tuple) -> None:
        kind, first, second, context, future = request
        self._completed += 1
        if future.cancelled():
            return
        tracer = get_tracer()
        try:
            if kind == _PAIRS:
                with tracer.span("frontend:pairs", parent=context):
                    result = await self._backend.pairs(first, second)
            elif kind == _FANOUT:
                with tracer.span("frontend:one_to_many", parent=context):
                    result = await self._backend.one_to_many(first, second)
            elif kind == _NEAREST:
                k, candidates = second
                with tracer.span("frontend:k_nearest", parent=context):
                    result = await self._backend.k_nearest(
                        first, k, candidate_ids=candidates
                    )
            else:  # pragma: no cover - defensive
                if not future.done():
                    future.set_exception(ReproError(f"unknown request kind {kind}"))
                return
        except Exception as error:  # noqa: BLE001 - per-request fate
            if not future.done():
                future.set_exception(error)
        else:
            if not future.done():
                future.set_result(result)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def stats(self) -> FrontendStats:
        """Snapshot of the coalescing counters."""
        policy = self.policy
        return FrontendStats(
            submitted=self._submitted,
            completed=self._completed,
            cache_hits=self._cache_hits,
            batches=self._batches,
            coalesced=self._coalesced,
            max_batch_seen=self._max_batch_seen,
            point_fallbacks=self._point_fallbacks,
            # getattr: the validated policy surface is only
            # note_arrival/wait_seconds/observe — a custom policy
            # without the introspection properties must not break
            # stats().
            batch_wait_ms=(
                None
                if policy is None
                else getattr(policy, "current_wait_ms", None)
            ),
            arrival_rate=(
                None if policy is None else getattr(policy, "arrival_rate", None)
            ),
            dispatch_latency_ms=(
                None
                if policy is None
                else getattr(policy, "dispatch_latency_ms", None)
            ),
            stale_served=self._stale_served,
            deadline_rejected=self._deadline_rejected,
            deadline_shed=self._deadline_shed,
        )


# ---------------------------------------------------------------------- #
# load generation: the two dispatch strategies under identical traffic
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class ConcurrencyReport:
    """Throughput of one dispatch strategy under concurrent load.

    Attributes:
        strategy: human-readable dispatch-strategy label.
        n_clients: concurrent clients generating traffic.
        total_queries: point queries answered.
        elapsed_seconds: wall-clock time for the whole run.
        mean_batch: average coalesced batch size (1.0 for per-query).
    """

    strategy: str
    n_clients: int
    total_queries: int
    elapsed_seconds: float
    mean_batch: float

    @property
    def queries_per_second(self) -> float:
        """Aggregate throughput."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.total_queries / self.elapsed_seconds

    def __str__(self) -> str:
        return (
            f"{self.strategy}: {self.queries_per_second:,.0f} qps "
            f"({self.total_queries} queries, {self.n_clients} clients, "
            f"mean batch {self.mean_batch:.0f})"
        )


def _client_workloads(
    n_hosts: int, n_clients: int, queries_per_client: int, seed: int
) -> list[list[tuple[int, int]]]:
    """Per-client random (source, destination) index streams."""
    workloads = []
    for client in range(n_clients):
        rng = np.random.default_rng(seed + client)
        sources = rng.integers(0, n_hosts, queries_per_client)
        destinations = rng.integers(0, n_hosts, queries_per_client)
        workloads.append(list(zip(sources.tolist(), destinations.tolist())))
    return workloads


def measure_concurrent_throughput(
    service: DistanceService,
    n_clients: int = 64,
    queries_per_client: int = 400,
    window: int = 8,
    max_batch: int = 4096,
    seed: int = 0,
    instrument: bool = False,
) -> ConcurrencyReport:
    """Drive the micro-batching frontend with concurrent async clients.

    Each client keeps ``window`` point queries in flight (a redirector
    resolving several candidate pairs at once); the frontend coalesces
    across all ``n_clients`` of them.

    ``instrument=True`` runs the identical workload with the telemetry
    plane live — tracing enabled and the service's and frontend's
    metrics bound to a fresh registry — so the observability overhead
    benchmark can gate instrumented-vs-plain on this exact path.
    """
    host_ids = service.known_hosts()
    workloads = _client_workloads(
        len(host_ids), n_clients, queries_per_client, seed
    )
    service.cache.clear()  # same cold start as the per-query baseline

    registry = None
    if instrument:
        from .observability import MetricsRegistry, configure_tracing

        registry = MetricsRegistry()
        service.bind_metrics(registry)
        configure_tracing(enabled=True, service="bench-frontend")

    async def run() -> tuple[float, float]:
        async with AsyncDistanceFrontend(service, max_batch=max_batch) as frontend:
            if registry is not None:
                frontend.bind_metrics(registry)
            async def client(pairs: list[tuple[int, int]]) -> None:
                submit = frontend.submit
                for i in range(0, len(pairs), window):
                    futures = [
                        submit(host_ids[s], host_ids[d])
                        for s, d in pairs[i : i + window]
                    ]
                    for future in futures:
                        await future

            started = time.perf_counter()
            await asyncio.gather(*(client(w) for w in workloads))
            elapsed = time.perf_counter() - started
            return elapsed, frontend.stats().mean_batch

    try:
        elapsed, mean_batch = asyncio.run(run())
    finally:
        if instrument:
            from .observability import configure_tracing

            configure_tracing(enabled=False)
    return ConcurrencyReport(
        strategy="coalesced micro-batched dispatch",
        n_clients=n_clients,
        total_queries=n_clients * queries_per_client,
        elapsed_seconds=elapsed,
        mean_batch=mean_batch,
    )


def measure_per_query_throughput(
    service: DistanceService,
    n_clients: int = 64,
    queries_per_client: int = 400,
    seed: int = 0,
) -> ConcurrencyReport:
    """Per-query dispatch baseline: ``n_clients`` concurrent threads,
    each making individual blocking :meth:`DistanceService.query`
    calls — the thread-per-client server the frontend replaces."""
    host_ids = service.known_hosts()
    workloads = _client_workloads(
        len(host_ids), n_clients, queries_per_client, seed
    )
    service.cache.clear()

    def client(pairs: list[tuple[int, int]]) -> None:
        query = service.query
        for s, d in pairs:
            query(host_ids[s], host_ids[d])

    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=n_clients) as pool:
        list(pool.map(client, workloads))
    elapsed = time.perf_counter() - started
    return ConcurrencyReport(
        strategy="per-query dispatch",
        n_clients=n_clients,
        total_queries=n_clients * queries_per_client,
        elapsed_seconds=elapsed,
        mean_batch=1.0,
    )


# ---------------------------------------------------------------------- #
# batch-policy evaluation: synthetic dispatch costs, bursty/steady load
# ---------------------------------------------------------------------- #


class SimulatedDispatchBackend:
    """An async backend whose only behavior is its *cost model*.

    Every dispatch spends ``base_ms + per_item_us * n`` of event-loop
    time — the shape of a cross-shard RPC round (fixed protocol/syscall
    overhead plus linear payload cost). Results are zeros; the point is
    to make the batching tradeoff real and deterministic so batch
    policies can be compared: many small dispatches pay ``base_ms``
    over and over, one large dispatch pays it once but makes early
    arrivals wait.

    Attributes:
        dispatches: backend calls executed.
        items: total requests served across those calls.
    """

    def __init__(self, base_ms: float = 2.0, per_item_us: float = 4.0):
        if base_ms < 0 or per_item_us < 0:
            raise ValidationError("cost-model parameters must be >= 0")
        self.base = float(base_ms) / 1000.0
        self.per_item = float(per_item_us) / 1_000_000.0
        self.cache = PredictionCache()  # stays empty: no hit fast path
        self.write_epoch = 0
        self.dispatches = 0
        self.items = 0

    def cache_put_if_current(self, *args: object) -> bool:
        return False

    def cache_put_many_if_current(self, *args: object) -> int:
        return 0

    async def _spend(self, items: int) -> None:
        self.dispatches += 1
        self.items += items
        await asyncio.sleep(self.base + self.per_item * items)

    async def point(self, source_id: object, destination_id: object) -> float:
        await self._spend(1)
        return 0.0

    async def pairs(self, source_ids, destination_ids) -> np.ndarray:
        await self._spend(len(source_ids))
        return np.zeros(len(source_ids))

    async def one_to_many(self, source_id: object, destination_ids) -> np.ndarray:
        await self._spend(len(destination_ids))
        return np.zeros(len(destination_ids))

    async def k_nearest(self, source_id: object, k: int, candidate_ids=None):
        await self._spend(int(k))
        return []


@dataclass(frozen=True)
class PolicyReport:
    """Outcome of one batch policy under one synthetic load.

    Attributes:
        policy: human-readable policy label.
        load: "steady" or "bursty".
        total_queries: point queries completed.
        elapsed_seconds: wall-clock time for the whole run.
        dispatches: backend calls the policy's batching produced.
        mean_batch: average coalesced batch size.
        batch_wait_ms: the policy's final window (None for no policy).
    """

    policy: str
    load: str
    total_queries: int
    elapsed_seconds: float
    dispatches: int
    mean_batch: float
    batch_wait_ms: float | None

    @property
    def queries_per_second(self) -> float:
        """Aggregate throughput."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.total_queries / self.elapsed_seconds

    def __str__(self) -> str:
        wait = (
            f" wait={self.batch_wait_ms:.2f}ms"
            if self.batch_wait_ms is not None
            else ""
        )
        return (
            f"{self.policy} [{self.load}]: {self.elapsed_seconds * 1000:.0f} ms "
            f"for {self.total_queries} queries in {self.dispatches} dispatches "
            f"(mean batch {self.mean_batch:.0f}{wait})"
        )


async def _drive_steady(
    frontend: AsyncDistanceFrontend, n_clients: int, rounds: int
) -> int:
    """Closed-loop lockstep traffic: every client keeps exactly one
    query in flight — the regime where any extra window is pure
    latency tax."""

    async def client(index: int) -> None:
        for round_number in range(rounds):
            await frontend.query(("s", index), ("d", round_number))

    await asyncio.gather(*(client(i) for i in range(n_clients)))
    return n_clients * rounds


async def _drive_bursty(
    frontend: AsyncDistanceFrontend,
    n_clients: int,
    rounds: int,
    window: int,
    spread_ms: float,
) -> int:
    """Closed-loop bursts with intra-burst arrival spread: each round,
    clients submit ``window`` queries staggered across ``spread_ms`` —
    the regime where a hold-open window collects the burst instead of
    shredding it into base-cost-dominated fragments."""
    spread = spread_ms / 1000.0

    async def client(index: int) -> None:
        offset = spread * index / max(n_clients - 1, 1)
        for round_number in range(rounds):
            await asyncio.sleep(offset)
            futures = [
                frontend.submit(("s", index, w), ("d", round_number))
                for w in range(window)
            ]
            for future in futures:
                await future

    await asyncio.gather(*(client(i) for i in range(n_clients)))
    return n_clients * rounds * window


def measure_batching_policy(
    policy,
    load: str = "steady",
    label: str | None = None,
    n_clients: int = 24,
    rounds: int = 20,
    window: int = 4,
    spread_ms: float = 6.0,
    base_ms: float = 2.0,
    per_item_us: float = 4.0,
) -> PolicyReport:
    """Run one batch policy against one synthetic load shape.

    Args:
        policy: a batch policy instance, or None for bare
            drain-then-dispatch.
        load: "steady" (lockstep closed loop) or "bursty" (staggered
            burst rounds).
        label: report label (defaults to the policy class name).
        n_clients / rounds / window / spread_ms: load-shape knobs.
        base_ms / per_item_us: the simulated dispatch cost model.
    """
    if load not in ("steady", "bursty"):
        raise ValidationError(f"load must be 'steady' or 'bursty', got {load!r}")
    backend = SimulatedDispatchBackend(base_ms=base_ms, per_item_us=per_item_us)
    if label is None:
        label = type(policy).__name__ if policy is not None else "no-policy"

    async def run() -> tuple[int, float, FrontendStats]:
        async with AsyncDistanceFrontend(backend, policy=policy) as frontend:
            started = time.perf_counter()
            if load == "steady":
                served = await _drive_steady(frontend, n_clients, rounds)
            else:
                served = await _drive_bursty(
                    frontend, n_clients, rounds, window, spread_ms
                )
            elapsed = time.perf_counter() - started
            return served, elapsed, frontend.stats()

    served, elapsed, stats = asyncio.run(run())
    return PolicyReport(
        policy=label,
        load=load,
        total_queries=served,
        elapsed_seconds=elapsed,
        dispatches=backend.dispatches,
        mean_batch=stats.mean_batch,
        batch_wait_ms=stats.batch_wait_ms,
    )
