"""Snapshot serialization for the distance service.

A snapshot is one compressed ``.npz`` holding the dense vector
matrices plus a JSON header (identifiers, landmark set, store layout),
so a service can be fitted once offline and shipped to any number of
query frontends — the deployment split the IDES architecture implies.

Identifiers must be JSON-representable scalars (``str`` or ``int``) to
survive the round trip; richer keys are an in-memory-only convenience.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..exceptions import ValidationError

__all__ = ["ServiceSnapshot", "save_snapshot", "load_snapshot"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ServiceSnapshot:
    """Everything needed to rebuild a :class:`DistanceService`.

    Attributes:
        ids: identifiers of every stored host (landmarks included).
        outgoing / incoming: ``(n, d)`` vector matrices, row i for
            ``ids[i]``.
        landmark_ids: the subset of ``ids`` acting as landmarks.
        n_shards: shard count of the originating store (0 for the
            unsharded in-memory backend).
    """

    ids: list
    outgoing: np.ndarray
    incoming: np.ndarray
    landmark_ids: list
    n_shards: int = 0

    def __post_init__(self) -> None:
        if len(self.ids) != self.outgoing.shape[0]:
            raise ValidationError(
                f"snapshot has {len(self.ids)} ids for "
                f"{self.outgoing.shape[0]} vector rows"
            )
        if self.outgoing.shape != self.incoming.shape:
            raise ValidationError(
                f"snapshot matrices disagree: {self.outgoing.shape} vs "
                f"{self.incoming.shape}"
            )
        known = set(self.ids)
        unknown = [i for i in self.landmark_ids if i not in known]
        if unknown:
            raise ValidationError(f"landmark ids not in snapshot: {unknown!r}")

    @property
    def dimension(self) -> int:
        """Model dimension ``d``."""
        return self.outgoing.shape[1]

    @property
    def n_hosts(self) -> int:
        """Stored hosts, landmarks included."""
        return len(self.ids)


def _check_serializable(ids: list, name: str) -> None:
    for identifier in ids:
        if not isinstance(identifier, (str, int)):
            raise ValidationError(
                f"{name} contains {identifier!r}; snapshots support only "
                "str or int host identifiers"
            )


def save_snapshot(snapshot: ServiceSnapshot, path: str | Path) -> Path:
    """Write the snapshot to ``path`` as a compressed ``.npz``."""
    _check_serializable(snapshot.ids, "ids")
    _check_serializable(snapshot.landmark_ids, "landmark_ids")
    destination = Path(path)
    header = json.dumps(
        {
            "format_version": _FORMAT_VERSION,
            "ids": snapshot.ids,
            "landmark_ids": snapshot.landmark_ids,
            "n_shards": snapshot.n_shards,
        }
    )
    np.savez_compressed(
        destination,
        header=np.array(header),
        outgoing=snapshot.outgoing,
        incoming=snapshot.incoming,
    )
    # np.savez appends .npz when the name lacks it; report the real path.
    if destination.suffix != ".npz":
        destination = destination.with_suffix(destination.suffix + ".npz")
    return destination


def load_snapshot(path: str | Path) -> ServiceSnapshot:
    """Read a snapshot previously written by :func:`save_snapshot`."""
    source = Path(path)
    if not source.exists():
        raise ValidationError(f"snapshot file not found: {source}")
    try:
        archive = np.load(source, allow_pickle=False)
    except (ValueError, OSError) as broken:
        raise ValidationError(
            f"{source} is not a service snapshot: {broken}"
        ) from None
    with archive:
        try:
            header = json.loads(str(archive["header"]))
            outgoing = archive["outgoing"]
            incoming = archive["incoming"]
        except KeyError as missing:
            raise ValidationError(
                f"{source} is not a service snapshot ({missing.args[0]})"
            ) from None
    version = header.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValidationError(
            f"unsupported snapshot format version {version!r} in {source}"
        )
    return ServiceSnapshot(
        ids=list(header["ids"]),
        outgoing=np.asarray(outgoing, dtype=float),
        incoming=np.asarray(incoming, dtype=float),
        landmark_ids=list(header["landmark_ids"]),
        n_shards=int(header.get("n_shards", 0)),
    )
