"""Online maintenance of host vectors under RTT drift.

The paper fits vectors once from a measurement snapshot; a deployed
service must keep them fresh as routes change and load swells. Two
mechanisms, both cheap enough to run continuously:

* **incremental updates** (:class:`OnlineVectorTracker`) — every new
  RTT sample to a reference node nudges the host's vectors along the
  gradient of the squared error for that one measurement, Vivaldi-style
  but in the factored model's geometry:

  .. math::

      \\vec X \\mathrel{+}= \\eta\\,(d^{out} - \\vec X \\cdot \\vec Y_r)\\,\\vec Y_r

* **periodic refresh** (:func:`refresh_host_vectors`) — re-measure all
  references and redo the closed-form solve of Eqs. 13-14.

The ``ablate-staleness`` experiment quantifies the trade-off on a
drifting world: model rot without maintenance, versus either policy.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_matrix, check_fraction
from ..exceptions import ValidationError
from .host import place_hosts_batch
from .vectors import HostVectors

try:  # scipy is optional: forward substitution beats a generic LU
    from scipy.linalg import solve_triangular as _solve_triangular
except ImportError:  # pragma: no cover - exercised on numpy-only installs
    _solve_triangular = None

__all__ = ["OnlineVectorTracker", "refresh_host_vectors"]


class OnlineVectorTracker:
    """Per-host stochastic-gradient maintenance of model vectors.

    Each observed sample updates one direction: an outgoing RTT sample
    to reference ``r`` adjusts ``X``; an incoming sample adjusts ``Y``.
    Whole flushes of samples go through :meth:`observe_many`, which
    applies a same-direction stack of samples as dense ndarray ops —
    exactly equivalent to replaying them one at a time.

    Args:
        initial: the host's starting vectors (from a full solve).
        learning_rate: gradient step scale ``eta`` relative to the
            squared reference-vector norm; values in ``(0, 1]`` are
            stable (1.0 projects the residual out completely for that
            sample, like a Kaczmarz step).
        storage: optional ``(outgoing_buffer, incoming_buffer)`` pair
            of length-``d`` arrays the tracker mutates in place —
            typically rows of a pooled matrix, so a bulk flush can
            gather many trackers' state with one fancy index instead
            of re-stacking per-tracker copies.
    """

    def __init__(
        self,
        initial: HostVectors,
        learning_rate: float = 0.3,
        storage: tuple[np.ndarray, np.ndarray] | None = None,
    ):
        if not 0.0 < learning_rate <= 1.0:
            raise ValidationError(
                f"learning_rate must be in (0, 1], got {learning_rate}"
            )
        self.learning_rate = float(learning_rate)
        if storage is None:
            self._outgoing = initial.outgoing.copy()
            self._incoming = initial.incoming.copy()
        else:
            out_buffer, in_buffer = storage
            if (
                out_buffer.shape != initial.outgoing.shape
                or in_buffer.shape != initial.incoming.shape
            ):
                raise ValidationError(
                    "storage buffers disagree with the initial vector shape"
                )
            out_buffer[...] = initial.outgoing
            in_buffer[...] = initial.incoming
            self._outgoing = out_buffer
            self._incoming = in_buffer
        self.samples_seen = 0

    def bind_storage(self, out_buffer: np.ndarray, in_buffer: np.ndarray) -> None:
        """Move the tracker's state into caller-provided buffers.

        Used when a pooled backing matrix grows: the current state is
        copied into the new rows and all further updates land there.
        """
        out_buffer[...] = self._outgoing
        in_buffer[...] = self._incoming
        self._outgoing = out_buffer
        self._incoming = in_buffer

    @property
    def vectors(self) -> HostVectors:
        """Current vector estimates."""
        return HostVectors(
            outgoing=self._outgoing.copy(), incoming=self._incoming.copy()
        )

    def observe_out(self, measured_rtt: float, reference_incoming: np.ndarray) -> float:
        """Process one host -> reference sample; returns the residual.

        Kaczmarz-style damped projection: the update moves ``X`` toward
        the hyperplane ``X . Y_r = d`` by ``learning_rate`` of the gap.
        """
        reference = np.asarray(reference_incoming, dtype=float)
        norm_sq = float(reference @ reference)
        if norm_sq <= 0 or not np.isfinite(measured_rtt):
            return float("nan")
        residual = float(measured_rtt - self._outgoing @ reference)
        self._outgoing += self.learning_rate * residual * reference / norm_sq
        self.samples_seen += 1
        return residual

    def observe_in(self, measured_rtt: float, reference_outgoing: np.ndarray) -> float:
        """Process one reference -> host sample; returns the residual."""
        reference = np.asarray(reference_outgoing, dtype=float)
        norm_sq = float(reference @ reference)
        if norm_sq <= 0 or not np.isfinite(measured_rtt):
            return float("nan")
        residual = float(measured_rtt - reference @ self._incoming)
        self._incoming += self.learning_rate * residual * reference / norm_sq
        self.samples_seen += 1
        return residual

    def observe_many(
        self,
        measured_rtts: object,
        references: object,
        outgoing: bool = True,
    ) -> np.ndarray:
        """Apply a stack of same-direction samples in one shot.

        Exactly equivalent to calling :meth:`observe_out` (or
        :meth:`observe_in`) once per sample in order: the sequential
        damped-projection recurrence

        .. math::

            x_i = x_{i-1} + \\eta\\,(d_i - x_{i-1} \\cdot y_i)\\,
                  y_i / \\lVert y_i \\rVert^2

        is linear in the step coefficients, so the whole stack reduces
        to one lower-triangular solve against the samples' Gram matrix
        followed by a single rank-``m`` vector update — dense ndarray
        ops instead of ``m`` Python-level iterations.

        Args:
            measured_rtts: length-``m`` measured distances.
            references: ``(m, d)`` reference vectors — ``Y_r`` rows for
                outgoing samples, ``X_r`` rows for incoming.
            outgoing: which of the host's vectors the stack updates.

        Returns:
            length-``m`` pre-update residuals, NaN where a sample was
            skipped (non-finite RTT or degenerate reference vector);
            skipped samples do not advance ``samples_seen``.
        """
        rtts = np.asarray(measured_rtts, dtype=float).ravel()
        reference_rows = np.asarray(references, dtype=float)
        if reference_rows.ndim != 2 or reference_rows.shape[0] != rtts.shape[0]:
            raise ValidationError(
                f"references must have shape ({rtts.shape[0]}, d), got "
                f"{reference_rows.shape}"
            )
        state = self._outgoing if outgoing else self._incoming
        if reference_rows.shape[1] != state.shape[0]:
            raise ValidationError(
                f"references have dimension {reference_rows.shape[1]}, "
                f"vectors have {state.shape[0]}"
            )
        norms_sq = np.einsum("ij,ij->i", reference_rows, reference_rows)
        valid = np.isfinite(rtts) & (norms_sq > 0)
        residuals = np.full(rtts.shape[0], np.nan)
        count = int(valid.sum())
        if count == 0:
            return residuals
        all_rows = reference_rows[valid]
        all_rtts = rtts[valid]
        all_scaled_norms = norms_sq[valid] / self.learning_rate
        all_coefficients = np.empty(count)
        # Blocked application keeps the Gram matrix bounded: each block
        # is one triangular solve against the state left by the
        # previous block, which *is* the sequential recurrence — so an
        # arbitrarily long stack stays O(block^2) memory and exact.
        block = 512
        for start in range(0, count, block):
            stop = min(start + block, count)
            rows = all_rows[start:stop]
            scaled_norms = all_scaled_norms[start:stop]
            initial_residuals = all_rtts[start:stop] - rows @ state
            if stop - start == 1:
                coefficients = initial_residuals / scaled_norms
            else:
                # Step i feels every earlier step through the Gram
                # matrix: (diag(|y|^2/eta) + strict_lower(Y Y^T)) c =
                # d - Y x_0. The system is lower triangular by
                # construction — forward-substitute when scipy is
                # available instead of paying a generic LU.
                system = np.tril(rows @ rows.T, k=-1)
                np.fill_diagonal(system, scaled_norms)
                if _solve_triangular is not None:
                    coefficients = _solve_triangular(
                        system, initial_residuals, lower=True,
                        check_finite=False,
                    )
                else:
                    coefficients = np.linalg.solve(system, initial_residuals)
            state += coefficients @ rows
            all_coefficients[start:stop] = coefficients
        residuals[valid] = all_coefficients * all_scaled_norms
        self.samples_seen += count
        return residuals


def refresh_host_vectors(
    out_distances: object,
    in_distances: object | None,
    reference_outgoing: object,
    reference_incoming: object,
    previous_outgoing: object | None = None,
    previous_incoming: object | None = None,
    blend: float = 1.0,
    **solve_options: object,
) -> tuple[np.ndarray, np.ndarray]:
    """Full re-solve of many hosts, optionally blended with the past.

    Args:
        out_distances / in_distances / reference_* : as in
            :func:`repro.ides.place_hosts_batch`.
        previous_outgoing / previous_incoming: the hosts' prior
            vectors.
        blend: weight of the *fresh* solution in ``[0, 1]``; values
            below 1 exponential-smooth against measurement noise at the
            cost of slower tracking.
        **solve_options: forwarded to :func:`place_hosts_batch`.

    Returns:
        ``(outgoing, incoming)`` matrices after the refresh.
    """
    blend = check_fraction(blend, name="blend")
    fresh_out, fresh_in = place_hosts_batch(
        out_distances,
        in_distances,
        reference_outgoing,
        reference_incoming,
        **solve_options,
    )
    if blend >= 1.0 or previous_outgoing is None or previous_incoming is None:
        return fresh_out, fresh_in
    old_out = as_matrix(previous_outgoing, name="previous_outgoing")
    old_in = as_matrix(previous_incoming, name="previous_incoming")
    if old_out.shape != fresh_out.shape or old_in.shape != fresh_in.shape:
        raise ValidationError("previous vectors disagree with the fresh solve shape")
    return (
        blend * fresh_out + (1.0 - blend) * old_out,
        blend * fresh_in + (1.0 - blend) * old_in,
    )
