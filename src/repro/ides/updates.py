"""Online maintenance of host vectors under RTT drift.

The paper fits vectors once from a measurement snapshot; a deployed
service must keep them fresh as routes change and load swells. Two
mechanisms, both cheap enough to run continuously:

* **incremental updates** (:class:`OnlineVectorTracker`) — every new
  RTT sample to a reference node nudges the host's vectors along the
  gradient of the squared error for that one measurement, Vivaldi-style
  but in the factored model's geometry:

  .. math::

      \\vec X \\mathrel{+}= \\eta\\,(d^{out} - \\vec X \\cdot \\vec Y_r)\\,\\vec Y_r

* **periodic refresh** (:func:`refresh_host_vectors`) — re-measure all
  references and redo the closed-form solve of Eqs. 13-14.

The ``ablate-staleness`` experiment quantifies the trade-off on a
drifting world: model rot without maintenance, versus either policy.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_matrix, check_fraction
from ..exceptions import ValidationError
from .host import place_hosts_batch
from .vectors import HostVectors

__all__ = ["OnlineVectorTracker", "refresh_host_vectors"]


class OnlineVectorTracker:
    """Per-host stochastic-gradient maintenance of model vectors.

    Args:
        initial: the host's starting vectors (from a full solve).
        learning_rate: gradient step scale ``eta`` relative to the
            squared reference-vector norm; values in ``(0, 1]`` are
            stable (1.0 projects the residual out completely for that
            sample, like a Kaczmarz step).

    Each observed sample updates one direction: an outgoing RTT sample
    to reference ``r`` adjusts ``X``; an incoming sample adjusts ``Y``.
    """

    def __init__(self, initial: HostVectors, learning_rate: float = 0.3):
        if not 0.0 < learning_rate <= 1.0:
            raise ValidationError(
                f"learning_rate must be in (0, 1], got {learning_rate}"
            )
        self.learning_rate = float(learning_rate)
        self._outgoing = initial.outgoing.copy()
        self._incoming = initial.incoming.copy()
        self.samples_seen = 0

    @property
    def vectors(self) -> HostVectors:
        """Current vector estimates."""
        return HostVectors(
            outgoing=self._outgoing.copy(), incoming=self._incoming.copy()
        )

    def observe_out(self, measured_rtt: float, reference_incoming: np.ndarray) -> float:
        """Process one host -> reference sample; returns the residual.

        Kaczmarz-style damped projection: the update moves ``X`` toward
        the hyperplane ``X . Y_r = d`` by ``learning_rate`` of the gap.
        """
        reference = np.asarray(reference_incoming, dtype=float)
        norm_sq = float(reference @ reference)
        if norm_sq <= 0 or not np.isfinite(measured_rtt):
            return float("nan")
        residual = float(measured_rtt - self._outgoing @ reference)
        self._outgoing += self.learning_rate * residual * reference / norm_sq
        self.samples_seen += 1
        return residual

    def observe_in(self, measured_rtt: float, reference_outgoing: np.ndarray) -> float:
        """Process one reference -> host sample; returns the residual."""
        reference = np.asarray(reference_outgoing, dtype=float)
        norm_sq = float(reference @ reference)
        if norm_sq <= 0 or not np.isfinite(measured_rtt):
            return float("nan")
        residual = float(measured_rtt - reference @ self._incoming)
        self._incoming += self.learning_rate * residual * reference / norm_sq
        self.samples_seen += 1
        return residual


def refresh_host_vectors(
    out_distances: object,
    in_distances: object | None,
    reference_outgoing: object,
    reference_incoming: object,
    previous_outgoing: object | None = None,
    previous_incoming: object | None = None,
    blend: float = 1.0,
    **solve_options: object,
) -> tuple[np.ndarray, np.ndarray]:
    """Full re-solve of many hosts, optionally blended with the past.

    Args:
        out_distances / in_distances / reference_* : as in
            :func:`repro.ides.place_hosts_batch`.
        previous_outgoing / previous_incoming: the hosts' prior
            vectors.
        blend: weight of the *fresh* solution in ``[0, 1]``; values
            below 1 exponential-smooth against measurement noise at the
            cost of slower tracking.
        **solve_options: forwarded to :func:`place_hosts_batch`.

    Returns:
        ``(outgoing, incoming)`` matrices after the refresh.
    """
    blend = check_fraction(blend, name="blend")
    fresh_out, fresh_in = place_hosts_batch(
        out_distances,
        in_distances,
        reference_outgoing,
        reference_incoming,
        **solve_options,
    )
    if blend >= 1.0 or previous_outgoing is None or previous_incoming is None:
        return fresh_out, fresh_in
    old_out = as_matrix(previous_outgoing, name="previous_outgoing")
    old_in = as_matrix(previous_incoming, name="previous_incoming")
    if old_out.shape != fresh_out.shape or old_in.shape != fresh_in.shape:
        raise ValidationError("previous vectors disagree with the fresh solve shape")
    return (
        blend * fresh_out + (1.0 - blend) * old_out,
        blend * fresh_in + (1.0 - blend) * old_in,
    )
