"""Ordinary-host placement: the least-squares solves of Section 5.

A new host measures distances to (and from) ``k >= d`` reference nodes
whose vectors are already known — all landmarks in the basic
architecture (Eqs. 11-14), or any mix of landmarks and already-placed
ordinary hosts in the relaxed architecture (Eqs. 15-16) — and solves

.. math::

    \\vec X_{new} = \\arg\\min_u \\sum_i (D^{out}_i - u \\cdot \\vec Y_i)^2,
    \\qquad
    \\vec Y_{new} = \\arg\\min_u \\sum_i (D^{in}_i - \\vec X_i \\cdot u)^2

The unconstrained closed forms are Eqs. (13)-(14); optional
non-negativity uses the Lawson-Hanson solver (the "somewhat more
complicated" constrained variant of Section 5.1).
"""

from __future__ import annotations

import numpy as np

from .._validation import as_mask, as_matrix
from ..exceptions import SingularSystemError, ValidationError
from ..linalg import (
    mask_row_groups,
    nonnegative_least_squares,
    nonnegative_least_squares_batched,
    solve_batched_least_squares,
    solve_least_squares,
    solve_weighted_batched_least_squares,
)
from .vectors import HostVectors

__all__ = ["solve_host_vectors", "place_hosts_batch", "relative_error_weights"]

#: Valid host-placement weighting schemes.
WEIGHTINGS = ("uniform", "relative")


def relative_error_weights(measurements: np.ndarray) -> np.ndarray:
    """Per-measurement weights approximating the relative-error loss.

    Dividing each residual by the measured distance turns the absolute
    squared error of Eq. 13 into a squared *relative* error — the
    quantity the paper actually evaluates (Eq. 10). The weights are
    ``1 / max(d, floor)^2``; non-finite measurements weigh zero.
    """
    finite = np.isfinite(measurements)
    positive = measurements[finite & (measurements > 0)]
    floor = float(positive.mean()) * 1e-3 if positive.size else 1e-6
    safe = np.where(finite, np.maximum(measurements, floor), 1.0)
    weights = 1.0 / (safe * safe)
    return np.where(finite, weights, 0.0)


def solve_host_vectors(
    out_distances: object,
    in_distances: object,
    reference_outgoing: object,
    reference_incoming: object,
    ridge: float = 0.0,
    nonnegative: bool = False,
    strict: bool = True,
) -> HostVectors:
    """Compute one host's vectors from its reference measurements.

    Args:
        out_distances: length-``k`` distances host -> reference.
        in_distances: length-``k`` distances reference -> host.
        reference_outgoing: ``(k, d)`` matrix of reference ``X_i`` rows.
        reference_incoming: ``(k, d)`` matrix of reference ``Y_i`` rows.
        ridge: optional Tikhonov regularization for noisy solves.
        nonnegative: solve with non-negativity constraints (guarantees
            non-negative predictions when the landmark model came from
            NMF).
        strict: raise :class:`SingularSystemError` when ``k < d``
            (paper: "the constraint k >= d is necessary").

    Returns:
        the host's :class:`HostVectors`.
    """
    ref_out = as_matrix(reference_outgoing, name="reference_outgoing")
    ref_in = as_matrix(reference_incoming, name="reference_incoming")
    if ref_out.shape != ref_in.shape:
        raise ValidationError(
            f"reference matrices disagree: {ref_out.shape} vs {ref_in.shape}"
        )

    out_vec = np.asarray(out_distances, dtype=float).ravel()
    in_vec = np.asarray(in_distances, dtype=float).ravel()
    k = ref_out.shape[0]
    if out_vec.shape[0] != k or in_vec.shape[0] != k:
        raise ValidationError(
            f"measurement vectors must have length {k}, got "
            f"{out_vec.shape[0]} and {in_vec.shape[0]}"
        )

    out_valid = np.isfinite(out_vec)
    in_valid = np.isfinite(in_vec)
    dimension = ref_out.shape[1]
    if strict and (out_valid.sum() < dimension or in_valid.sum() < dimension):
        raise SingularSystemError(
            f"need >= d={dimension} finite measurements per direction, got "
            f"{int(out_valid.sum())} outgoing and {int(in_valid.sum())} incoming"
        )

    if nonnegative:
        outgoing = nonnegative_least_squares(ref_in[out_valid], out_vec[out_valid])
        incoming = nonnegative_least_squares(ref_out[in_valid], in_vec[in_valid])
    else:
        outgoing = solve_least_squares(
            ref_in[out_valid], out_vec[out_valid], ridge=ridge, strict=strict
        )
        incoming = solve_least_squares(
            ref_out[in_valid], in_vec[in_valid], ridge=ridge, strict=strict
        )
    return HostVectors(outgoing=outgoing, incoming=incoming)


def place_hosts_batch(
    out_distances: object,
    in_distances: object | None,
    reference_outgoing: object,
    reference_incoming: object,
    observation_mask: object | None = None,
    ridge: float = 0.0,
    nonnegative: bool = False,
    strict: bool = True,
    weighting: str = "uniform",
) -> tuple[np.ndarray, np.ndarray]:
    """Place many hosts against one shared reference set.

    Args:
        out_distances: ``(n, k)`` distances host -> reference.
        in_distances: ``(k, n)`` distances reference -> host, or None to
            assume symmetry (``in = out.T``), appropriate for RTT data.
        reference_outgoing / reference_incoming: ``(k, d)`` reference
            vector matrices.
        observation_mask: optional ``(n, k)`` boolean matrix; a False
            entry drops that reference from *both* directional solves
            of that host (an unobserved landmark, Figure 7).
        ridge / nonnegative / strict: as in :func:`solve_host_vectors`.
        weighting: ``"uniform"`` reproduces the paper's Eqs. 13-14;
            ``"relative"`` weights each measurement by ``1 / d^2``,
            aligning the solve with the Eq. 10 relative-error metric
            (an extension; see the ``ablate-weighting`` experiment).
            Incompatible with ``nonnegative``.

    Returns:
        ``(new_outgoing, new_incoming)`` of shapes ``(n, d)``.

    Every variant is solved vectorized — there is no per-host Python
    loop. Unconstrained placements group hosts by identical
    observation-mask pattern (the common case: an outage drops the
    *same* landmarks for many hosts, Figure 7) and solve each pattern
    as two multi-RHS systems, one factorization per pattern per
    direction, with the grouping shared between the outgoing and
    incoming solves; a fully-observed batch is simply the one-pattern
    case. The NNLS variant runs the batched Lawson-Hanson kernel
    (:func:`repro.linalg.nonnegative_least_squares_batched`) over both
    directions. Relative weighting handles masks natively (a masked
    measurement simply weighs zero). The single-host
    :func:`solve_host_vectors` is retained as the reference oracle that
    tests and benchmarks compare against.
    """
    if weighting not in WEIGHTINGS:
        raise ValidationError(f"weighting must be one of {WEIGHTINGS}, got {weighting!r}")
    if weighting == "relative" and nonnegative:
        raise ValidationError("relative weighting is incompatible with nonnegative")
    out_matrix = as_matrix(out_distances, name="out_distances")
    n_hosts, k = out_matrix.shape
    ref_out = as_matrix(reference_outgoing, name="reference_outgoing")
    ref_in = as_matrix(reference_incoming, name="reference_incoming")
    if ref_out.shape != ref_in.shape:
        raise ValidationError(
            f"reference matrices disagree: {ref_out.shape} vs {ref_in.shape}"
        )
    if ref_out.shape[0] != k:
        raise ValidationError(
            f"out_distances covers {k} references, vectors cover {ref_out.shape[0]}"
        )

    if in_distances is None:
        in_matrix = out_matrix.T.copy()
    else:
        in_matrix = as_matrix(in_distances, name="in_distances")
        if in_matrix.shape != (k, n_hosts):
            raise ValidationError(
                f"in_distances must have shape {(k, n_hosts)}, got {in_matrix.shape}"
            )

    if observation_mask is not None:
        observed = as_mask(observation_mask, out_matrix.shape)
    else:
        observed = np.ones_like(out_matrix, dtype=bool)
    observed = observed & np.isfinite(out_matrix) & np.isfinite(in_matrix.T)

    if weighting == "relative":
        dimension = ref_out.shape[1]
        if strict and (observed.sum(axis=1) < dimension).any():
            raise SingularSystemError(
                f"some host observes fewer than d={dimension} references"
            )
        out_weights = relative_error_weights(out_matrix) * observed
        in_weights = relative_error_weights(in_matrix.T) * observed
        new_outgoing = solve_weighted_batched_least_squares(
            ref_in, np.nan_to_num(out_matrix), out_weights, ridge=ridge
        )
        new_incoming = solve_weighted_batched_least_squares(
            ref_out, np.nan_to_num(in_matrix.T), in_weights, ridge=ridge
        )
        return new_outgoing, new_incoming

    dimension = ref_out.shape[1]
    if strict and (observed.sum(axis=1) < dimension).any():
        short = int(np.argmax(observed.sum(axis=1) < dimension))
        raise SingularSystemError(
            f"need >= d={dimension} finite measurements per direction, host "
            f"{short} observes only {int(observed[short].sum())}"
        )

    if nonnegative:
        new_outgoing = nonnegative_least_squares_batched(
            ref_in, np.where(observed, out_matrix, 0.0), mask=observed
        )
        new_incoming = nonnegative_least_squares_batched(
            ref_out, np.where(observed, in_matrix.T, 0.0), mask=observed
        )
        return new_outgoing, new_incoming

    if observed.all():
        # One pattern: both directional solves share the full reference
        # set, one factorization each.
        new_outgoing = solve_batched_least_squares(
            ref_in, out_matrix, ridge=ridge, strict=strict
        )
        new_incoming = solve_batched_least_squares(
            ref_out, in_matrix.T, ridge=ridge, strict=strict
        )
        return new_outgoing, new_incoming

    # Mask-grouped placement: one multi-RHS solve per distinct pattern
    # per direction, with the pattern grouping computed once and shared
    # by the outgoing and incoming solves.
    new_outgoing = np.empty((n_hosts, dimension))
    new_incoming = np.empty((n_hosts, dimension))
    in_transposed = in_matrix.T
    for members, observed_idx in mask_row_groups(observed):
        new_outgoing[members] = solve_batched_least_squares(
            ref_in[observed_idx],
            out_matrix[np.ix_(members, observed_idx)],
            ridge=ridge,
            strict=strict,
        )
        new_incoming[members] = solve_batched_least_squares(
            ref_out[observed_idx],
            in_transposed[np.ix_(members, observed_idx)],
            ridge=ridge,
            strict=strict,
        )
    return new_outgoing, new_incoming
