"""Robust host placement against faulty or lying landmarks.

PIC (Costa et al., ICDCS 2004 — the paper's reference [4]) showed that
coordinate systems inherit a security problem: a malicious landmark
that reports inflated measurements drags every host that trusts it to
the wrong place. The paper's least-squares solves (Eqs. 13-14) are
maximally sensitive to such outliers — squared loss lets one corrupted
measurement dominate the fit.

This module hardens the host solve with iteratively reweighted least
squares (IRLS) under a Huber loss: residuals beyond a robust scale
estimate get down-weighted harmonically, so a handful of lying
references lose their influence while honest measurements keep full
weight. The final weights double as a detector — references whose
weight collapsed are flagged as suspects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_matrix, as_vector
from ..exceptions import SingularSystemError, ValidationError
from .vectors import HostVectors

__all__ = ["RobustPlacement", "solve_host_vectors_robust"]

#: Huber tuning constant for 95% Gaussian efficiency.
HUBER_C = 1.345
#: Consistency factor turning MAD into a Gaussian sigma estimate.
MAD_TO_SIGMA = 1.4826


@dataclass(frozen=True)
class RobustPlacement:
    """Result of a robust host solve.

    Attributes:
        vectors: the host's fitted vectors.
        out_weights / in_weights: final IRLS weights per reference for
            the outgoing/incoming solves (1 = trusted, ~0 = rejected).
        suspects: indices of references whose weight fell below the
            suspicion threshold in either direction.
        iterations: IRLS sweeps performed.
    """

    vectors: HostVectors
    out_weights: np.ndarray
    in_weights: np.ndarray
    suspects: np.ndarray
    iterations: int


def _irls_direction(
    basis: np.ndarray,
    targets: np.ndarray,
    max_iter: int,
    tol: float,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Huber-IRLS solve of ``min sum rho(t_i - u . b_i)``."""
    k, dimension = basis.shape
    if k < dimension:
        raise SingularSystemError(
            f"need at least d={dimension} references, got k={k}"
        )
    weights = np.ones(k)
    solution = np.zeros(dimension)
    iterations = 0
    for iterations in range(1, max_iter + 1):
        design = basis * weights[:, None]
        gram = design.T @ basis
        rhs = design.T @ targets
        try:
            new_solution = np.linalg.solve(gram, rhs)
        except np.linalg.LinAlgError:
            new_solution, *_ = np.linalg.lstsq(gram, rhs, rcond=None)

        residuals = targets - basis @ new_solution
        # Robust scale from the median absolute deviation.
        scale = MAD_TO_SIGMA * float(np.median(np.abs(residuals)))
        scale = max(scale, 1e-9 * max(float(np.abs(targets).max()), 1.0))
        standardized = np.abs(residuals) / scale
        # np.where evaluates both branches; floor the divisor so exact
        # zeros (perfect fits) never raise a divide warning.
        new_weights = np.where(
            standardized <= HUBER_C,
            1.0,
            HUBER_C / np.maximum(standardized, 1e-300),
        )

        moved = float(np.linalg.norm(new_solution - solution))
        solution = new_solution
        weights = new_weights
        if moved <= tol * max(float(np.linalg.norm(solution)), 1e-12):
            break
    return solution, weights, iterations


def solve_host_vectors_robust(
    out_distances: object,
    in_distances: object,
    reference_outgoing: object,
    reference_incoming: object,
    max_iter: int = 25,
    tol: float = 1e-8,
    suspicion_threshold: float = 0.5,
) -> RobustPlacement:
    """Huber-IRLS variant of the Eq. 13-14 host solve.

    Args:
        out_distances / in_distances: length-``k`` measured distances
            (NaN entries are dropped from both solves).
        reference_outgoing / reference_incoming: ``(k, d)`` reference
            vectors.
        max_iter: IRLS sweep budget.
        tol: relative solution-movement stopping threshold.
        suspicion_threshold: references whose final weight falls below
            this in either direction are reported as suspects.

    Returns:
        a :class:`RobustPlacement`. With no outliers the result matches
        the ordinary least-squares solution (all weights stay 1); with
        up to roughly a quarter of references corrupted, the fit stays
        near the honest solution and the corrupted references surface
        in ``suspects``.
    """
    ref_out = as_matrix(reference_outgoing, name="reference_outgoing")
    ref_in = as_matrix(reference_incoming, name="reference_incoming")
    if ref_out.shape != ref_in.shape:
        raise ValidationError(
            f"reference matrices disagree: {ref_out.shape} vs {ref_in.shape}"
        )
    out_vec = as_vector(out_distances, name="out_distances")
    in_vec = as_vector(in_distances, name="in_distances")
    k = ref_out.shape[0]
    if out_vec.shape[0] != k or in_vec.shape[0] != k:
        raise ValidationError(f"measurement vectors must have length {k}")

    out_valid = np.isfinite(out_vec)
    in_valid = np.isfinite(in_vec)

    outgoing, out_w_valid, out_iters = _irls_direction(
        ref_in[out_valid], out_vec[out_valid], max_iter, tol
    )
    incoming, in_w_valid, in_iters = _irls_direction(
        ref_out[in_valid], in_vec[in_valid], max_iter, tol
    )

    out_weights = np.zeros(k)
    out_weights[out_valid] = out_w_valid
    in_weights = np.zeros(k)
    in_weights[in_valid] = in_w_valid

    suspicious = (out_weights < suspicion_threshold) | (
        in_weights < suspicion_threshold
    )
    return RobustPlacement(
        vectors=HostVectors(outgoing=outgoing, incoming=incoming),
        out_weights=out_weights,
        in_weights=in_weights,
        suspects=np.flatnonzero(suspicious),
        iterations=max(out_iters, in_iters),
    )
