"""IDES: the Internet Distance Estimation Service (paper Section 5).

Landmark factorization on an information server, least-squares
ordinary-host placement (basic and relaxed architectures), the
directory service, and landmark failure models for robustness studies.
"""

from .failures import (
    CorrelatedFailures,
    IndependentFailures,
    LandmarkFailureModel,
    PartitionFailures,
)
from .host import place_hosts_batch, relative_error_weights, solve_host_vectors
from .robust import RobustPlacement, solve_host_vectors_robust
from .server import InformationServer
from .system import IDESSystem
from .updates import OnlineVectorTracker, refresh_host_vectors
from .vectors import HostVectors, predict_distance, stack_vectors

__all__ = [
    "CorrelatedFailures",
    "HostVectors",
    "IDESSystem",
    "IndependentFailures",
    "InformationServer",
    "LandmarkFailureModel",
    "OnlineVectorTracker",
    "PartitionFailures",
    "RobustPlacement",
    "place_hosts_batch",
    "refresh_host_vectors",
    "solve_host_vectors_robust",
    "predict_distance",
    "relative_error_weights",
    "solve_host_vectors",
    "stack_vectors",
]
