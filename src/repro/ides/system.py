"""IDES system facade: the paper's full prediction pipeline in one class.

Wires the landmark factorization (Section 5.1) and the ordinary-host
least-squares placement (Sections 5.1-5.2) behind the shared
:class:`repro.embedding.LatencyPredictionSystem` interface, so the
Figure 6 / Figure 7 experiment runners treat IDES, GNP and ICS
identically. Two instances — ``IDESSystem(method="svd")`` and
``IDESSystem(method="nmf")`` — are the paper's "IDES/SVD" and
"IDES/NMF" rows.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_dimension
from ..embedding.base import LatencyPredictionSystem
from .host import place_hosts_batch, solve_host_vectors
from .server import InformationServer
from .vectors import HostVectors

__all__ = ["IDESSystem"]


class IDESSystem(LatencyPredictionSystem):
    """Internet Distance Estimation Service.

    Args:
        dimension: model dimension ``d`` (the paper uses 8-10).
        method: landmark factorization, ``"svd"`` or ``"nmf"``.
        ridge: optional Tikhonov regularization of host solves.
        nonnegative_hosts: solve host vectors under non-negativity
            constraints (Section 5.1's constrained variant).
        strict: enforce ``k >= d`` observed references per host.
        host_weighting: ``"uniform"`` (paper Eqs. 13-14) or
            ``"relative"`` (this library's extension: weight each
            measurement by ``1/d^2`` so the solve minimizes relative
            rather than absolute squared error).
        nmf_max_iter / nmf_restarts / seed: NMF fitting controls.
    """

    def __init__(
        self,
        dimension: int = 10,
        method: str = "svd",
        ridge: float = 0.0,
        nonnegative_hosts: bool = False,
        strict: bool = True,
        host_weighting: str = "uniform",
        nmf_max_iter: int = 200,
        nmf_restarts: int = 1,
        seed: int | np.random.Generator | None = 0,
    ):
        self.dimension = check_dimension(dimension)
        self.method = method
        self.ridge = float(ridge)
        self.nonnegative_hosts = bool(nonnegative_hosts)
        self.strict = bool(strict)
        self.host_weighting = host_weighting
        self.name = f"IDES/{method.upper()}"
        if host_weighting != "uniform":
            self.name += f"+{host_weighting[:3]}"
        self.server = InformationServer(
            dimension=dimension,
            method=method,
            nmf_max_iter=nmf_max_iter,
            nmf_restarts=nmf_restarts,
            seed=seed,
        )
        self._host_outgoing: np.ndarray | None = None
        self._host_incoming: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # LatencyPredictionSystem interface
    # ------------------------------------------------------------------ #

    def fit_landmarks(self, landmark_matrix: object, mask: object | None = None) -> None:
        """Factor the inter-landmark matrix into landmark vectors."""
        self.server.fit_landmarks(landmark_matrix, mask=mask)
        self._host_outgoing = None
        self._host_incoming = None

    def place_hosts(
        self,
        out_distances: object,
        in_distances: object | None = None,
        observation_mask: object | None = None,
    ) -> None:
        """Solve every ordinary host's vectors against the landmarks.

        ``in_distances=None`` assumes RTT symmetry (``in = out.T``);
        ``observation_mask`` models unobserved landmarks (Figure 7).
        """
        landmark_out, landmark_in = self.server.landmark_vectors()
        self._host_outgoing, self._host_incoming = place_hosts_batch(
            out_distances,
            in_distances,
            landmark_out,
            landmark_in,
            observation_mask=observation_mask,
            ridge=self.ridge,
            nonnegative=self.nonnegative_hosts,
            strict=self.strict,
            weighting=self.host_weighting,
        )

    def predict_matrix(self) -> np.ndarray:
        """``X_hosts @ Y_hosts.T`` over the placed ordinary hosts."""
        self._require_fitted("_host_outgoing")
        assert self._host_outgoing is not None and self._host_incoming is not None
        return self._host_outgoing @ self._host_incoming.T

    def predict_between(self, rows: object, cols: object) -> np.ndarray:
        """Predictions for row-host -> col-host pairs, without forming
        the full matrix (matters for the 1123-host P2PSim evaluation)."""
        self._require_fitted("_host_outgoing")
        assert self._host_outgoing is not None and self._host_incoming is not None
        row_idx = np.asarray(rows, dtype=int)
        col_idx = np.asarray(cols, dtype=int)
        return self._host_outgoing[row_idx] @ self._host_incoming[col_idx].T

    # ------------------------------------------------------------------ #
    # extras: relaxed placement and vector access
    # ------------------------------------------------------------------ #

    def host_vectors(self) -> tuple[np.ndarray, np.ndarray]:
        """``(X, Y)`` matrices of the placed ordinary hosts."""
        self._require_fitted("_host_outgoing")
        assert self._host_outgoing is not None and self._host_incoming is not None
        return self._host_outgoing, self._host_incoming

    def landmark_vectors(self) -> tuple[np.ndarray, np.ndarray]:
        """``(X, Y)`` matrices of the landmarks."""
        return self.server.landmark_vectors()

    def place_single_host(
        self,
        out_distances: object,
        in_distances: object,
        reference_outgoing: object,
        reference_incoming: object,
    ) -> HostVectors:
        """Relaxed-architecture placement against arbitrary references.

        The references may be landmarks, previously placed ordinary
        hosts, or any mix (Section 5.2) — the caller supplies their
        vectors. Requires ``k >= d`` references when ``strict``.
        """
        return solve_host_vectors(
            out_distances,
            in_distances,
            reference_outgoing,
            reference_incoming,
            ridge=self.ridge,
            nonnegative=self.nonnegative_hosts,
            strict=self.strict,
        )

    def to_service(
        self,
        host_ids: list | None = None,
        landmark_ids: list | None = None,
        **options: object,
    ):
        """Export the fitted model as a :class:`repro.serving.DistanceService`.

        The service answers batched queries, caches point lookups, and
        keeps accepting new hosts incrementally — see
        :mod:`repro.serving`. ``options`` (shards, cache sizing, solver
        settings) are forwarded to the service constructor.
        """
        from ..serving import DistanceService

        return DistanceService.from_ides(
            self, host_ids=host_ids, landmark_ids=landmark_ids, **options
        )

    def predict_host_to_landmarks(self) -> np.ndarray:
        """Predicted host -> landmark distances (reconstruction check)."""
        self._require_fitted("_host_outgoing")
        landmark_out, landmark_in = self.server.landmark_vectors()
        assert self._host_outgoing is not None
        return self._host_outgoing @ landmark_in.T

    def predict_landmarks_to_host(self) -> np.ndarray:
        """Predicted landmark -> host distances."""
        self._require_fitted("_host_incoming")
        landmark_out, _landmark_in = self.server.landmark_vectors()
        assert self._host_incoming is not None
        return landmark_out @ self._host_incoming.T
