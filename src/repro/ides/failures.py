"""Landmark failure models for robustness evaluation (Section 6.2).

IDES tolerates ordinary hosts that cannot reach every landmark: the
host solve simply runs over the observed subset (as long as ``k >= d``
references remain). These models generate the observation masks that
the Figure 7 experiment and the failure-injection tests feed into
:meth:`IDESSystem.place_hosts`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from .._validation import as_rng, check_fraction
from ..core.masks import unobserved_landmark_mask

__all__ = [
    "LandmarkFailureModel",
    "IndependentFailures",
    "CorrelatedFailures",
    "PartitionFailures",
]


class LandmarkFailureModel(ABC):
    """Generates per-host landmark observation masks."""

    @abstractmethod
    def generate(
        self,
        n_hosts: int,
        n_landmarks: int,
        seed: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """``(n_hosts, n_landmarks)`` boolean mask, True = observed."""


@dataclass(frozen=True)
class IndependentFailures(LandmarkFailureModel):
    """Each host independently misses a random landmark subset.

    The exact model of Section 6.2: "The unobserved landmarks for each
    ordinary host were independently generated at random."

    Attributes:
        unobserved_fraction: fraction of landmarks each host misses.
        min_observed: floor on observed landmarks per host.
    """

    unobserved_fraction: float
    min_observed: int = 1

    def generate(
        self,
        n_hosts: int,
        n_landmarks: int,
        seed: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Independent per-host unobserved-landmark mask."""
        return unobserved_landmark_mask(
            n_hosts,
            n_landmarks,
            self.unobserved_fraction,
            seed=seed,
            min_observed=self.min_observed,
        )


@dataclass(frozen=True)
class CorrelatedFailures(LandmarkFailureModel):
    """Some landmarks are down for everyone; others fail per host.

    Models real outages: a crashed landmark is invisible to all hosts
    simultaneously, unlike independent probe failures.

    Attributes:
        down_fraction: fraction of landmarks globally down.
        independent_fraction: additional per-host unobserved fraction
            among the surviving landmarks.
    """

    down_fraction: float
    independent_fraction: float = 0.0

    def generate(
        self,
        n_hosts: int,
        n_landmarks: int,
        seed: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Mask with globally-down landmarks plus per-host failures."""
        check_fraction(self.down_fraction, name="down_fraction")
        rng = as_rng(seed)
        n_down = int(round(self.down_fraction * n_landmarks))
        n_down = min(n_down, n_landmarks - 1)
        mask = np.ones((n_hosts, n_landmarks), dtype=bool)
        if n_down:
            down = rng.choice(n_landmarks, size=n_down, replace=False)
            mask[:, down] = False
        if self.independent_fraction > 0:
            extra = unobserved_landmark_mask(
                n_hosts, n_landmarks, self.independent_fraction, seed=rng
            )
            mask &= extra
        # Guarantee at least one observed landmark per host.
        for host in range(n_hosts):
            if not mask[host].any():
                mask[host, int(rng.integers(n_landmarks))] = True
        return mask


@dataclass(frozen=True)
class PartitionFailures(LandmarkFailureModel):
    """A network partition hides one landmark group from one host group.

    Models the "temporary network partition" scenario of Section 6:
    hosts inside the partition can only see landmarks on their side.

    Attributes:
        partitioned_hosts_fraction: fraction of hosts inside the
            partition.
        hidden_landmarks_fraction: fraction of landmarks on the far
            side, invisible to partitioned hosts.
    """

    partitioned_hosts_fraction: float
    hidden_landmarks_fraction: float

    def generate(
        self,
        n_hosts: int,
        n_landmarks: int,
        seed: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Mask hiding one landmark group from one host group."""
        check_fraction(self.partitioned_hosts_fraction, name="partitioned_hosts_fraction")
        check_fraction(self.hidden_landmarks_fraction, name="hidden_landmarks_fraction")
        rng = as_rng(seed)
        mask = np.ones((n_hosts, n_landmarks), dtype=bool)
        n_inside = int(round(self.partitioned_hosts_fraction * n_hosts))
        n_hidden = int(round(self.hidden_landmarks_fraction * n_landmarks))
        n_hidden = min(n_hidden, n_landmarks - 1)
        if n_inside == 0 or n_hidden == 0:
            return mask
        inside = rng.choice(n_hosts, size=n_inside, replace=False)
        hidden = rng.choice(n_landmarks, size=n_hidden, replace=False)
        mask[np.ix_(inside, hidden)] = False
        return mask
