"""The IDES information server (Section 5.1).

The information server is the coordination point of the architecture:
it gathers the ``m x m`` inter-landmark distance matrix (measured by
the landmarks themselves or indirectly, for example with King), factors
it with SVD or NMF into landmark outgoing/incoming vectors, and serves
vectors through a directory so that any host can predict its distance
to any other registered host with one dot product.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_dimension
from ..core import FactoredDistanceModel, NMFFactorizer, SVDFactorizer
from ..exceptions import NotFittedError, ValidationError
from .vectors import HostVectors

__all__ = ["InformationServer"]

_METHODS = ("svd", "nmf")


class InformationServer:
    """Directory server holding landmark and ordinary-host vectors.

    Args:
        dimension: model dimension ``d``.
        method: landmark factorization algorithm, ``"svd"`` or
            ``"nmf"``. NMF also accepts incomplete landmark matrices
            (Section 4.2) and guarantees non-negative predictions.
        nmf_max_iter / nmf_restarts / seed: NMF fitting controls.
    """

    def __init__(
        self,
        dimension: int = 10,
        method: str = "svd",
        nmf_max_iter: int = 200,
        nmf_restarts: int = 1,
        seed: int | np.random.Generator | None = 0,
    ):
        self.dimension = check_dimension(dimension)
        if method not in _METHODS:
            raise ValidationError(f"method must be one of {_METHODS}, got {method!r}")
        self.method = method
        self._nmf_max_iter = int(nmf_max_iter)
        self._nmf_restarts = int(nmf_restarts)
        self._seed = seed

        self._landmark_model: FactoredDistanceModel | None = None
        self._landmark_ids: list = []
        self._directory: dict[object, HostVectors] = {}
        # Stacked (ids, X, Y) matrices over the directory, built lazily
        # per reference pool and invalidated by any directory mutation,
        # so repeated reference sampling is two fancy indexes instead
        # of re-stacking the whole directory per call.
        self._reference_cache: dict[bool, tuple[list, np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------ #
    # landmark phase
    # ------------------------------------------------------------------ #

    def fit_landmarks(
        self,
        landmark_matrix: object,
        landmark_ids: list | None = None,
        mask: object | None = None,
    ) -> FactoredDistanceModel:
        """Factor the inter-landmark matrix and publish landmark vectors.

        Args:
            landmark_matrix: ``(m, m)`` distances between landmarks;
                NaN entries are allowed with ``method="nmf"``.
            landmark_ids: identifiers for the landmarks; defaults to
                ``0..m-1``.
            mask: optional explicit observation mask for NMF.

        Returns:
            the fitted landmark :class:`FactoredDistanceModel`.
        """
        if self.method == "svd":
            if mask is not None:
                raise ValidationError(
                    "SVD cannot use an observation mask; filter the matrix or "
                    "use method='nmf' (paper Section 4.2)"
                )
            model = SVDFactorizer(self.dimension).fit(landmark_matrix)
        else:
            factorizer = NMFFactorizer(
                self.dimension,
                max_iter=self._nmf_max_iter,
                n_restarts=self._nmf_restarts,
                seed=self._seed,
            )
            model = factorizer.fit(landmark_matrix, mask=mask)

        m = model.n_sources
        if landmark_ids is None:
            landmark_ids = list(range(m))
        if len(landmark_ids) != m:
            raise ValidationError(
                f"got {len(landmark_ids)} landmark ids for {m} landmarks"
            )

        self._landmark_model = model
        self._landmark_ids = list(landmark_ids)
        self._directory = {
            identifier: HostVectors(model.outgoing[i], model.incoming[i])
            for i, identifier in enumerate(landmark_ids)
        }
        self._reference_cache.clear()
        return model

    @property
    def landmark_ids(self) -> list:
        """Identifiers of the fitted landmarks."""
        self._require_landmarks()
        return list(self._landmark_ids)

    def landmark_vectors(self) -> tuple[np.ndarray, np.ndarray]:
        """``(X, Y)`` landmark vector matrices, row per landmark."""
        self._require_landmarks()
        assert self._landmark_model is not None
        return self._landmark_model.outgoing, self._landmark_model.incoming

    # ------------------------------------------------------------------ #
    # directory
    # ------------------------------------------------------------------ #

    def register_host(self, host_id: object, vectors: HostVectors) -> None:
        """Publish an ordinary host's vectors in the directory."""
        self._require_landmarks()
        if vectors.dimension != self.dimension:
            raise ValidationError(
                f"vectors have dimension {vectors.dimension}, server uses "
                f"{self.dimension}"
            )
        self._directory[host_id] = vectors
        self._reference_cache.clear()

    def deregister_host(self, host_id: object) -> None:
        """Remove a host from the directory (landmarks cannot leave)."""
        if host_id in self._landmark_ids:
            raise ValidationError(f"cannot deregister landmark {host_id!r}")
        if self._directory.pop(host_id, None) is not None:
            self._reference_cache.clear()

    def get_vectors(self, host_id: object) -> HostVectors:
        """Fetch a registered host's vectors."""
        try:
            return self._directory[host_id]
        except KeyError:
            raise ValidationError(f"unknown host {host_id!r}") from None

    def known_hosts(self) -> list:
        """All registered identifiers (landmarks first)."""
        return list(self._directory)

    @property
    def n_registered(self) -> int:
        """Number of hosts (including landmarks) in the directory."""
        return len(self._directory)

    # ------------------------------------------------------------------ #
    # prediction
    # ------------------------------------------------------------------ #

    def predict(self, source_id: object, destination_id: object) -> float:
        """Predicted distance between two registered hosts (Eq. 4)."""
        source = self.get_vectors(source_id)
        destination = self.get_vectors(destination_id)
        return source.distance_to(destination)

    def reference_vectors(
        self,
        count: int,
        seed: int | np.random.Generator | None = None,
        include_ordinary: bool = True,
    ) -> tuple[list, np.ndarray, np.ndarray]:
        """Sample reference nodes for relaxed placement (Section 5.2).

        Args:
            count: number of references ``k`` (must be >= the model
                dimension for a well-posed host solve).
            seed: randomness source.
            include_ordinary: allow already-placed ordinary hosts as
                references, not just landmarks — the relaxation that
                spreads measurement load.

        Returns:
            ``(ids, X_refs, Y_refs)`` for the sampled reference nodes.

        The directory's stacked vector matrices are cached per pool
        (and invalidated by ``fit_landmarks`` / ``register_host`` /
        ``deregister_host``), so a burst of placements — each sampling
        its own reference set — pays two fancy indexes per call instead
        of re-stacking the whole directory every time.
        """
        self._require_landmarks()
        pool, all_outgoing, all_incoming = self._stacked_references(
            include_ordinary
        )
        if count > len(pool):
            raise ValidationError(
                f"requested {count} references but only {len(pool)} are known"
            )
        from .._validation import as_rng  # local import avoids cycle at module load

        rng = as_rng(seed)
        picks = rng.choice(len(pool), size=count, replace=False)
        chosen = [pool[i] for i in picks]
        return chosen, all_outgoing[picks], all_incoming[picks]

    def _stacked_references(
        self, include_ordinary: bool
    ) -> tuple[list, np.ndarray, np.ndarray]:
        cached = self._reference_cache.get(include_ordinary)
        if cached is None:
            if include_ordinary:
                pool = list(self._directory)
            else:
                pool = list(self._landmark_ids)
            outgoing = np.stack([self._directory[i].outgoing for i in pool])
            incoming = np.stack([self._directory[i].incoming for i in pool])
            cached = (pool, outgoing, incoming)
            self._reference_cache[include_ordinary] = cached
        return cached

    def to_service(self, **options: object):
        """Export the directory as a :class:`repro.serving.DistanceService`.

        Carries over every registered host (landmarks and ordinary) so
        the service starts warm; ``options`` are forwarded to the
        service constructor.
        """
        from ..serving import DistanceService

        self._require_landmarks()
        return DistanceService.from_server(self, **options)

    def _require_landmarks(self) -> None:
        if self._landmark_model is None:
            raise NotFittedError("InformationServer: call fit_landmarks first")
