"""Host coordinate vectors in the factored model.

Every IDES participant carries two ``d``-vectors: the *outgoing* vector
``X_i`` and the *incoming* vector ``Y_i``. The predicted distance from
``i`` to ``j`` is ``X_i . Y_j`` (paper Eq. 4) — deliberately not
symmetric in ``i`` and ``j``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_vector
from ..exceptions import ValidationError

__all__ = ["HostVectors", "predict_distance", "stack_vectors"]


@dataclass(frozen=True)
class HostVectors:
    """The pair of model vectors assigned to one host.

    Attributes:
        outgoing: ``X_i`` — combines with destinations' incoming vectors.
        incoming: ``Y_i`` — combines with sources' outgoing vectors.
    """

    outgoing: np.ndarray
    incoming: np.ndarray

    def __post_init__(self) -> None:
        outgoing = as_vector(self.outgoing, name="outgoing")
        incoming = as_vector(self.incoming, name="incoming")
        if outgoing.shape != incoming.shape:
            raise ValidationError(
                f"outgoing and incoming vectors differ in dimension: "
                f"{outgoing.shape[0]} vs {incoming.shape[0]}"
            )
        object.__setattr__(self, "outgoing", outgoing)
        object.__setattr__(self, "incoming", incoming)

    @property
    def dimension(self) -> int:
        """Model dimension ``d``."""
        return self.outgoing.shape[0]

    def distance_to(self, other: "HostVectors") -> float:
        """Predicted distance from this host to ``other`` (Eq. 4)."""
        return predict_distance(self, other)

    def distance_from(self, other: "HostVectors") -> float:
        """Predicted distance from ``other`` to this host."""
        return predict_distance(other, self)


def predict_distance(source: HostVectors, destination: HostVectors) -> float:
    """``X_source . Y_destination`` — the model's distance estimate."""
    if source.dimension != destination.dimension:
        raise ValidationError(
            f"dimension mismatch: {source.dimension} vs {destination.dimension}"
        )
    return float(source.outgoing @ destination.incoming)


def stack_vectors(vector_list: list[HostVectors]) -> tuple[np.ndarray, np.ndarray]:
    """Stack hosts' vectors into ``(X, Y)`` matrices (row per host)."""
    if not vector_list:
        raise ValidationError("vector_list must be non-empty")
    dimension = vector_list[0].dimension
    for index, vectors in enumerate(vector_list):
        if vectors.dimension != dimension:
            raise ValidationError(
                f"host {index} has dimension {vectors.dimension}, expected {dimension}"
            )
    outgoing = np.stack([vectors.outgoing for vectors in vector_list])
    incoming = np.stack([vectors.incoming for vectors in vector_list])
    return outgoing, incoming
